"""Unit tests for the topology generators."""

from __future__ import annotations

import pytest

from repro.core import TopologyError
from repro.graphs import (
    GENERATORS,
    barbell,
    binary_tree,
    by_name,
    complete,
    cycle,
    dumbbell,
    erdos_renyi,
    grid_2d,
    hypercube,
    lollipop,
    path,
    random_regular,
    star,
    torus_2d,
    two_cliques_bridge,
)


class TestBasicFamilies:
    def test_cycle(self):
        topology = cycle(10)
        assert topology.num_edges == 10
        assert set(topology.degrees()) == {2}
        assert topology.diameter() == 5

    def test_cycle_minimum_size(self):
        with pytest.raises(TopologyError):
            cycle(2)

    def test_path(self):
        topology = path(10)
        assert topology.num_edges == 9
        assert topology.diameter() == 9
        assert sorted(topology.degrees())[:2] == [1, 1]

    def test_complete(self):
        topology = complete(6)
        assert topology.num_edges == 15
        assert set(topology.degrees()) == {5}
        assert topology.diameter() == 1

    def test_star(self):
        topology = star(7)
        assert topology.degree(0) == 6
        assert topology.diameter() == 2

    def test_binary_tree(self):
        topology = binary_tree(3)
        assert topology.num_nodes == 15
        assert topology.num_edges == 14
        assert topology.degree(0) == 2


class TestGridsAndCubes:
    def test_grid_dimensions(self):
        topology = grid_2d(3, 4)
        assert topology.num_nodes == 12
        assert topology.num_edges == 3 * 3 + 4 * 2
        assert topology.diameter() == 5

    def test_torus_is_regular(self):
        topology = torus_2d(4, 4)
        assert set(topology.degrees()) == {4}
        assert topology.num_edges == 32

    def test_torus_rejects_small_sides(self):
        with pytest.raises(TopologyError):
            torus_2d(2, 5)

    def test_hypercube(self):
        topology = hypercube(4)
        assert topology.num_nodes == 16
        assert set(topology.degrees()) == {4}
        assert topology.diameter() == 4


class TestRandomFamilies:
    def test_random_regular_degree_and_connectivity(self):
        topology = random_regular(20, 4, seed=1)
        assert set(topology.degrees()) == {4}
        assert topology.num_edges == 40

    def test_random_regular_reproducible(self):
        a = random_regular(16, 4, seed=3)
        b = random_regular(16, 4, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random_regular_parity_check(self):
        with pytest.raises(TopologyError):
            random_regular(9, 3, seed=1)

    def test_random_regular_degree_bounds(self):
        with pytest.raises(TopologyError):
            random_regular(8, 1, seed=1)
        with pytest.raises(TopologyError):
            random_regular(8, 8, seed=1)

    def test_erdos_renyi_connected(self):
        topology = erdos_renyi(30, seed=2)
        assert topology.num_nodes == 30
        assert topology.diameter() >= 1

    def test_erdos_renyi_probability_validation(self):
        with pytest.raises(TopologyError):
            erdos_renyi(10, probability=0.0, seed=1)
        with pytest.raises(TopologyError):
            erdos_renyi(10, probability=1.5, seed=1)


class TestBottleneckFamilies:
    def test_barbell_structure(self):
        topology = barbell(5)
        assert topology.num_nodes == 10
        # two K5's plus the bridge edge
        assert topology.num_edges == 2 * 10 + 1

    def test_two_cliques_bridge_alias(self):
        assert two_cliques_bridge(5).num_edges == barbell(5).num_edges

    def test_lollipop(self):
        topology = lollipop(5, 4)
        assert topology.num_nodes == 9
        assert topology.num_edges == 10 + 4
        assert topology.degree(topology.num_nodes - 1) == 1

    def test_dumbbell(self):
        topology = dumbbell(4, 3)
        assert topology.num_nodes == 11
        assert topology.num_edges == 2 * 6 + 4

    def test_minimum_sizes_enforced(self):
        with pytest.raises(TopologyError):
            barbell(2)
        with pytest.raises(TopologyError):
            lollipop(5, 0)
        with pytest.raises(TopologyError):
            dumbbell(2, 3)


class TestRegistry:
    def test_by_name_dispatch(self):
        topology = by_name("cycle", 12)
        assert topology.num_nodes == 12

    def test_by_name_unknown(self):
        with pytest.raises(TopologyError):
            by_name("moebius", 12)

    def test_registry_contains_all_families(self):
        expected = {
            "cycle",
            "path",
            "complete",
            "star",
            "grid_2d",
            "torus_2d",
            "hypercube",
            "binary_tree",
            "random_regular",
            "erdos_renyi",
            "barbell",
            "lollipop",
            "dumbbell",
        }
        assert expected <= set(GENERATORS)

    def test_names_embed_parameters(self):
        assert "n=12" in cycle(12).name
        assert "8x8" in torus_2d(8, 8).name
