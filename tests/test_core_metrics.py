"""Unit tests for the metrics collector."""

from __future__ import annotations

import pytest

from repro.core import Metrics, MetricsCollector, PhaseMetrics


class TestPhaseMetrics:
    def test_merge_accumulates(self):
        a = PhaseMetrics(rounds=2, messages=3, bits=10)
        b = PhaseMetrics(rounds=1, messages=4, bits=6)
        a.merge(b)
        assert (a.rounds, a.messages, a.bits) == (3, 7, 16)

    def test_as_dict(self):
        assert PhaseMetrics(1, 2, 3).as_dict() == {"rounds": 1, "messages": 2, "bits": 3}


class TestMetricsCollector:
    def test_initially_empty(self):
        collector = MetricsCollector()
        assert collector.rounds == 0
        assert collector.messages == 0
        assert collector.bits == 0
        assert collector.congest_violations == 0

    def test_record_round_and_messages(self):
        collector = MetricsCollector()
        collector.record_round()
        collector.record_message(bits=16)
        collector.record_message(bits=8, count=2)
        assert collector.rounds == 1
        assert collector.messages == 3
        assert collector.bits == 24

    def test_negative_counts_rejected(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.record_round(-1)
        with pytest.raises(ValueError):
            collector.record_message(bits=-1)

    def test_phase_attribution(self):
        collector = MetricsCollector()
        collector.start_phase("alpha")
        collector.record_round()
        collector.record_message(bits=4)
        collector.end_phase()
        collector.record_round()
        snapshot = collector.snapshot()
        assert snapshot.phases["alpha"].rounds == 1
        assert snapshot.phases["alpha"].messages == 1
        assert snapshot.rounds == 2

    def test_phase_context_manager_restores_previous(self):
        collector = MetricsCollector()
        collector.start_phase("outer")
        with collector.phase("inner"):
            collector.record_message(bits=1)
        assert collector.current_phase == "outer"
        collector.record_message(bits=1)
        snap = collector.snapshot()
        assert snap.phases["inner"].messages == 1
        assert snap.phases["outer"].messages == 1

    def test_phase_reentry_accumulates(self):
        collector = MetricsCollector()
        with collector.phase("p"):
            collector.record_round()
        with collector.phase("p"):
            collector.record_round(2)
        assert collector.phase_metrics("p").rounds == 3

    def test_events(self):
        collector = MetricsCollector()
        collector.record_event("collision")
        collector.record_event("collision", 2)
        assert collector.event_count("collision") == 3
        assert collector.event_count("missing") == 0

    def test_congest_violations(self):
        collector = MetricsCollector()
        collector.record_congest_violation()
        assert collector.congest_violations == 1

    def test_congest_violations_reject_negative_counts(self):
        # Same contract as every other record_* method: a negative count
        # must fail loudly instead of silently un-counting violations.
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.record_congest_violation(-1)
        assert collector.congest_violations == 0

    def test_snapshot_is_a_copy(self):
        collector = MetricsCollector()
        collector.record_message(bits=2)
        snap = collector.snapshot()
        collector.record_message(bits=2)
        assert snap.messages == 1
        assert collector.messages == 2

    def test_merge_collectors(self):
        a = MetricsCollector()
        b = MetricsCollector()
        with a.phase("x"):
            a.record_message(bits=4)
        with b.phase("x"):
            b.record_message(bits=6)
            b.record_round()
        b.record_event("boom")
        a.merge(b)
        assert a.messages == 2
        assert a.bits == 10
        assert a.rounds == 1
        assert a.event_count("boom") == 1
        assert a.phase_metrics("x").messages == 2


class TestMetricsSnapshot:
    def test_messages_per_round(self):
        metrics = Metrics(rounds=4, messages=12, bits=0)
        assert metrics.messages_per_round() == 3.0

    def test_messages_per_round_zero_rounds(self):
        assert Metrics().messages_per_round() == 0.0

    def test_as_dict_roundtrip_fields(self):
        metrics = Metrics(rounds=1, messages=2, bits=3, congest_violations=4)
        data = metrics.as_dict()
        assert data["rounds"] == 1
        assert data["messages"] == 2
        assert data["bits"] == 3
        assert data["congest_violations"] == 4
        assert data["phases"] == {}
