"""Unit tests for random ID and candidate selection (Section 4)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core import ConfigurationError
from repro.election import (
    ID_SPACE_EXPONENT,
    candidate_count_upper_bound,
    candidate_probability,
    draw_candidate,
    draw_identity,
    draw_node_id,
    expected_candidates,
    id_collision_probability_bound,
    id_space_size,
)


class TestIdSpace:
    def test_exponent_is_four(self):
        assert ID_SPACE_EXPONENT == 4

    def test_id_space_size(self):
        assert id_space_size(10) == 10_000
        assert id_space_size(2) == 16

    def test_id_space_size_small_n(self):
        # n=1 still gets a non-trivial space so draws are well defined.
        assert id_space_size(1) >= 2

    def test_id_space_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            id_space_size(0)

    def test_draw_node_id_in_range(self):
        rng = random.Random(0)
        for _ in range(200):
            value = draw_node_id(rng, 8)
            assert 1 <= value <= 8 ** 4

    def test_draws_are_reproducible(self):
        assert draw_node_id(random.Random(3), 16) == draw_node_id(random.Random(3), 16)


class TestCandidateSelection:
    def test_probability_formula(self):
        assert candidate_probability(100, 2.0) == pytest.approx(2 * math.log(100) / 100)

    def test_probability_capped_at_one(self):
        assert candidate_probability(2, 10.0) == 1.0

    def test_single_node_is_always_candidate(self):
        assert candidate_probability(1, 2.0) == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            candidate_probability(0, 2.0)
        with pytest.raises(ConfigurationError):
            candidate_probability(10, 0.0)

    def test_expected_candidates_matches_probability(self):
        assert expected_candidates(64, 2.0) == pytest.approx(64 * candidate_probability(64, 2.0))

    def test_upper_bound_is_4c_log_n(self):
        assert candidate_count_upper_bound(64, 2.0) == math.ceil(4 * 2.0 * math.log(64))
        assert candidate_count_upper_bound(1, 2.0) == 1

    def test_empirical_candidate_count_below_bound(self):
        rng = random.Random(42)
        n, c = 256, 2.0
        for _ in range(20):
            count = sum(draw_candidate(rng, n, c) for _ in range(n))
            assert count <= candidate_count_upper_bound(n, c)

    def test_empirical_rate_matches_probability(self):
        rng = random.Random(7)
        n, c = 128, 2.0
        trials = 4000
        hits = sum(draw_candidate(rng, n, c) for _ in range(trials))
        expected = candidate_probability(n, c)
        assert hits / trials == pytest.approx(expected, rel=0.2)


class TestCollisionBound:
    def test_bound_decreases_with_n(self):
        assert id_collision_probability_bound(64, 2.0) < id_collision_probability_bound(16, 2.0)

    def test_bound_is_tiny_for_moderate_n(self):
        assert id_collision_probability_bound(64, 2.0) < 1e-4

    def test_bound_never_exceeds_one(self):
        assert id_collision_probability_bound(1, 10.0) <= 1.0


class TestIdentityDraw:
    def test_identity_fields(self):
        identity = draw_identity(random.Random(1), 32, 2.0)
        assert 1 <= identity.node_id <= 32 ** 4
        assert isinstance(identity.candidate, bool)

    def test_identity_reproducible(self):
        a = draw_identity(random.Random(5), 32, 2.0)
        b = draw_identity(random.Random(5), 32, 2.0)
        assert a == b
