"""Unit tests for election outcome extraction and result packaging."""

from __future__ import annotations

import pytest

from repro.core import MetricsCollector, PassiveNode, SynchronousSimulator, build_nodes
from repro.election import LeaderElectionResult, election_result_from_simulation, outcome_from_results
from repro.graphs import cycle


class TestOutcomeFromResults:
    def test_unique_leader(self):
        results = [
            {"leader": False, "candidate": True},
            {"leader": True, "candidate": True},
            {"leader": False, "candidate": False},
        ]
        outcome = outcome_from_results(results)
        assert outcome.unique_leader
        assert outcome.num_leaders == 1
        assert outcome.leader_indices == [1]
        assert outcome.candidate_indices == [0, 1]

    def test_no_leader(self):
        outcome = outcome_from_results([{"leader": False}, {"leader": False}])
        assert not outcome.unique_leader
        assert outcome.num_leaders == 0
        assert not outcome.elected

    def test_multiple_leaders(self):
        outcome = outcome_from_results([{"leader": True}, {"leader": True}])
        assert not outcome.unique_leader
        assert outcome.num_leaders == 2

    def test_agreement_true_when_all_views_match(self):
        results = [
            {"leader": True, "view": (4, 10)},
            {"leader": False, "view": (4, 10)},
        ]
        outcome = outcome_from_results(results, agreement_key="view")
        assert outcome.agreement is True

    def test_agreement_false_on_disagreement_or_missing(self):
        results = [
            {"leader": True, "view": (4, 10)},
            {"leader": False, "view": (4, 11)},
        ]
        assert outcome_from_results(results, agreement_key="view").agreement is False
        results_missing = [{"leader": True, "view": None}, {"leader": False, "view": None}]
        assert outcome_from_results(results_missing, agreement_key="view").agreement is False

    def test_agreement_none_when_not_requested(self):
        assert outcome_from_results([{"leader": True}]).agreement is None

    def test_as_dict(self):
        data = outcome_from_results([{"leader": True, "candidate": True}]).as_dict()
        assert data["num_leaders"] == 1
        assert data["unique_leader"] is True


class TestResultPackaging:
    def _simulate(self):
        topology = cycle(4)
        nodes = build_nodes(topology, lambda i, p, r: PassiveNode(p, r), seed=0)
        simulator = SynchronousSimulator(topology, nodes, metrics=MetricsCollector())
        return simulator.run(2)

    def test_election_result_from_simulation(self):
        simulation = self._simulate()
        result = election_result_from_simulation(
            "dummy", simulation, seed=9, parameters={"alpha": 1}
        )
        assert isinstance(result, LeaderElectionResult)
        assert result.algorithm == "dummy"
        assert result.topology_name == "cycle(n=4)"
        assert result.num_nodes == 4
        assert result.num_edges == 4
        assert result.seed == 9
        assert result.parameters == {"alpha": 1}
        assert result.rounds_executed == 2
        assert not result.success  # passive nodes elect nobody

    def test_result_as_dict_contains_cost_fields(self):
        result = election_result_from_simulation("dummy", self._simulate())
        data = result.as_dict()
        assert {"messages", "bits", "rounds", "success", "outcome"} <= set(data)
        assert data["messages"] == result.messages
        assert data["rounds"] == result.rounds_executed

    def test_properties_delegate_to_metrics(self):
        result = election_result_from_simulation("dummy", self._simulate())
        assert result.messages == result.metrics.messages
        assert result.bits == result.metrics.bits
