"""Tests for the ``repro.api`` facade, deprecations, and CLI exit codes.

Covers the redesigned entry points (``run`` / ``sweep`` / ``query`` /
``plan_sweep`` / ``SweepConfig``), the deprecation of the two legacy
spellings (``ExperimentSpec(runner=...)`` and ``keep_results=True``),
and the 0/1/2 exit-code contract shared by ``merge`` / ``stats`` /
``archive stats`` (0 clean, 1 findings/partial, 2 usage or error).
"""

from __future__ import annotations

import inspect
import warnings

import pytest

from repro import api
from repro.analysis.experiments import ExperimentSpec, run_experiment
from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.graphs import cycle, path
from repro.parallel.checkpoint import manifest_path
from repro.parallel.runner import run_experiments
from repro.workloads import sweep_specs


def strip_wall_clock(results):
    return [
        [
            {
                key: value
                for key, value in cell.as_dict().items()
                if key != "mean_wall_clock_seconds"
            }
            for cell in result.cells
        ]
        for result in results
    ]


# --------------------------------------------------------------------------- #
# SweepConfig
# --------------------------------------------------------------------------- #


class TestSweepConfig:
    def test_runner_kwargs_cover_run_experiments_signature(self):
        # drift guard: every run_experiments knob except the per-call ones
        # (specs, sinks) and the deprecated keep_results flows through the
        # config object — a new runner kwarg must be added here too
        signature = inspect.signature(run_experiments)
        runner_knobs = set(signature.parameters) - {
            "specs",
            "sinks",
            "keep_results",
        }
        assert set(api.SweepConfig().runner_kwargs()) == runner_knobs

    def test_defaults_are_valid_and_frozen(self):
        config = api.SweepConfig()
        assert config.workers == 1
        assert config.backend == "auto"
        with pytest.raises(Exception):
            config.workers = 4  # type: ignore[misc]

    def test_validation_errors(self, tmp_path):
        with pytest.raises(ConfigurationError, match="workers"):
            api.SweepConfig(workers=0)
        with pytest.raises(ConfigurationError, match="checkpoint_compact"):
            api.SweepConfig(checkpoint_compact=True)
        with pytest.raises(ConfigurationError, match="shard"):
            api.SweepConfig(shard=(0, 2))
        with pytest.raises(ConfigurationError, match="telemetry"):
            api.SweepConfig(profile="wall")

    def test_query_kwargs_reject_checkpoint_and_shard(self, tmp_path):
        config = api.SweepConfig(
            checkpoint=tmp_path / "ck.jsonl", shard=(0, 2)
        )
        with pytest.raises(ConfigurationError, match="stages its own"):
            config.query_kwargs()
        # and without them, the reserved knobs are absent from the kwargs
        kwargs = api.SweepConfig(workers=2).query_kwargs()
        assert "checkpoint" not in kwargs
        assert "shard" not in kwargs
        assert "lease_timeout" not in kwargs
        assert kwargs["workers"] == 2


# --------------------------------------------------------------------------- #
# plan_sweep
# --------------------------------------------------------------------------- #


class TestPlanSweep:
    def test_default_plan_uses_mixed_suite_and_two_algorithms(self):
        specs, adversarial = api.plan_sweep(suite="tiny", seeds=2)
        assert not adversarial
        assert [spec.name for spec in specs] == ["flooding", "gilbert"]
        assert all(spec.seeds == (0, 1) for spec in specs)

    def test_explicit_topologies(self):
        specs, _ = api.plan_sweep(
            topologies=[cycle(6), path(5)], algorithms=["flooding"], seeds=1
        )
        assert len(specs) == 1
        assert len(specs[0].topologies) == 2

    def test_dynamic_scenario_is_adversarial(self):
        specs, adversarial = api.plan_sweep(
            suite="tiny", algorithms=["flooding"], scenario="lossy", seeds=1
        )
        assert adversarial
        # the robustness ladder includes a clean baseline point, so not
        # every spec carries an adversary — but the swept points do
        assert any(spec.adversary is not None for spec in specs)

    def test_mutual_exclusions(self):
        with pytest.raises(ConfigurationError, match="not both"):
            api.plan_sweep(suite="tiny", topologies=[cycle(6)])
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            api.plan_sweep(scenario="lossy", adversary="loss:p=0.1")
        with pytest.raises(ConfigurationError, match="requires adversary"):
            api.plan_sweep(adversary_params=["p=0.1"])
        with pytest.raises(ConfigurationError, match="seeds must be"):
            api.plan_sweep(seeds=0)
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            api.plan_sweep(scenario="sunny-day")
        with pytest.raises(ConfigurationError, match="protocol ladder"):
            api.plan_sweep(scenario="paper-constants", algorithms=["flooding"])


# --------------------------------------------------------------------------- #
# run / sweep facade
# --------------------------------------------------------------------------- #


class TestRunFacade:
    def test_run_is_deterministic_and_parses_string_topology(self):
        one = api.run("flooding", "cycle:5", seed=3)
        two = api.run("flooding", cycle(5), seed=3)
        assert one.as_dict() == two.as_dict()
        assert one.success

    def test_run_with_adversary_string(self):
        from repro.dynamics.spec import spec_from_cli

        via_cli_spelling = api.run(
            "flooding",
            cycle(5),
            seed=1,
            adversary="loss",
            adversary_params=["p=0.2"],
        )
        via_spec_object = api.run(
            "flooding",
            cycle(5),
            seed=1,
            adversary=spec_from_cli("loss", {"p": 0.2}),
        )
        assert via_cli_spelling.as_dict() == via_spec_object.as_dict()


class TestSweepFacade:
    def test_sweep_matches_run_experiments(self):
        specs = sweep_specs(
            ["flooding"], [cycle(6)], seeds=(0, 1), collect_profile=False
        )
        assert strip_wall_clock(api.sweep(specs)) == strip_wall_clock(
            run_experiments(specs)
        )

    def test_sweep_honours_config_checkpoint(self, tmp_path):
        specs = sweep_specs(
            ["flooding"], [cycle(6)], seeds=(0,), collect_profile=False
        )
        checkpoint = tmp_path / "ck.jsonl"
        api.sweep(specs, config=api.SweepConfig(checkpoint=checkpoint))
        assert checkpoint.exists()


# --------------------------------------------------------------------------- #
# deprecations
# --------------------------------------------------------------------------- #


class TestDeprecations:
    def test_spec_runner_kwarg_warns(self):
        def trivial_runner(topology, seed):  # pragma: no cover - never run
            raise AssertionError

        with pytest.warns(DeprecationWarning, match="runner=.*deprecated"):
            ExperimentSpec(
                name="legacy", runner=trivial_runner, topologies=(cycle(5),)
            )

    def test_keep_results_warns_in_run_experiment(self):
        spec = sweep_specs(
            ["flooding"], [cycle(5)], seeds=(0,), collect_profile=False
        )[0]
        with pytest.warns(DeprecationWarning, match="keep_results"):
            run_experiment(spec, keep_results=True)

    def test_keep_results_warns_in_run_experiments(self):
        specs = sweep_specs(
            ["flooding"], [cycle(5)], seeds=(0,), collect_profile=False
        )
        with pytest.warns(DeprecationWarning, match="CollectingSink"):
            run_experiments(specs, keep_results=True)

    def test_builtin_sweep_specs_stay_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            specs = sweep_specs(
                ["flooding", "gilbert"],
                [cycle(5)],
                seeds=(0,),
                collect_profile=False,
            )
            run_experiments(specs)


# --------------------------------------------------------------------------- #
# exit-code contract (0 clean / 1 findings / 2 usage-or-error)
# --------------------------------------------------------------------------- #


class TestExitCodeContract:
    SWEEP = [
        "sweep",
        "--suite",
        "tiny",
        "--algorithms",
        "flooding",
        "--seeds",
        "1",
        "--no-profile",
    ]

    def test_partial_merge_exits_one(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "ck.jsonl")
        assert (
            main(self.SWEEP + ["--checkpoint", checkpoint, "--shard", "0/2"])
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "merge",
                "--manifest",
                str(manifest_path(checkpoint)),
                "--output",
                str(tmp_path / "merged.jsonl"),
                "--allow-partial",
            ]
        )
        assert code == 1
        assert "partial merge" in capsys.readouterr().err

    def test_complete_merge_exits_zero(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "ck.jsonl")
        for index in range(2):
            assert (
                main(
                    self.SWEEP
                    + ["--checkpoint", checkpoint, "--shard", f"{index}/2"]
                )
                == 0
            )
        code = main(
            [
                "merge",
                "--manifest",
                str(manifest_path(checkpoint)),
                "--output",
                str(tmp_path / "merged.jsonl"),
            ]
        )
        assert code == 0

    def test_merge_os_error_exits_two(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "ck.jsonl")
        for index in range(2):
            main(self.SWEEP + ["--checkpoint", checkpoint, "--shard", f"{index}/2"])
        capsys.readouterr()
        code = main(
            [
                "merge",
                "--manifest",
                str(manifest_path(checkpoint)),
                "--output",
                str(tmp_path),  # a directory: the write must fail cleanly
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_with_no_runs_exits_one(self, capsys, tmp_path):
        telemetry = tmp_path / "empty.jsonl"
        telemetry.write_text("")
        assert main(["stats", str(telemetry)]) == 1
        assert "no task records found" in capsys.readouterr().err

    def test_stats_garbage_file_exits_two(self, capsys, tmp_path):
        telemetry = tmp_path / "garbage.jsonl"
        telemetry.write_text("{not json\n")
        assert main(["stats", str(telemetry)]) == 2
        assert "error:" in capsys.readouterr().err
