"""Adaptive dispatch and work-stealing shard tests.

The acceptance pin of the elastic sweep engine: the adaptive scheduler
(cost-aware batching, timeout/death re-dispatch) and the ``--shard auto``
work-stealing path must produce results bit-identical to the serial
driver and the static engine for any worker count, start method, batch
size and kill/timeout schedule.  Wall-clock readings are the one
legitimate difference, so cell comparisons drop
``mean_wall_clock_seconds`` — everything else must match exactly.

Fault injection is deterministic here: stub pools that drop dispatches
on the floor (timeout re-dispatch without real stragglers) and a runner
that SIGKILLs its own pool worker exactly once (death re-dispatch).
"""

import json
import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.analysis import ExperimentSpec, run_experiment
from repro.analysis.runners import flooding_runner
from repro.core.errors import ConfigurationError
from repro.graphs import cycle, grid_2d, star
from repro.obs import TelemetrySink, read_telemetry, summarize_telemetry
from repro.parallel import (
    AUTO_SHARD,
    AdaptiveScheduler,
    JsonlCheckpointStore,
    LeaseDirectory,
    ShardManifest,
    TaskExecutionError,
    expand_run_tasks,
    manifest_path,
    merge_shard_checkpoints,
    parse_shard,
    run_experiments,
    shard_checkpoint_path,
    split_blocks,
)

SEEDS = (0, 1, 2)

#: Always test the boundary pool sizes; CI adds odd/oversubscribed counts
#: through REPRO_TEST_WORKERS.
WORKER_COUNTS = sorted({1, 2, 4} | {int(os.environ.get("REPRO_TEST_WORKERS", 2))})


def _spec(name="flooding", seeds=SEEDS, runner=flooding_runner):
    return ExperimentSpec(
        name=name,
        runner=runner,
        topologies=[cycle(8), star(8), grid_2d(3, 3)],
        seeds=seeds,
        collect_profile=False,
    )


def _comparable(cells):
    rows = []
    for cell in cells:
        row = cell.as_dict()
        row.pop("mean_wall_clock_seconds")
        rows.append(row)
    return rows


def _comparable_results(results):
    return [_comparable(result.cells) for result in results]


def _kill_worker_once(topology, seed):
    """SIGKILL our own pool worker on one specific task, exactly once.

    The marker file makes the kill one-shot: the re-dispatched attempt
    (and every other task) runs normally, so a sweep that survives the
    kill must still produce exactly the serial results.
    """
    marker = Path(os.environ["REPRO_TEST_KILL_MARKER"])
    if seed == 1 and topology.name.startswith("cycle") and not marker.exists():
        marker.write_text("killed", encoding="utf-8")
        os.kill(os.getpid(), signal.SIGKILL)
    return flooding_runner(topology, seed)


def _failing_runner(topology, seed):
    raise ValueError(f"deterministic failure on {topology.name} seed {seed}")


class _InlinePool:
    """Pool stub: apply_async executes synchronously in the caller.

    No ``_pool`` attribute, so the scheduler's worker-death watch
    degrades to lease timeouts alone — exactly the degradation the
    docstring promises for exotic pools.
    """

    def apply_async(self, func, args, callback=None, error_callback=None):
        try:
            value = func(*args)
        except Exception as error:  # noqa: BLE001 - mirrors Pool semantics
            error_callback(error)
        else:
            callback(value)


class _DroppyPool(_InlinePool):
    """Pool stub that loses the first ``drop`` dispatches entirely.

    A dropped dispatch never completes and never errors — the shape of a
    worker that died mid-task (or hung forever) as seen from the parent.
    """

    def __init__(self, drop):
        self.drop = drop
        self.calls = 0

    def apply_async(self, func, args, callback=None, error_callback=None):
        self.calls += 1
        if self.calls <= self.drop:
            return
        super().apply_async(
            func, args, callback=callback, error_callback=error_callback
        )


# --------------------------------------------------------------------------- #
# adaptive dispatch == serial == static
# --------------------------------------------------------------------------- #


class TestAdaptiveEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_adaptive_matches_serial_and_static(self, workers):
        serial = run_experiment(_spec())
        adaptive = run_experiment(_spec(), workers=workers, dispatch="adaptive")
        static = run_experiment(_spec(), workers=workers, dispatch="static")
        assert _comparable(adaptive.cells) == _comparable(serial.cells)
        assert _comparable(static.cells) == _comparable(serial.cells)

    @pytest.mark.parametrize("max_batch", [1, 2, 7, 32])
    def test_any_batch_size_is_identical(self, max_batch):
        serial = run_experiment(_spec())
        batched = run_experiments(
            [_spec()], workers=2, dispatch="adaptive", max_batch=max_batch
        )[0]
        assert _comparable(batched.cells) == _comparable(serial.cells)

    def test_spawn_start_method_matches_serial(self):
        serial = run_experiment(_spec())
        spawned = run_experiment(
            _spec(), workers=2, dispatch="adaptive", start_method="spawn"
        )
        assert _comparable(spawned.cells) == _comparable(serial.cells)

    def test_deterministic_task_error_propagates(self):
        with pytest.raises(TaskExecutionError, match="deterministic failure"):
            run_experiments(
                [_spec(runner=_failing_runner, seeds=(0,))],
                workers=2,
                dispatch="adaptive",
            )


class TestSchedulerUnit:
    """Drive AdaptiveScheduler directly against stub pools: the fault
    paths (timeout re-dispatch, attempt exhaustion) and the batching
    policy, all deterministic."""

    def _tasks(self, seeds=SEEDS):
        return expand_run_tasks(_spec(seeds=seeds))

    def _run(self, scheduler, tasks):
        finished = {}
        scheduler.run(
            tasks,
            lambda key, result, elapsed, telemetry, profile: finished.setdefault(
                key, result
            ),
        )
        return finished

    def test_inline_pool_completes_everything(self):
        tasks = self._tasks()
        scheduler = AdaptiveScheduler(_InlinePool(), workers=2)
        finished = self._run(scheduler, tasks)
        assert set(finished) == {task.key for task in tasks}
        assert scheduler.stats.dispatched_tasks == len(tasks)

    def test_dropped_dispatch_is_redispatched_after_timeout(self):
        tasks = self._tasks()
        scheduler = AdaptiveScheduler(
            _DroppyPool(drop=2),
            workers=1,
            task_timeout=0.02,
            poll_seconds=0.005,
        )
        finished = self._run(scheduler, tasks)
        assert set(finished) == {task.key for task in tasks}
        assert scheduler.stats.redispatched_tasks >= 2
        # The re-run results are the results: compare against serial.
        serial = {
            task.key: task.runner(task.topology, task.seed) for task in tasks
        }
        for key, result in finished.items():
            assert result.as_dict() == serial[key].as_dict()

    def test_attempts_exhausted_raises_with_task_key(self):
        tasks = self._tasks(seeds=(0,))
        scheduler = AdaptiveScheduler(
            _DroppyPool(drop=10**9),
            workers=1,
            task_timeout=0.005,
            poll_seconds=0.002,
            max_attempts=2,
        )
        with pytest.raises(TaskExecutionError, match="dispatched 2 times"):
            self._run(scheduler, tasks)

    def test_cheap_tasks_get_batched_after_first_measurements(self):
        # A huge target makes every measured task "cheap", so once the
        # first singleton per cell has taught the cost model, the rest
        # of the queue ships in multi-task batches.
        tasks = expand_run_tasks(
            ExperimentSpec(
                name="flooding",
                runner=flooding_runner,
                topologies=[cycle(6)],
                seeds=tuple(range(12)),
                collect_profile=False,
            )
        )
        scheduler = AdaptiveScheduler(
            _InlinePool(), workers=1, target_batch_seconds=10.0, max_batch=8
        )
        finished = self._run(scheduler, tasks)
        assert len(finished) == 12
        assert scheduler.stats.batched_tasks > 0
        assert 1 < scheduler.stats.max_batch_size <= 8
        assert scheduler.stats.batches < len(tasks)

    def test_duplicate_completions_are_dropped(self):
        # Timeout fires while the "lost" dispatch is replayed late: both
        # the original and the re-dispatch complete, finish() must see
        # each key exactly once.
        class _LatePool(_InlinePool):
            def __init__(self):
                self.held = []

            def apply_async(self, func, args, callback=None, error_callback=None):
                if not self.held:
                    # Hold the first dispatch; replay it after the
                    # re-dispatch already completed.
                    self.held.append((func, args, callback))
                    return
                super().apply_async(
                    func, args, callback=callback, error_callback=error_callback
                )
                while self.held:
                    func, args, callback = self.held.pop()
                    callback(func(*args))

        calls = []
        tasks = self._tasks(seeds=(0,))
        scheduler = AdaptiveScheduler(
            _LatePool(), workers=1, task_timeout=0.01, poll_seconds=0.005
        )
        scheduler.run(
            tasks,
            lambda key, *rest: calls.append(key),
        )
        assert sorted(calls) == sorted(task.key for task in tasks)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_batch"):
            AdaptiveScheduler(_InlinePool(), workers=1, max_batch=0)
        with pytest.raises(ConfigurationError, match="max_attempts"):
            AdaptiveScheduler(_InlinePool(), workers=1, max_attempts=0)
        with pytest.raises(ConfigurationError, match="task_timeout"):
            AdaptiveScheduler(_InlinePool(), workers=1, task_timeout=-1.0)
        with pytest.raises(ConfigurationError, match="task_timeout"):
            AdaptiveScheduler(
                _InlinePool(), workers=1, task_timeout=float("nan")
            )


class TestWorkerDeathRecovery:
    def test_killed_worker_redispatches_bit_identically(
        self, tmp_path, monkeypatch
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("SIGKILL self-test requires the fork start method")
        monkeypatch.setenv(
            "REPRO_TEST_KILL_MARKER", str(tmp_path / "killed.marker")
        )
        serial = run_experiment(_spec())
        survived = run_experiment(
            _spec(runner=_kill_worker_once),
            workers=2,
            dispatch="adaptive",
            start_method="fork",
        )
        assert (tmp_path / "killed.marker").exists(), "kill never fired"
        assert _comparable(survived.cells) == _comparable(serial.cells)

    def test_timeout_requires_adaptive_dispatch(self):
        with pytest.raises(ConfigurationError, match="adaptive"):
            run_experiments(
                [_spec()], workers=2, dispatch="static", task_timeout=1.0
            )

    def test_bad_timeout_rejected_up_front(self):
        for bad in (0.0, -5.0, float("nan")):
            with pytest.raises(ConfigurationError, match="task_timeout"):
                run_experiments(
                    [_spec()], workers=2, dispatch="adaptive", task_timeout=bad
                )

    def test_bad_lease_timeout_rejected_up_front(self):
        # lease_timeout only matters for sharded runs, but a bad value is
        # rejected before any work starts — same contract as task_timeout.
        for bad in (0.0, -5.0, float("nan")):
            with pytest.raises(ConfigurationError, match="lease_timeout"):
                run_experiments([_spec()], workers=2, lease_timeout=bad)

    def test_unknown_dispatch_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="dispatch"):
            run_experiments([_spec()], workers=2, dispatch="bogus")


# --------------------------------------------------------------------------- #
# dispatch telemetry (batch_size / attempt / scheduler record)
# --------------------------------------------------------------------------- #


class TestDispatchTelemetry:
    def test_task_records_carry_batch_and_attempt(self, tmp_path):
        telemetry_path = tmp_path / "tel.jsonl"
        run_experiments(
            [_spec()],
            workers=2,
            dispatch="adaptive",
            telemetry=TelemetrySink(telemetry_path),
        )
        records = read_telemetry(telemetry_path)
        tasks = [r for r in records if r.get("kind") == "task"]
        assert len(tasks) == 3 * len(SEEDS)
        assert all(r["batch_size"] >= 1 and r["attempt"] >= 1 for r in tasks)
        drivers = [r for r in records if r.get("kind") == "driver"]
        assert len(drivers) == 1
        scheduler = drivers[0]["scheduler"]
        assert scheduler["dispatched_tasks"] == 3 * len(SEEDS)
        assert scheduler["redispatched_tasks"] == 0

    def test_summary_gains_queue_wait_and_imbalance_sections(self, tmp_path):
        telemetry_path = tmp_path / "tel.jsonl"
        run_experiments(
            [_spec()],
            workers=2,
            dispatch="adaptive",
            telemetry=TelemetrySink(telemetry_path),
        )
        summary = summarize_telemetry(read_telemetry(telemetry_path))
        waits = summary["queue_wait_by_worker"]
        assert waits and all(
            set(row)
            >= {
                "worker",
                "tasks",
                "p50_queue_wait_seconds",
                "p90_queue_wait_seconds",
                "max_queue_wait_seconds",
            }
            for row in waits
        )
        imbalance = summary["load_imbalance"]
        assert imbalance["workers"] == len(waits)
        assert imbalance["max_busy_seconds"] >= imbalance["mean_busy_seconds"] > 0
        assert imbalance["imbalance"] >= 1.0
        assert summary["dispatch"]["redispatched_tasks"] == 0
        assert summary["scheduler"]["dispatched_tasks"] == 3 * len(SEEDS)


# --------------------------------------------------------------------------- #
# --shard auto: work stealing over the lease directory
# --------------------------------------------------------------------------- #


class TestAutoShard:
    def test_single_job_covers_grid_and_merge_matches_serial(self, tmp_path):
        serial = run_experiments([_spec()], workers=1)
        base = tmp_path / "sweep.json"
        auto = run_experiments(
            [_spec()], workers=2, checkpoint=base, shard="auto/4"
        )
        assert _comparable_results(auto) == _comparable_results(serial)
        payload = json.loads(manifest_path(base).read_text())
        assert payload["mode"] == "auto"
        summary = merge_shard_checkpoints(
            manifest_path(base), tmp_path / "merged.json"
        )
        assert summary["tasks_merged"] == summary["tasks_expected"] == 9
        replay = run_experiments(
            [_spec()], workers=1, checkpoint=tmp_path / "merged.json"
        )
        assert _comparable_results(replay) == _comparable_results(serial)

    def test_late_job_claims_nothing(self, tmp_path):
        base = tmp_path / "sweep.json"
        run_experiments([_spec()], workers=1, checkpoint=base, shard="auto/4")
        second = run_experiments(
            [_spec()], workers=1, checkpoint=base, shard="auto/4"
        )
        assert all(not result.cells for result in second)

    def test_concurrent_jobs_partition_the_grid(self, tmp_path):
        serial = run_experiments([_spec()], workers=1)
        base = tmp_path / "sweep.json"
        errors = []

        def job():
            try:
                run_experiments(
                    [_spec()], workers=1, checkpoint=base, shard=("auto", 9)
                )
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=job) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        summary = merge_shard_checkpoints(
            manifest_path(base), tmp_path / "merged.json"
        )
        assert summary["tasks_merged"] == summary["tasks_expected"] == 9
        replay = run_experiments(
            [_spec()], workers=1, checkpoint=tmp_path / "merged.json"
        )
        assert _comparable_results(replay) == _comparable_results(serial)

    def test_stale_lease_is_stolen(self, tmp_path, capfd):
        serial = run_experiments([_spec()], workers=1)
        base = tmp_path / "sweep.json"
        # A dead job claimed block 0 an hour ago and never heartbeat.
        dead = LeaseDirectory(base, 4, owner="dead-job")
        assert dead.claim_next() == (0, False)
        stale = time.time() - 3600
        os.utime(dead.lease_path(0), (stale, stale))
        run_experiments(
            [_spec()],
            workers=1,
            checkpoint=base,
            shard=("auto", 4),
            lease_timeout=60.0,
        )
        assert "(1 stolen)" in capfd.readouterr().err
        summary = merge_shard_checkpoints(
            manifest_path(base), tmp_path / "merged.json"
        )
        assert summary["tasks_merged"] == summary["tasks_expected"] == 9
        replay = run_experiments(
            [_spec()], workers=1, checkpoint=tmp_path / "merged.json"
        )
        assert _comparable_results(replay) == _comparable_results(serial)

    def test_live_lease_is_not_stolen(self, tmp_path):
        base = tmp_path / "sweep.json"
        other = LeaseDirectory(base, 4, owner="live-job")
        assert other.claim_next() == (0, False)
        results = run_experiments(
            [_spec()], workers=1, checkpoint=base, shard=("auto", 4)
        )
        # Blocks 1-3 execute here; block 0 stays with its live owner.
        executed = sum(cell.runs for result in results for cell in result.cells)
        keys = [task.key for task in expand_run_tasks(_spec())]
        blocks = split_blocks(keys, 4)
        assert executed == sum(len(block) for block in blocks[1:])
        assert not other.is_done(0)

    def test_auto_requires_checkpoint(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            run_experiments([_spec()], workers=1, shard="auto")

    def test_auto_requires_jsonl_format(self, tmp_path):
        with pytest.raises(ConfigurationError, match="JSONL"):
            run_experiments(
                [_spec()],
                workers=1,
                checkpoint=tmp_path / "sweep.json",
                shard="auto",
                checkpoint_format="json",
            )


class TestLeaseDirectory:
    def test_claims_are_exclusive_and_ordered(self, tmp_path):
        base = tmp_path / "ck.json"
        a = LeaseDirectory(base, 3, owner="a")
        b = LeaseDirectory(base, 3, owner="b")
        assert a.claim_next() == (0, False)
        assert b.claim_next() == (1, False)
        assert a.claim_next() == (2, False)
        assert b.claim_next() is None
        assert a.summary() == {
            "blocks": 3,
            "leases_claimed": 2,
            "leases_stolen": 0,
        }

    def test_done_blocks_are_never_reclaimed(self, tmp_path):
        base = tmp_path / "ck.json"
        a = LeaseDirectory(base, 2, owner="a")
        assert a.claim_next() == (0, False)
        a.mark_done(0)
        stale = time.time() - 3600
        os.utime(a.lease_path(0), (stale, stale))
        b = LeaseDirectory(base, 2, owner="b")
        assert b.claim_next() == (1, False)
        assert b.claim_next() is None

    def test_heartbeat_prevents_theft(self, tmp_path):
        base = tmp_path / "ck.json"
        a = LeaseDirectory(base, 1, lease_timeout=0.05, owner="a")
        assert a.claim_next() == (0, False)
        b = LeaseDirectory(base, 1, lease_timeout=0.05, owner="b")
        a.heartbeat(0)
        assert b.claim_next() is None  # freshly touched: not stale
        time.sleep(0.06)
        assert b.claim_next() == (0, True)  # now stale: stolen
        assert b.summary()["leases_stolen"] == 1

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="block count"):
            LeaseDirectory(tmp_path / "ck.json", 0)
        with pytest.raises(ConfigurationError, match="lease_timeout"):
            LeaseDirectory(tmp_path / "ck.json", 1, lease_timeout=0.0)
        with pytest.raises(ConfigurationError, match="lease_timeout"):
            LeaseDirectory(
                tmp_path / "ck.json", 1, lease_timeout=float("nan")
            )


# --------------------------------------------------------------------------- #
# block splitting and shard-spec parsing
# --------------------------------------------------------------------------- #


class TestBlockPlanning:
    def test_split_blocks_is_contiguous_and_near_even(self):
        items = list(range(10))
        blocks = split_blocks(items, 3)
        assert blocks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert split_blocks(items, 1) == [items]
        # More blocks than items: trailing blocks are empty, nothing lost.
        blocks = split_blocks([1, 2], 4)
        assert [item for block in blocks for item in block] == [1, 2]
        assert len(blocks) == 4

    def test_parse_shard_auto_spellings(self):
        assert parse_shard("auto") == (AUTO_SHARD, None)
        assert parse_shard("auto/4") == (AUTO_SHARD, 4)
        assert parse_shard("0/2") == (0, 2)
        with pytest.raises(ConfigurationError):
            parse_shard("auto/0")
        with pytest.raises(ConfigurationError):
            parse_shard("auto/x")

    def test_plan_auto_manifest_round_trips(self, tmp_path):
        base = tmp_path / "sweep.json"
        keys = [task.key for task in expand_run_tasks(_spec())]
        manifest = ShardManifest.plan_auto(base, keys, 4)
        assert manifest.mode == "auto"
        assert len(manifest.shard_files) == 4
        assert manifest.shard_files[0] == shard_checkpoint_path(base, 0, 4).name
        restored = ShardManifest.from_payload(manifest.as_payload(), "test")
        assert restored.mode == "auto"
        assert restored.as_payload() == manifest.as_payload()
        # Static manifests (and pre-auto payloads) default to "static".
        static = ShardManifest.plan(base, keys, 2)
        assert static.mode == "static"
        payload = static.as_payload()
        payload.pop("mode")
        assert ShardManifest.from_payload(payload, "test").mode == "static"
