"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MetricsCollector, bits_for_int
from repro.election import Certificate, best_certificate
from repro.election.ids import candidate_probability, id_space_size
from repro.graphs import (
    Topology,
    cheeger_bounds,
    conductance_exact,
    cut_conductance,
    cycle,
    isoperimetric_number_exact,
    mixing_time,
    random_regular,
    spectral_gap,
    stationary_distribution,
)

# Hypothesis settings: the graph-heavy properties build topologies, which is
# not instantaneous, so cap the number of examples to keep the suite quick.
GRAPH_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #

small_cycle_sizes = st.integers(min_value=3, max_value=14)
certificates = st.builds(
    Certificate,
    estimate=st.integers(min_value=1, max_value=2 ** 20),
    node_id=st.integers(min_value=1, max_value=2 ** 30),
)


@st.composite
def connected_topologies(draw) -> Topology:
    """Small random connected graphs: a random tree plus extra edges."""
    n = draw(st.integers(min_value=2, max_value=12))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2 ** 16)))
    edges = set()
    for v in range(1, n):
        u = rng.randrange(v)
        edges.add((u, v))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Topology(n, sorted(edges), name=f"random_connected(n={n})")


# --------------------------------------------------------------------------- #
# core encoding properties
# --------------------------------------------------------------------------- #


class TestEncodingProperties:
    @given(st.integers(min_value=0, max_value=2 ** 62))
    def test_bits_for_int_matches_bit_length(self, value):
        assert bits_for_int(value) == max(1, value.bit_length())

    @given(st.integers(min_value=1, max_value=10 ** 6))
    def test_id_space_is_fourth_power(self, n):
        assert id_space_size(n) == max(2, n) ** 4

    @given(st.integers(min_value=1, max_value=10 ** 6), st.floats(min_value=0.1, max_value=10))
    def test_candidate_probability_is_a_probability(self, n, c):
        p = candidate_probability(n, c)
        assert 0.0 < p <= 1.0

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 1000)), max_size=30))
    def test_metrics_merge_is_additive(self, records):
        a, b, merged = MetricsCollector(), MetricsCollector(), MetricsCollector()
        for i, (bits, count) in enumerate(records):
            target = a if i % 2 == 0 else b
            target.record_message(bits=bits, count=count)
            target.record_round()
        merged.merge(a)
        merged.merge(b)
        assert merged.messages == a.messages + b.messages
        assert merged.bits == a.bits + b.bits
        assert merged.rounds == a.rounds + b.rounds


# --------------------------------------------------------------------------- #
# certificate ordering properties
# --------------------------------------------------------------------------- #


class TestCertificateProperties:
    @given(certificates, certificates)
    def test_beats_is_antisymmetric(self, a, b):
        if a == b:
            assert not a.beats(b) and not b.beats(a)
        else:
            assert a.beats(b) != b.beats(a)

    @given(certificates, certificates, certificates)
    def test_beats_is_transitive(self, a, b, c):
        if a.beats(b) and b.beats(c):
            assert a.beats(c)

    @given(st.lists(certificates, min_size=1, max_size=20))
    def test_best_certificate_beats_all_others(self, items):
        best = best_certificate(items)
        assert best in items
        assert all(best == other or best.beats(other) for other in items)


# --------------------------------------------------------------------------- #
# graph-theoretic invariants
# --------------------------------------------------------------------------- #


class TestTopologyProperties:
    @GRAPH_SETTINGS
    @given(connected_topologies())
    def test_port_maps_are_involutive(self, topology):
        for node in range(topology.num_nodes):
            for port in range(1, topology.degree(node) + 1):
                neighbor, neighbor_port = topology.endpoint(node, port)
                assert topology.endpoint(neighbor, neighbor_port) == (node, port)

    @GRAPH_SETTINGS
    @given(connected_topologies())
    def test_handshake_lemma(self, topology):
        assert sum(topology.degrees()) == 2 * topology.num_edges

    @GRAPH_SETTINGS
    @given(connected_topologies())
    def test_stationary_distribution_sums_to_one(self, topology):
        if topology.num_edges == 0:
            return
        pi = stationary_distribution(topology)
        assert math.isclose(float(pi.sum()), 1.0, rel_tol=1e-9)

    @GRAPH_SETTINGS
    @given(connected_topologies())
    def test_cheeger_sandwich(self, topology):
        if topology.num_nodes < 2 or topology.num_edges == 0:
            return
        lower, gap, upper = cheeger_bounds(topology)
        assert lower <= gap + 1e-9 <= upper + 2e-9

    @GRAPH_SETTINGS
    @given(connected_topologies())
    def test_isoperimetric_dominates_conductance(self, topology):
        if topology.num_nodes < 2 or topology.num_edges == 0:
            return
        assert (
            isoperimetric_number_exact(topology)
            >= conductance_exact(topology) - 1e-12
        )

    @GRAPH_SETTINGS
    @given(connected_topologies(), st.integers(min_value=0, max_value=2 ** 16))
    def test_conductance_is_a_lower_bound_over_cuts(self, topology, seed):
        if topology.num_nodes < 2:
            return
        rng = random.Random(seed)
        size = rng.randint(1, topology.num_nodes - 1)
        subset = rng.sample(range(topology.num_nodes), size)
        assert conductance_exact(topology) <= cut_conductance(topology, subset) + 1e-12

    @given(small_cycle_sizes)
    def test_mixing_time_vs_spectral_relation_on_cycles(self, n):
        topology = cycle(n)
        t_mix = mixing_time(topology)
        gap = spectral_gap(topology)
        # t_mix >= (1/gap - 1) * ln 2 is the standard lower bound.
        assert t_mix >= (1.0 / gap - 1.0) * math.log(2.0) - 1.0

    @given(st.integers(min_value=2, max_value=6))
    def test_random_regular_is_regular(self, half_degree):
        degree = 2 * half_degree // 2 + 2  # even degrees 4..8
        topology = random_regular(16, degree, seed=half_degree)
        assert set(topology.degrees()) == {degree}
