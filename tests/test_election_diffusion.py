"""Unit tests for the potential-diffusion building block (Algorithm 7)."""

from __future__ import annotations

import random

import pytest

from repro.core import ConfigurationError, run_protocol
from repro.election import (
    DiffusionAveragingNode,
    DiffusionMessage,
    DisseminationMessage,
    convergence_rounds_estimate,
    diffusion_share,
    expected_average,
)
from repro.graphs import Topology, complete, cycle, path, star


def run_diffusion(topology: Topology, potentials, *, k: int, epsilon: float, rounds: int, seed=0):
    def factory(index: int, num_ports: int, rng: random.Random):
        return DiffusionAveragingNode(
            num_ports,
            rng,
            initial_potential=potentials[index],
            k=k,
            epsilon=epsilon,
            rounds=rounds,
        )

    return run_protocol(topology, factory, max_rounds=rounds + 2, seed=seed)


class TestShare:
    def test_share_formula(self):
        assert diffusion_share(4, 1.0) == pytest.approx(1.0 / 32.0)
        assert diffusion_share(8, 0.5) == pytest.approx(1.0 / (2 * 8 ** 1.5))

    def test_share_validation(self):
        with pytest.raises(ConfigurationError):
            diffusion_share(0, 1.0)
        with pytest.raises(ConfigurationError):
            diffusion_share(4, 0.0)

    def test_expected_average(self):
        assert expected_average(6.0, 4) == pytest.approx(1.5)
        with pytest.raises(ConfigurationError):
            expected_average(1.0, 0)

    def test_convergence_estimate_monotone_in_error(self):
        loose = convergence_rounds_estimate(
            k=8, epsilon=1.0, isoperimetric_number=1.0, relative_error=0.5
        )
        tight = convergence_rounds_estimate(
            k=8, epsilon=1.0, isoperimetric_number=1.0, relative_error=0.01
        )
        assert tight > loose

    def test_convergence_estimate_validation(self):
        with pytest.raises(ConfigurationError):
            convergence_rounds_estimate(
                k=8, epsilon=1.0, isoperimetric_number=0.0, relative_error=0.1
            )
        with pytest.raises(ConfigurationError):
            convergence_rounds_estimate(
                k=8, epsilon=1.0, isoperimetric_number=1.0, relative_error=2.0
            )


class TestMessages:
    def test_diffusion_message_fields(self):
        message = DiffusionMessage(potential=0.5, status_low=False, white_seen=True)
        assert message.size_bits() > 64  # the potential dominates

    def test_dissemination_message_is_small(self):
        message = DisseminationMessage(status_low=False, white_seen=True)
        assert message.size_bits() < 16


class TestAveragingNode:
    def test_rejects_bad_parameters(self):
        rng = random.Random(0)
        with pytest.raises(ConfigurationError):
            DiffusionAveragingNode(2, rng, initial_potential=-1.0, k=4, rounds=5)
        with pytest.raises(ConfigurationError):
            DiffusionAveragingNode(2, rng, initial_potential=1.0, k=4, rounds=0)

    def test_rejects_degree_too_large_for_estimate(self):
        rng = random.Random(0)
        # k=1, epsilon=1 -> share 0.5; 3 ports would ship 1.5x the potential.
        with pytest.raises(ConfigurationError):
            DiffusionAveragingNode(3, rng, initial_potential=1.0, k=1, rounds=5)


class TestConvergence:
    def test_total_potential_is_conserved(self):
        topology = cycle(8)
        potentials = [1.0] * 4 + [0.0] * 4
        result = run_diffusion(topology, potentials, k=8, epsilon=1.0, rounds=40)
        final = sum(r["potential"] for r in result.results())
        assert final == pytest.approx(4.0, abs=1e-9)

    def test_potentials_converge_to_average_on_complete_graph(self):
        topology = complete(6)
        potentials = [1.0, 1.0, 1.0, 1.0, 1.0, 0.0]
        k, eps = 4, 1.0
        rounds = 400
        result = run_diffusion(topology, potentials, k=k, epsilon=eps, rounds=rounds)
        average = expected_average(sum(potentials), 6)
        for record in result.results():
            assert record["potential"] == pytest.approx(average, rel=0.05)

    def test_uniform_start_stays_uniform(self):
        topology = star(5)
        potentials = [1.0] * 5
        result = run_diffusion(topology, potentials, k=8, epsilon=1.0, rounds=10)
        for record in result.results():
            assert record["potential"] == pytest.approx(1.0, abs=1e-12)

    def test_spread_decreases_monotonically_with_rounds(self):
        topology = path(6)
        potentials = [1.0, 0.0, 0.0, 0.0, 0.0, 1.0]

        def spread_after(rounds: int) -> float:
            result = run_diffusion(topology, potentials, k=4, epsilon=1.0, rounds=rounds)
            values = [r["potential"] for r in result.results()]
            return max(values) - min(values)

        assert spread_after(60) < spread_after(10) <= spread_after(1)

    def test_lemma4_estimate_suffices_for_convergence(self):
        # Run for the number of rounds Lemma 4 prescribes and check the
        # relative error bound it promises.
        topology = cycle(6)
        from repro.graphs import isoperimetric_number

        k, eps = 8, 1.0
        gamma = 0.25
        rounds = convergence_rounds_estimate(
            k=k,
            epsilon=eps,
            isoperimetric_number=isoperimetric_number(topology),
            relative_error=gamma / 10,
        )
        rounds = min(rounds, 4000)  # keep the test fast; the bound is loose
        potentials = [1.0, 1.0, 1.0, 0.0, 0.0, 0.0]
        result = run_diffusion(topology, potentials, k=k, epsilon=eps, rounds=rounds)
        average = expected_average(sum(potentials), 6)
        for record in result.results():
            assert abs(record["potential"] - average) / average <= gamma
