"""Unit tests for spectral quantities: mixing time, gaps, connectivity."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import ConfigurationError
from repro.graphs import (
    Topology,
    algebraic_connectivity,
    complete,
    cycle,
    lazy_walk_matrix,
    mixing_time,
    mixing_time_spectral_bound,
    path,
    random_regular,
    relaxation_time,
    simple_walk_matrix,
    spectral_gap,
    spectral_profile,
    star,
    stationary_distribution,
)


class TestWalkMatrices:
    def test_simple_walk_rows_sum_to_one(self):
        matrix = simple_walk_matrix(cycle(6))
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_lazy_walk_self_loop_probability(self):
        matrix = lazy_walk_matrix(cycle(6))
        assert np.allclose(np.diag(matrix), 0.5)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_lazy_walk_off_diagonal(self):
        matrix = lazy_walk_matrix(cycle(6))
        assert matrix[0, 1] == pytest.approx(0.25)

    def test_stationary_distribution_proportional_to_degree(self):
        topology = star(5)
        pi = stationary_distribution(topology)
        assert pi[0] == pytest.approx(0.5)
        assert np.allclose(pi[1:], 0.125)
        assert pi.sum() == pytest.approx(1.0)

    def test_stationary_is_fixed_point_of_lazy_walk(self):
        topology = random_regular(12, 3, seed=2)
        pi = stationary_distribution(topology)
        matrix = lazy_walk_matrix(topology)
        assert np.allclose(pi @ matrix, pi)


class TestMixingTime:
    def test_complete_graph_mixes_fast(self):
        assert mixing_time(complete(8)) <= 6

    def test_cycle_mixes_slowly(self):
        fast = mixing_time(complete(8))
        slow = mixing_time(cycle(8))
        assert slow > fast

    def test_single_node(self):
        assert mixing_time(Topology(1, [])) == 0

    def test_cycle_scaling_roughly_quadratic(self):
        t8 = mixing_time(cycle(8))
        t16 = mixing_time(cycle(16))
        # doubling n should roughly quadruple t_mix on the cycle
        assert 2.5 <= t16 / t8 <= 6.0

    def test_matches_power_iteration_on_small_graph(self):
        topology = cycle(6)
        via_eigen = mixing_time(topology)
        via_matrix = mixing_time(topology, matrix=lazy_walk_matrix(topology))
        assert via_eigen == via_matrix

    def test_definition_is_satisfied_at_t_mix_not_before(self):
        topology = cycle(7)
        t = mixing_time(topology)
        P = lazy_walk_matrix(topology)
        pi = stationary_distribution(topology)
        threshold = 1.0 / (2.0 * topology.num_nodes)
        at_t = np.linalg.matrix_power(P, t)
        before = np.linalg.matrix_power(P, t - 1)
        assert np.abs(at_t - pi[np.newaxis, :]).max() <= threshold + 1e-12
        assert np.abs(before - pi[np.newaxis, :]).max() > threshold

    def test_spectral_bound_upper_bounds_exact(self):
        for topology in (cycle(10), complete(8), star(8)):
            assert mixing_time(topology) <= mixing_time_spectral_bound(topology) + 1


class TestGaps:
    def test_spectral_gap_in_unit_interval(self):
        for topology in (cycle(8), complete(8), path(8)):
            gap = spectral_gap(topology)
            assert 0.0 < gap <= 1.0

    def test_complete_graph_has_larger_gap_than_cycle(self):
        assert spectral_gap(complete(8)) > spectral_gap(cycle(8))

    def test_relaxation_time_is_inverse_gap(self):
        topology = cycle(8)
        assert relaxation_time(topology) == pytest.approx(1.0 / spectral_gap(topology))

    def test_algebraic_connectivity_known_values(self):
        # For K_n the Laplacian spectrum is {0, n, ..., n}.
        assert algebraic_connectivity(complete(6)) == pytest.approx(6.0, abs=1e-8)
        # For C_n it is 2 - 2cos(2*pi/n).
        expected = 2.0 - 2.0 * math.cos(2.0 * math.pi / 8.0)
        assert algebraic_connectivity(cycle(8)) == pytest.approx(expected, abs=1e-8)

    def test_algebraic_connectivity_single_node_rejected(self):
        with pytest.raises(ConfigurationError):
            algebraic_connectivity(Topology(1, []))

    def test_mixing_faster_with_larger_gap(self):
        dense = random_regular(16, 6, seed=1)
        sparse = cycle(16)
        assert spectral_gap(dense) > spectral_gap(sparse)
        assert mixing_time(dense) < mixing_time(sparse)


class TestSpectralProfile:
    def test_profile_fields_consistent(self):
        topology = random_regular(16, 4, seed=4)
        profile = spectral_profile(topology)
        assert profile.num_nodes == 16
        assert profile.num_edges == 32
        assert profile.mixing_time == mixing_time(topology)
        assert profile.spectral_gap == pytest.approx(spectral_gap(topology))
        assert profile.relaxation_time == pytest.approx(1.0 / profile.spectral_gap)
        assert profile.mixing_time <= profile.mixing_time_upper_bound + 1

    def test_as_dict_keys(self):
        data = spectral_profile(cycle(6)).as_dict()
        assert {"num_nodes", "mixing_time", "spectral_gap"} <= set(data)
