"""Tests for the telemetry layer (:mod:`repro.obs`).

Three contracts are pinned down here:

* the span API is a strict no-op when no collector is active, and a
  nestable innermost-wins scope when one is;
* telemetry observes but never perturbs: sweep results are bit-identical
  with telemetry (and profiling) on or off, across serial, pooled,
  spawn-start and sharded execution;
* the JSONL export round-trips: feeding an exported file back through
  ``summarize_telemetry`` (or ``repro-le stats``) reproduces the live
  sink's summary exactly.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import ExperimentSpec, run_experiment
from repro.analysis.runners import flooding_runner
from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.graphs import cycle, grid_2d, star
from repro.obs import (
    ProfileAggregate,
    SpanCollector,
    SpanStats,
    Stopwatch,
    TaskProfiler,
    TaskTelemetry,
    TelemetrySink,
    TASK_RECORD_FIELDS,
    TELEMETRY_VERSION,
    active_collector,
    collect_spans,
    read_telemetry,
    span,
    summarize_telemetry,
    validate_profiler,
)
from repro.parallel import run_experiments

SEEDS = (0, 1, 2)

WORKER_COUNTS = sorted({1, 2} | {int(os.environ.get("REPRO_TEST_WORKERS", 2))})


def _spec(name: str = "flooding") -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        runner=flooding_runner,
        topologies=[cycle(8), star(8), grid_2d(3, 3)],
        seeds=SEEDS,
    )


def _comparable(cells):
    rows = []
    for cell in cells:
        row = cell.as_dict()
        row.pop("mean_wall_clock_seconds")
        rows.append(row)
    return rows


class TestSpanApi:
    def test_disabled_span_is_a_shared_noop(self):
        assert active_collector() is None
        # No allocation on the off path: the same object every time.
        assert span("simulate") is span("anything")

    def test_spans_record_into_active_collector(self):
        with collect_spans() as spans:
            with span("work"):
                pass
            with span("work"):
                pass
        assert active_collector() is None
        totals = spans.totals()
        assert totals["work"]["count"] == 2
        assert totals["work"]["total_seconds"] >= 0.0
        assert spans.total_seconds("missing") == 0.0

    def test_nested_collectors_innermost_wins(self):
        with collect_spans() as outer:
            with span("outer-only"):
                pass
            with collect_spans() as inner:
                with span("inner-only"):
                    pass
            assert active_collector() is outer
        assert "inner-only" not in outer.totals()
        assert "outer-only" not in inner.totals()
        assert inner.totals()["inner-only"]["count"] == 1

    def test_span_records_on_exception(self):
        with collect_spans() as spans:
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError("boom")
        assert spans.totals()["doomed"]["count"] == 1

    def test_stats_merge_dict(self):
        stats = SpanStats()
        stats.add(2.0)
        stats.merge_dict(
            {"count": 3, "total_seconds": 6.0, "min_seconds": 0.5, "max_seconds": 4.0}
        )
        assert stats.count == 4
        assert stats.total_seconds == 8.0
        assert stats.min_seconds == 0.5
        assert stats.max_seconds == 4.0

    def test_collector_merge_totals(self):
        a, b = SpanCollector(), SpanCollector()
        a.record("x", 1.0)
        b.record("x", 3.0)
        b.record("y", 2.0)
        a.merge_totals(b.totals())
        totals = a.totals()
        assert totals["x"]["count"] == 2
        assert totals["x"]["total_seconds"] == 4.0
        assert totals["y"]["count"] == 1
        assert len(a) == 2


class TestStopwatch:
    def test_elapsed_and_restart_with_injected_clock(self):
        readings = iter([10.0, 12.5, 20.0, 21.0])
        watch = Stopwatch(lambda: next(readings))
        assert watch.elapsed() == 2.5
        watch.restart()
        assert watch.elapsed() == 1.0


class TestTelemetrySink:
    def _populate(self, sink: TelemetrySink) -> None:
        sink.begin_sweep(workers=2, backend="event")
        sink.emit_telemetry(
            TaskTelemetry(
                task_key="k1",
                experiment="flooding",
                topology="cycle(8)",
                topology_index=0,
                seed=0,
                seed_index=0,
                worker="pid-1",
                backend="event",
                queue_wait_seconds=0.25,
                simulate_seconds=1.5,
                task_seconds=2.0,
                spans={"simulate": {"count": 1, "total_seconds": 1.5,
                                    "min_seconds": 1.5, "max_seconds": 1.5}},
                fold_seconds=0.125,
                checkpoint_seconds=0.5,
            )
        )
        sink.record_driver(
            elapsed_seconds=4.0, restored=0, spans={}, profile_hotspots=None
        )

    def test_staging_then_atomic_publish(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        sink = TelemetrySink(path)
        self._populate(sink)
        partial = tmp_path / "tel.jsonl.partial"
        assert partial.exists()
        assert not path.exists()
        sink.close()
        sink.close()  # idempotent
        assert path.exists()
        assert not partial.exists()

    def test_abort_keeps_partial_and_never_publishes(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        sink = TelemetrySink(path)
        self._populate(sink)
        sink.abort()
        assert not path.exists()
        assert (tmp_path / "tel.jsonl.partial").exists()

    def test_zero_record_sweep_still_publishes_a_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        sink = TelemetrySink(path)
        sink.close()
        assert path.exists()
        assert path.read_text(encoding="utf-8") == ""

    def test_task_records_match_the_schema(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        sink = TelemetrySink(path)
        self._populate(sink)
        sink.close()
        records = read_telemetry(path)
        header = records[0]
        assert header["kind"] == "sweep"
        assert header["version"] == TELEMETRY_VERSION
        tasks = [r for r in records if r["kind"] == "task"]
        assert tasks
        for record in tasks:
            assert tuple(sorted(record)) == tuple(sorted(TASK_RECORD_FIELDS))
        assert records[-1]["kind"] == "driver"

    def test_summary_aggregates_the_emitted_records(self, tmp_path):
        sink = TelemetrySink(tmp_path / "tel.jsonl")
        self._populate(sink)
        sink.close()
        summary = sink.summary()
        assert summary["runs"] == 1
        assert summary["workers"] == 2
        assert summary["totals"]["simulate_seconds"] == 1.5
        assert summary["checkpoint_io_share"] == 0.5 / 4.0
        (worker,) = summary["worker_utilization"]
        assert worker["worker"] == "pid-1"
        assert worker["utilization"] == 2.0 / 4.0
        (cell,) = summary["cells"]
        assert cell["runs"] == 1
        assert cell["p50_simulate_seconds"] == 1.5
        (straggler,) = summary["stragglers"]
        assert straggler["task_key"] == "k1"

    def test_post_hoc_summary_reproduces_live_summary_exactly(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        sink = TelemetrySink(path)
        self._populate(sink)
        sink.close()
        assert summarize_telemetry(read_telemetry(path)) == sink.summary()


class TestTelemetryDoesNotPerturbResults:
    """Results with telemetry on must be bit-identical to telemetry off."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_pooled_results_identical(self, workers, tmp_path):
        spec = _spec()
        baseline = run_experiment(spec, workers=workers)
        sink = TelemetrySink(tmp_path / "tel.jsonl")
        instrumented = run_experiment(spec, workers=workers, telemetry=sink)
        assert _comparable(instrumented.cells) == _comparable(baseline.cells)
        summary = summarize_telemetry(read_telemetry(sink.path))
        assert summary["runs"] == 3 * len(SEEDS)
        assert summary["workers"] == workers

    def test_spawn_results_identical(self, tmp_path):
        spec = _spec()
        baseline = run_experiment(spec, workers=2)
        sink = TelemetrySink(tmp_path / "tel.jsonl")
        instrumented = run_experiment(
            spec, workers=2, start_method="spawn", telemetry=sink
        )
        assert _comparable(instrumented.cells) == _comparable(baseline.cells)
        workers = {
            record["worker"]
            for record in read_telemetry(sink.path)
            if record["kind"] == "task"
        }
        assert workers  # pool workers are pid-labelled
        assert all(label.startswith("pid-") for label in workers)

    def test_sharded_results_identical(self, tmp_path):
        spec = _spec()
        baseline_shards = [
            run_experiments(
                [spec],
                workers=2,
                shard=(i, 2),
                checkpoint=tmp_path / f"base-{i}.json",
            )
            for i in range(2)
        ]
        instrumented_shards = []
        for i in range(2):
            sink = TelemetrySink(tmp_path / f"tel-{i}.jsonl")
            instrumented_shards.append(
                run_experiments(
                    [spec],
                    workers=2,
                    shard=(i, 2),
                    checkpoint=tmp_path / f"inst-{i}.json",
                    telemetry=sink,
                )
            )
            summary = summarize_telemetry(read_telemetry(sink.path))
            assert summary["shard"] == f"{i}/2"
            assert summary["runs"] > 0
        for baseline, instrumented in zip(baseline_shards, instrumented_shards):
            for base_result, inst_result in zip(baseline, instrumented):
                assert _comparable(inst_result.cells) == _comparable(
                    base_result.cells
                )
        # The two shards together cover the full grid exactly once.
        total = sum(
            cell.runs
            for results in instrumented_shards
            for result in results
            for cell in result.cells
        )
        assert total == 3 * len(SEEDS)

    def test_checkpointed_telemetry_counts_restored_runs(self, tmp_path):
        spec = _spec()
        checkpoint = tmp_path / "ckpt.json"
        run_experiment(spec, workers=1, checkpoint=checkpoint)
        sink = TelemetrySink(tmp_path / "tel.jsonl")
        resumed = run_experiment(
            spec, workers=1, checkpoint=checkpoint, telemetry=sink
        )
        summary = summarize_telemetry(read_telemetry(sink.path))
        assert summary["runs"] == 0  # nothing re-executed...
        assert summary["restored"] == 3 * len(SEEDS)  # ...everything replayed
        baseline = run_experiment(spec, workers=1)
        assert _comparable(resumed.cells) == _comparable(baseline.cells)


class TestProfiling:
    def test_validate_profiler(self):
        assert validate_profiler("cprofile") == "cprofile"
        with pytest.raises(ValueError):
            validate_profiler("perf")

    def test_task_profiler_payload_is_flat_and_mergeable(self):
        with TaskProfiler() as profiler:
            sum(range(1000))
        payload = profiler.payload()
        assert payload
        for function, counters in payload.items():
            assert function.count(":") >= 2
            assert len(counters) == 4
        aggregate = ProfileAggregate()
        assert not aggregate
        aggregate.merge(payload)
        aggregate.merge(payload)
        assert aggregate.tasks == 2
        hotspots = aggregate.hotspots(top=5)
        assert len(hotspots) <= 5
        assert all(row["calls"] >= 2 for row in hotspots)

    def test_profiled_sweep_keeps_results_and_reports_hotspots(self, tmp_path):
        spec = _spec()
        baseline = run_experiment(spec, workers=2)
        sink = TelemetrySink(tmp_path / "tel.jsonl")
        profiled = run_experiment(
            spec, workers=2, telemetry=sink, profile="cprofile"
        )
        assert _comparable(profiled.cells) == _comparable(baseline.cells)
        summary = summarize_telemetry(read_telemetry(sink.path))
        assert summary["profile"] == "cprofile"
        assert summary["profile_hotspots"]
        assert any(
            "flooding" in row["function"] for row in summary["profile_hotspots"]
        )

    def test_profile_requires_telemetry(self):
        with pytest.raises(ConfigurationError):
            run_experiment(_spec(), workers=2, profile="cprofile")

    def test_unknown_profiler_rejected(self, tmp_path):
        sink = TelemetrySink(tmp_path / "tel.jsonl")
        with pytest.raises(ConfigurationError):
            run_experiment(_spec(), workers=2, telemetry=sink, profile="perf")


class TestStatsCommand:
    def _export(self, tmp_path):
        sink = TelemetrySink(tmp_path / "tel.jsonl")
        run_experiment(_spec(), workers=2, telemetry=sink)
        return sink.path

    def test_stats_reproduces_sweep_summary(self, tmp_path, capsys):
        path = self._export(tmp_path)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "worker utilization" in out
        assert "per-cell simulate latency" in out
        assert "top straggler tasks" in out

    def test_stats_top_limits_stragglers(self, tmp_path, capsys):
        path = self._export(tmp_path)
        assert main(["stats", str(path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("flooding|") >= 1

    def test_stats_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        assert main(["stats", str(bad)]) != 0

    def test_summarize_rejects_non_positive_top(self):
        for bad in (0, -3, float("nan"), 2.5):
            with pytest.raises(ConfigurationError, match="top"):
                summarize_telemetry([], top=bad)

    def test_stats_cli_rejects_non_positive_top(self, tmp_path, capsys):
        path = tmp_path / "tel.jsonl"
        path.write_text("", encoding="utf-8")
        assert main(["stats", str(path), "--top", "0"]) == 2
        assert "top" in capsys.readouterr().err

    def test_sweep_telemetry_flag_exports_and_prints(self, tmp_path, capsys):
        path = tmp_path / "tel.jsonl"
        code = main(
            [
                "sweep",
                "--suite",
                "tiny",
                "--algorithms",
                "flooding",
                "--seeds",
                "2",
                "--telemetry",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep telemetry" in out
        records = read_telemetry(path)
        assert records[0]["kind"] == "sweep"
        assert any(record["kind"] == "task" for record in records)

    def test_sweep_profile_requires_telemetry_flag(self, capsys):
        code = main(
            [
                "sweep",
                "--suite",
                "tiny",
                "--algorithms",
                "flooding",
                "--profile",
                "cprofile",
            ]
        )
        assert code != 0
        assert "--telemetry" in capsys.readouterr().err
