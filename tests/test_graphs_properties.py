"""Unit tests for conductance, isoperimetric number and Cheeger bounds."""

from __future__ import annotations

import math

import pytest

from repro.core import ConfigurationError
from repro.graphs import (
    EXACT_CUT_LIMIT,
    barbell,
    cheeger_bounds,
    complete,
    conductance,
    conductance_exact,
    conductance_sweep,
    cut_conductance,
    cut_expansion,
    cycle,
    expansion_profile,
    isoperimetric_number,
    isoperimetric_number_exact,
    isoperimetric_number_sweep,
    path,
    random_regular,
    star,
)


class TestCutQuantities:
    def test_cut_conductance_on_cycle_half(self):
        topology = cycle(8)
        # Half the cycle: boundary 2, volume 8.
        assert cut_conductance(topology, range(4)) == pytest.approx(2 / 8)

    def test_cut_expansion_on_cycle_half(self):
        topology = cycle(8)
        assert cut_expansion(topology, range(4)) == pytest.approx(2 / 4)

    def test_cut_expansion_flips_large_sets(self):
        topology = cycle(8)
        small = cut_expansion(topology, range(3))
        large = cut_expansion(topology, range(3, 8))
        assert small == pytest.approx(large)

    def test_rejects_improper_subsets(self):
        topology = cycle(6)
        with pytest.raises(ConfigurationError):
            cut_conductance(topology, [])
        with pytest.raises(ConfigurationError):
            cut_conductance(topology, range(6))


class TestExactValues:
    def test_cycle_conductance(self):
        # Optimal cut of C_n splits it in half: 2 / (2 * floor(n/2)).
        assert conductance_exact(cycle(8)) == pytest.approx(2 / 8)
        assert conductance_exact(cycle(6)) == pytest.approx(2 / 6)

    def test_cycle_isoperimetric(self):
        assert isoperimetric_number_exact(cycle(8)) == pytest.approx(0.5)

    def test_complete_graph_conductance(self):
        n = 6
        # Optimal cut has n/2 nodes: (n/2)^2 edges across, volume (n/2)(n-1).
        expected = (n / 2) ** 2 / ((n / 2) * (n - 1))
        assert conductance_exact(complete(n)) == pytest.approx(expected)

    def test_complete_graph_isoperimetric(self):
        assert isoperimetric_number_exact(complete(6)) == pytest.approx(3.0)

    def test_path_is_worst_at_the_middle(self):
        assert isoperimetric_number_exact(path(8)) == pytest.approx(1 / 4)

    def test_star_isoperimetric(self):
        # Any subset of leaves has expansion 1.
        assert isoperimetric_number_exact(star(7)) == pytest.approx(1.0)

    def test_barbell_has_tiny_conductance(self):
        assert conductance_exact(barbell(4)) < 0.1

    def test_single_node_rejected(self):
        from repro.graphs import Topology

        with pytest.raises(ConfigurationError):
            conductance_exact(Topology(1, []))


class TestSweepApproximation:
    def test_sweep_upper_bounds_exact_on_small_graphs(self):
        for topology in (cycle(10), complete(8), barbell(4), star(8)):
            exact = conductance_exact(topology)
            sweep = conductance_sweep(topology)
            assert sweep >= exact - 1e-9

    def test_sweep_is_tight_on_cycle(self):
        topology = cycle(12)
        assert conductance_sweep(topology) == pytest.approx(
            conductance_exact(topology), rel=0.25
        )

    def test_isoperimetric_sweep_upper_bounds_exact(self):
        for topology in (cycle(10), barbell(4)):
            assert (
                isoperimetric_number_sweep(topology)
                >= isoperimetric_number_exact(topology) - 1e-9
            )

    def test_dispatcher_switches_on_size(self):
        small = cycle(10)
        large = random_regular(EXACT_CUT_LIMIT + 14, 4, seed=1)
        assert conductance(small) == pytest.approx(conductance_exact(small))
        # For the large graph the dispatcher must not take exponential time;
        # we just check it returns a sensible positive value.
        value = conductance(large)
        assert 0.0 < value <= 1.0

    def test_dispatcher_exact_override(self):
        topology = cycle(10)
        assert conductance(topology, exact=False) >= conductance(topology, exact=True) - 1e-9


class TestCheeger:
    def test_sandwich_holds_on_small_graphs(self):
        for topology in (cycle(8), complete(6), star(8), barbell(4)):
            lower, gap, upper = cheeger_bounds(topology)
            assert lower <= gap + 1e-9
            assert gap <= upper + 1e-9

    def test_known_mixing_conductance_relation(self):
        # 1/phi <= t_mix <= 1/phi^2 up to constants (used in Section 1).
        from repro.graphs import mixing_time

        topology = cycle(12)
        phi = conductance_exact(topology)
        t_mix = mixing_time(topology)
        assert t_mix >= 1.0 / (4.0 * phi)
        assert t_mix <= 16.0 / (phi * phi) * math.log(12)


class TestExpansionProfile:
    def test_profile_consistency(self):
        topology = cycle(10)
        profile = expansion_profile(topology)
        assert profile.num_nodes == 10
        assert profile.diameter == 5
        assert profile.conductance == pytest.approx(conductance(topology))
        assert profile.isoperimetric_number == pytest.approx(isoperimetric_number(topology))
        assert profile.min_degree == profile.max_degree == 2

    def test_profile_as_dict(self):
        data = expansion_profile(complete(6)).as_dict()
        assert data["name"].startswith("complete")
        assert {"conductance", "isoperimetric_number", "mixing_time", "diameter"} <= set(data)

    def test_isoperimetric_at_least_conductance_times_min_degree_fraction(self):
        # i(G) >= phi(G) since volumes upper-bound set sizes times min degree.
        topology = random_regular(16, 4, seed=2)
        assert isoperimetric_number(topology) >= conductance(topology) - 1e-9
