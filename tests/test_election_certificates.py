"""Unit tests for leadership certificates (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.election import Certificate, best_certificate


class TestCertificate:
    def test_larger_estimate_beats_smaller(self):
        assert Certificate(8, 100).beats(Certificate(4, 1))

    def test_equal_estimate_smaller_id_wins(self):
        assert Certificate(8, 3).beats(Certificate(8, 7))
        assert not Certificate(8, 7).beats(Certificate(8, 3))

    def test_nothing_beats_itself(self):
        certificate = Certificate(8, 3)
        assert not certificate.beats(Certificate(8, 3))

    def test_everything_beats_none(self):
        assert Certificate(2, 2).beats(None)

    def test_sort_key_total_order(self):
        certificates = [
            Certificate(4, 9),
            Certificate(8, 5),
            Certificate(8, 2),
            Certificate(2, 1),
        ]
        ordered = sorted(certificates, key=Certificate.sort_key)
        assert ordered[-1] == Certificate(8, 2)
        assert ordered[0] == Certificate(2, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Certificate(0, 1)
        with pytest.raises(ValueError):
            Certificate(1, 0)

    def test_as_tuple(self):
        assert Certificate(4, 7).as_tuple() == (4, 7)

    def test_transitivity_of_beats(self):
        a, b, c = Certificate(8, 2), Certificate(8, 5), Certificate(4, 1)
        assert a.beats(b) and b.beats(c)
        assert a.beats(c)


class TestBestCertificate:
    def test_picks_strongest(self):
        best = best_certificate(
            [Certificate(4, 9), Certificate(8, 5), None, Certificate(8, 2)]
        )
        assert best == Certificate(8, 2)

    def test_all_none_gives_none(self):
        assert best_certificate([None, None]) is None

    def test_empty_gives_none(self):
        assert best_certificate([]) is None

    def test_single_entry(self):
        assert best_certificate([Certificate(2, 2)]) == Certificate(2, 2)
