"""Unit tests for token-level random-walk machinery."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import ConfigurationError
from repro.graphs import (
    WalkPopulation,
    complete,
    cycle,
    empirical_cover_time,
    empirical_hitting_time,
    estimate_hitting_probability,
    lazy_walk_step,
    simulate_lazy_walk,
    star,
    walk_distribution_after,
)


class TestSingleWalk:
    def test_step_stays_or_moves_to_neighbor(self):
        topology = cycle(6)
        rng = random.Random(0)
        for _ in range(50):
            nxt = lazy_walk_step(topology, 0, rng)
            assert nxt in (0, 1, 5)

    def test_laziness_probability_roughly_half(self):
        topology = cycle(6)
        rng = random.Random(1)
        stays = sum(lazy_walk_step(topology, 0, rng) == 0 for _ in range(2000))
        assert 0.4 < stays / 2000 < 0.6

    def test_trajectory_length_and_contiguity(self):
        topology = cycle(8)
        rng = random.Random(2)
        trajectory = simulate_lazy_walk(topology, 3, 20, rng)
        assert len(trajectory) == 21
        for a, b in zip(trajectory, trajectory[1:]):
            assert a == b or topology.has_edge(a, b)

    def test_negative_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_lazy_walk(cycle(5), 0, -1, random.Random(0))


class TestWalkPopulation:
    def test_token_count_is_conserved(self):
        topology = cycle(8)
        population = WalkPopulation.from_sources(topology, {0: 5, 3: 2})
        rng = random.Random(0)
        for _ in range(10):
            population.step(rng)
            assert population.total_tokens == 7

    def test_occupied_nodes_expand_over_time(self):
        topology = cycle(16)
        population = WalkPopulation.from_sources(topology, {0: 10})
        rng = random.Random(1)
        seen = population.run(60, rng)
        assert len(seen) > 3
        assert 0 in seen

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            WalkPopulation.from_sources(cycle(5), {0: -1})

    def test_hitting_probability_is_one_when_target_is_source(self):
        topology = cycle(8)
        probability = estimate_hitting_probability(
            topology,
            sources=[0],
            targets=[0],
            walks_per_source=1,
            steps=0,
            rng=random.Random(0),
        )
        assert probability == 1.0

    def test_hitting_probability_requires_targets(self):
        with pytest.raises(ConfigurationError):
            estimate_hitting_probability(
                cycle(8),
                sources=[0],
                targets=[],
                walks_per_source=1,
                steps=1,
                rng=random.Random(0),
            )

    def test_many_walks_hit_large_target_on_complete_graph(self):
        topology = complete(16)
        probability = estimate_hitting_probability(
            topology,
            sources=[0],
            targets=range(8, 16),
            walks_per_source=20,
            steps=10,
            rng=random.Random(3),
        )
        assert probability == 1.0


class TestExactDistribution:
    def test_distribution_sums_to_one(self):
        distribution = walk_distribution_after(cycle(9), 0, 5)
        assert distribution.sum() == pytest.approx(1.0)

    def test_distribution_converges_to_stationary(self):
        topology = star(6)
        distribution = walk_distribution_after(topology, 1, 200)
        from repro.graphs import stationary_distribution

        assert np.allclose(distribution, stationary_distribution(topology), atol=1e-3)

    def test_zero_steps_is_point_mass(self):
        distribution = walk_distribution_after(cycle(5), 2, 0)
        assert distribution[2] == 1.0


class TestEmpiricalStatistics:
    def test_hitting_time_neighbor_vs_antipode(self):
        topology = cycle(12)
        rng = random.Random(5)
        near = empirical_hitting_time(topology, 0, 1, rng, repeats=30)
        far = empirical_hitting_time(topology, 0, 6, rng, repeats=30)
        assert far > near

    def test_hitting_time_zero_for_same_node(self):
        assert empirical_hitting_time(cycle(8), 2, 2, random.Random(0), repeats=3) == 0

    def test_cover_time_complete_beats_cycle(self):
        rng = random.Random(7)
        cover_complete = empirical_cover_time(complete(8), 0, rng, repeats=3)
        cover_cycle = empirical_cover_time(cycle(8), 0, rng, repeats=3)
        assert cover_complete < cover_cycle
