"""Tests for the result archive and the memoized query layer.

The load-bearing guarantees:

* equivalence — archive-backed query results (hits + filled misses, any
  worker count, any populate path: live sink, checkpoint add, sharded
  merge) are bit-identical to a direct ``run_experiments`` sweep, the
  wall-clock column aside;
* memoization — the second identical query simulates zero cells;
* failure modes — torn/corrupt SQLite files and schema-version
  mismatches are refused with a clear ``ConfigurationError``, and
  concurrent writers archiving overlapping shards converge by task key.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.analysis.experiments import summarize_results
from repro.archive import (
    SCHEMA_VERSION,
    ArchiveSink,
    ResultArchive,
    parse_task_key,
    query_experiments,
)
from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.graphs import cycle, path
from repro.parallel.runner import run_experiments
from repro.parallel.sharding import expand_run_tasks
from repro.parallel.store import JsonlCheckpointStore
from repro.workloads import sweep_specs


def small_specs(algorithms=("flooding",), seeds=(0, 1)):
    return sweep_specs(
        list(algorithms),
        [cycle(6), path(5)],
        seeds=tuple(seeds),
        collect_profile=False,
    )


def stripped_cells(results):
    """Per-cell dict rows without the one nondeterministic column."""
    return [
        [
            {
                key: value
                for key, value in cell.as_dict().items()
                if key != "mean_wall_clock_seconds"
            }
            for cell in result.cells
        ]
        for result in results
    ]


# --------------------------------------------------------------------------- #
# store
# --------------------------------------------------------------------------- #


class TestResultArchiveStore:
    def test_roundtrip_and_merge_by_key(self, tmp_path):
        db = tmp_path / "a.sqlite"
        records = {
            "s|0|cycle_6|f1|0|0|": {"seed": 0, "payload": 1},
            "s|0|cycle_6|f1|1|1|": {"seed": 1, "payload": 2},
        }
        with ResultArchive(db) as archive:
            assert archive.add_records(records) == 2
            # replacing the same keys adds nothing new
            assert archive.add_records(records) == 0
            assert len(archive) == 2
            assert "s|0|cycle_6|f1|0|0|" in archive
            fetched = archive.fetch(list(records) + ["missing|0|x|f|0|0|"])
        assert fetched == records

    def test_stats_counts_specs(self, tmp_path):
        with ResultArchive(tmp_path / "a.sqlite") as archive:
            archive.add_records(
                {
                    "a|0|t|f|0|0|": {"x": 1},
                    "a|0|t|f|1|1|": {"x": 2},
                    "b|0|t|f|0|0|loss:p=0.1|irrevocable:c=2": {"x": 3},
                }
            )
            stats = archive.stats()
        assert stats["runs"] == 3
        assert stats["specs"] == 2
        assert stats["distinct_adversaries"] == 1
        assert stats["distinct_protocols"] == 1
        assert stats["schema_version"] == SCHEMA_VERSION

    def test_parse_task_key_roundtrip(self):
        specs = small_specs()
        for task in expand_run_tasks(specs[0]):
            coords = parse_task_key(task.key)
            assert coords.spec_name == task.spec_name
            assert coords.topology_index == task.topology_index
            assert coords.seed_index == task.seed_index
            assert coords.seed == task.seed
            assert coords.fingerprint == task.fingerprint

    def test_parse_task_key_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            parse_task_key("only|three|parts")
        with pytest.raises(ConfigurationError):
            parse_task_key("s|zero|t|f|not-an-int|0|")

    def test_malformed_key_rejected_before_any_write(self, tmp_path):
        with ResultArchive(tmp_path / "a.sqlite") as archive:
            archive.add_records({"s|0|t|f|0|0|": {"x": 1}})
            with pytest.raises(ConfigurationError):
                archive.add_records(
                    {"s|0|t|f|1|1|": {"x": 2}, "torn": {"x": 3}}
                )
            # the failed batch left the archive at its previous state
            assert len(archive) == 1


class TestArchiveFailureModes:
    def test_garbage_file_refused(self, tmp_path):
        db = tmp_path / "junk.sqlite"
        db.write_text("this is not a sqlite database, not even close\n")
        with pytest.raises(ConfigurationError, match="not a result archive"):
            ResultArchive(db)

    def test_torn_write_truncated_file_refused_with_clear_error(self, tmp_path):
        db = tmp_path / "torn.sqlite"
        with ResultArchive(db) as archive:
            archive.add_records(
                {f"s|0|t|f|{i}|{i}|": {"x": i} for i in range(50)}
            )
        # a crash mid-write tears the file: keep the header, lose the rest
        raw = db.read_bytes()
        db.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ConfigurationError, match="re-populate"):
            with ResultArchive(db) as archive:
                archive.fetch(["s|0|t|f|0|0|"])

    def test_schema_version_mismatch_refused(self, tmp_path):
        db = tmp_path / "future.sqlite"
        ResultArchive(db).close()
        conn = sqlite3.connect(str(db))
        with conn:
            conn.execute(
                "UPDATE archive_meta SET value='999' WHERE key='schema_version'"
            )
        conn.close()
        with pytest.raises(ConfigurationError, match="schema version 999"):
            ResultArchive(db)

    def test_foreign_sqlite_database_refused(self, tmp_path):
        db = tmp_path / "foreign.sqlite"
        conn = sqlite3.connect(str(db))
        with conn:
            conn.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
        conn.close()
        with pytest.raises(ConfigurationError, match="foreign"):
            ResultArchive(db)

    def test_concurrent_writers_overlapping_shards_dedupe_by_key(self, tmp_path):
        db = tmp_path / "shared.sqlite"
        ResultArchive(db).close()
        keys = [f"s|0|t|f|{i}|{i}|" for i in range(120)]
        # two writers cover overlapping halves [0, 80) and [40, 120), in
        # small batches, concurrently — the archive must converge to one
        # row per key with a valid record
        slices = [(0, 80), (40, 120)]
        failures = []

        def writer(lo, hi):
            try:
                with ResultArchive(db, timeout_seconds=60.0) as archive:
                    for start in range(lo, hi, 10):
                        archive.add_records(
                            {
                                key: {"value": index}
                                for index, key in enumerate(
                                    keys[start : start + 10], start
                                )
                            }
                        )
            except ConfigurationError as error:  # pragma: no cover - fail loud
                failures.append(error)

        threads = [threading.Thread(target=writer, args=s) for s in slices]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        with ResultArchive(db) as archive:
            assert len(archive) == 120
            fetched = archive.fetch(keys)
        assert set(fetched) == set(keys)
        for index, key in enumerate(keys):
            assert fetched[key] == {"value": index}


# --------------------------------------------------------------------------- #
# live archiving sink
# --------------------------------------------------------------------------- #


class TestArchiveSink:
    def test_sweep_with_sink_populates_archive(self, tmp_path):
        db = tmp_path / "a.sqlite"
        specs = small_specs()
        run_experiments(specs, sinks=[ArchiveSink(db, specs)])
        wanted = {task.key for spec in specs for task in expand_run_tasks(spec)}
        with ResultArchive(db) as archive:
            assert set(archive.keys()) == wanted

    def test_emit_outside_specs_is_rejected(self, tmp_path):
        specs = small_specs()
        sink = ArchiveSink(tmp_path / "a.sqlite", specs)
        with pytest.raises(ConfigurationError, match="outside its specs"):
            sink.emit("not-a-spec", 0, 0, object(), 0.0)
        sink.close()

    def test_abort_keeps_completed_runs(self, tmp_path):
        db = tmp_path / "a.sqlite"
        specs = small_specs(seeds=(0,))
        sink = ArchiveSink(db, specs, flush_every=1000)
        results = run_experiments(specs, sinks=[])
        # emit one real run, then abort: the measurement must survive
        tasks = expand_run_tasks(specs[0])
        record_source = JsonlCheckpointStore(tmp_path / "ck.jsonl")
        del record_source, results
        from repro.analysis.experiments import execute_run, effective_runner
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runner = effective_runner(specs[0])
        run, elapsed = execute_run(runner, tasks[0].topology, tasks[0].seed)
        sink.emit(specs[0].name, 0, 0, run, elapsed)
        sink.abort()
        with ResultArchive(db) as archive:
            assert tasks[0].key in archive


# --------------------------------------------------------------------------- #
# memoized query equivalence
# --------------------------------------------------------------------------- #


class TestQueryEquivalence:
    def test_cold_then_warm_query_matches_direct_sweep(self, tmp_path):
        db = tmp_path / "a.sqlite"
        specs = small_specs()
        direct = run_experiments(specs)

        cold = query_experiments(specs, archive=db)
        assert cold.report.requested_runs == 4
        assert cold.report.simulated_runs == 4
        assert cold.report.archive_added == 4

        warm = query_experiments(specs, archive=db)
        assert warm.report.simulated_runs == 0
        assert warm.report.simulated_cells == 0
        assert warm.report.archived_runs == 4
        assert warm.report.hit_rate == 1.0

        assert (
            stripped_cells(direct)
            == stripped_cells(cold.results)
            == stripped_cells(warm.results)
        )

    def test_query_with_workers_matches_serial_direct_sweep(self, tmp_path):
        specs = small_specs()
        direct = run_experiments(specs)
        answer = query_experiments(
            specs, archive=tmp_path / "a.sqlite", workers=2
        )
        assert stripped_cells(direct) == stripped_cells(answer.results)

    def test_partial_archive_fills_only_missing_cells(self, tmp_path):
        db = tmp_path / "a.sqlite"
        narrow = small_specs(seeds=(0,))
        query_experiments(narrow, archive=db)

        wide = small_specs(seeds=(0, 1, 2))
        direct = run_experiments(wide)
        answer = query_experiments(wide, archive=db)
        assert answer.report.requested_runs == 6
        assert answer.report.archived_runs == 2
        assert answer.report.simulated_runs == 4
        assert stripped_cells(direct) == stripped_cells(answer.results)

    def test_sharded_populate_then_merge_then_add_hits_everything(self, tmp_path):
        db = tmp_path / "a.sqlite"
        specs = small_specs()
        checkpoint = tmp_path / "sweep.jsonl"
        for index in range(2):
            run_experiments(specs, checkpoint=checkpoint, shard=(index, 2))
        from repro.parallel import merge_shard_checkpoints
        from repro.parallel.checkpoint import manifest_path

        merged = tmp_path / "merged.jsonl"
        merge_shard_checkpoints(manifest_path(checkpoint), merged)
        with ResultArchive(db) as archive:
            archive.add_records(JsonlCheckpointStore(merged).load())

        direct = run_experiments(specs)
        answer = query_experiments(specs, archive=db)
        assert answer.report.simulated_runs == 0
        assert stripped_cells(direct) == stripped_cells(answer.results)

    def test_adversarial_query_preserves_safety_and_curves(self, tmp_path):
        from repro.analysis.robustness import curves_as_dicts, fold_experiments

        specs, adversarial = api.plan_sweep(
            topologies=[cycle(6)],
            algorithms=["flooding"],
            scenario="lossy",
            seeds=1,
            collect_profile=False,
        )
        assert adversarial
        direct = run_experiments(specs)
        cold = query_experiments(specs, archive=tmp_path / "a.sqlite")
        warm = query_experiments(specs, archive=tmp_path / "a.sqlite")
        assert warm.report.simulated_cells == 0
        assert (
            curves_as_dicts(fold_experiments(specs, direct))
            == curves_as_dicts(fold_experiments(specs, cold.results))
            == curves_as_dicts(fold_experiments(specs, warm.results))
        )

    def test_reserved_runner_kwargs_rejected(self, tmp_path):
        specs = small_specs()
        for reserved in ("checkpoint", "shard", "keep_results"):
            with pytest.raises(ConfigurationError, match="does not accept"):
                query_experiments(
                    specs,
                    archive=tmp_path / "a.sqlite",
                    **{reserved: "anything"},
                )


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #


class TestArchiveCli:
    BASE = [
        "--suite",
        "tiny",
        "--algorithms",
        "flooding",
        "--seeds",
        "1",
        "--no-profile",
    ]

    def test_sweep_archive_then_query_simulates_nothing(self, capsys, tmp_path):
        db = str(tmp_path / "a.sqlite")
        assert main(["sweep"] + self.BASE + ["--archive", db]) == 0
        capsys.readouterr()
        assert main(["query"] + self.BASE + ["--archive", db]) == 0
        out = capsys.readouterr().out
        assert "simulated_runs  : 0" in out
        assert "simulated_cells : 0" in out

    def test_query_json_is_bit_identical_across_passes(self, capsys, tmp_path):
        db = str(tmp_path / "a.sqlite")
        args = ["query"] + self.BASE + ["--archive", db]
        assert main(args + ["--json", str(tmp_path / "one.json")]) == 0
        assert main(args + ["--json", str(tmp_path / "two.json")]) == 0
        capsys.readouterr()
        one = json.loads((tmp_path / "one.json").read_text())
        two = json.loads((tmp_path / "two.json").read_text())
        assert two["report"]["simulated_cells"] == 0
        assert one["curves"] == two["curves"]

        def strip(cells):
            return [
                {k: v for k, v in cell.items() if k != "mean_wall_clock_seconds"}
                for cell in cells
            ]

        assert strip(one["cells"]) == strip(two["cells"])

    def test_archive_add_and_stats_roundtrip(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "ck.jsonl")
        db = str(tmp_path / "a.sqlite")
        assert main(["sweep"] + self.BASE + ["--checkpoint", checkpoint]) == 0
        capsys.readouterr()
        assert main(["archive", "add", checkpoint, "--archive", db]) == 0
        out = capsys.readouterr().out
        assert "records_added" in out
        assert main(["archive", "stats", "--archive", db]) == 0
        out = capsys.readouterr().out
        assert "runs per spec" in out

    def test_archive_stats_empty_archive_exits_one(self, capsys, tmp_path):
        db = str(tmp_path / "empty.sqlite")
        ResultArchive(db).close()
        assert main(["archive", "stats", "--archive", db]) == 1

    def test_archive_add_garbage_checkpoint_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{definitely not json")
        code = main(
            ["archive", "add", str(bad), "--archive", str(tmp_path / "a.sqlite")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_query_corrupt_archive_exits_two(self, capsys, tmp_path):
        db = tmp_path / "junk.sqlite"
        db.write_text("not sqlite")
        code = main(["query"] + self.BASE + ["--archive", str(db)])
        assert code == 2
        assert "not a result archive" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# HTTP service
# --------------------------------------------------------------------------- #


@pytest.fixture
def archive_server(tmp_path):
    server = api.serve(
        archive=tmp_path / "served.sqlite", host="127.0.0.1", port=0, block=False
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def get_json(url):
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


class TestArchiveService:
    QUERY = "/query?suite=tiny&algorithms=flooding&seeds=1"

    def test_health_and_stats(self, archive_server):
        health = get_json(archive_server + "/health")
        assert health["status"] == "ok"
        assert health["runs"] == 0
        stats = get_json(archive_server + "/stats")
        assert stats["schema_version"] == SCHEMA_VERSION

    def test_query_twice_second_pass_simulates_nothing(self, archive_server):
        one = get_json(archive_server + self.QUERY)
        assert one["report"]["simulated_runs"] == 5
        two = get_json(archive_server + self.QUERY)
        assert two["report"]["simulated_cells"] == 0
        assert two["report"]["archived_runs"] == 5

        def strip(cells):
            return [
                {k: v for k, v in cell.items() if k != "mean_wall_clock_seconds"}
                for cell in cells
            ]

        assert strip(one["cells"]) == strip(two["cells"])
        assert get_json(archive_server + "/health")["runs"] == 5

    def test_bad_parameters_return_400_with_json_error(self, archive_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(archive_server + "/query?scenario=sunny-day")
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert "unknown scenario" in body["error"]

    def test_unknown_path_returns_404(self, archive_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(archive_server + "/nope")
        assert excinfo.value.code == 404
