"""Tests for the first-class protocol API (:mod:`repro.protocols`).

The contract under test:

* the registry lists every election algorithm with a typed parameter
  schema, and configuration errors spell that schema out;
* :class:`ProtocolSpec` round-trips through its string form
  (``parse -> str -> parse`` is the identity) and coerces values to the
  schema's declared types, so equal configurations hash equal;
* specs and their runners are picklable (the parallel engine ships them
  to worker processes);
* a default-configuration spec runs bit-identically to the legacy
  ``RUNNERS`` entry, and parameter variants measurably change the run;
* the experiment layer accepts ``protocol=`` specs, keys cells on the
  protocol token, and exposes grid helpers (``param_grid``, the
  ``paper-constants`` ladder);
* the JSONL export sink streams one record per run, protocol token
  included, without ``keep_results``.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.analysis import ExperimentSpec, JsonlSink, run_experiment
from repro.analysis.runners import RUNNERS, irrevocable_runner
from repro.core.errors import ConfigurationError
from repro.graphs import cycle, grid_2d, star
from repro.parallel import expand_run_tasks
from repro.protocols import (
    PROTOCOLS,
    ParamSpec,
    ProtocolRunner,
    ProtocolSpec,
    describe_protocols,
    protocol_by_name,
    protocol_runner,
    register_protocol,
    run_protocol,
)
from repro.workloads import PROTOCOL_SCENARIOS, param_grid, protocol_scenario, sweep_specs


# --------------------------------------------------------------------------- #
# registry and schemas
# --------------------------------------------------------------------------- #


class TestRegistry:
    def test_all_algorithms_registered(self):
        assert {"irrevocable", "revocable", "flooding", "gilbert", "uniform"} <= set(
            PROTOCOLS
        )

    def test_registry_matches_legacy_runner_names(self):
        assert set(RUNNERS) <= set(PROTOCOLS)

    def test_describe_lists_every_protocol_with_schema(self):
        rows = {row["protocol"]: row for row in describe_protocols()}
        assert set(rows) == set(PROTOCOLS)
        assert "c (float, default 2.0)" in rows["irrevocable"]["parameters"]
        assert "x_multiplier (float, default 2.0)" in rows["irrevocable"]["parameters"]
        assert "epsilon (float, default 0.5)" in rows["revocable"]["parameters"]
        assert "extra_estimates (int, default 0)" in rows["revocable"]["parameters"]
        assert rows["uniform"]["parameters"] == "(no parameters)"

    def test_unknown_protocol_lists_available(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            protocol_by_name("gossip")

    def test_register_rejects_reserved_characters(self):
        for name in ("a:b", "a|b", "a,b", "a=b", ""):
            with pytest.raises(ConfigurationError):
                register_protocol(name, lambda topology, seed: None)

    def test_param_default_coerced_to_declared_type(self):
        spec = ParamSpec("c", float, 2)  # int default on a float param
        assert spec.default == 2.0 and isinstance(spec.default, float)
        assert spec.describe() == "c (float, default 2.0)"
        with pytest.raises(ConfigurationError, match="bad default"):
            ParamSpec("c", float, "lots")

    def test_param_names_reject_reserved_characters(self):
        for name in ("a,b", "a|b", "a:b", "a=b", ""):
            with pytest.raises(ConfigurationError):
                ParamSpec(name, int, 0)

    def test_register_rejects_schema_factory_default_drift(self):
        def factory(topology, seed, *, c: float = 2.5):
            return None

        with pytest.raises(ConfigurationError, match="does not match"):
            register_protocol(
                "drift-test", factory, params=(ParamSpec("c", float, 2.0),)
            )
        assert "drift-test" not in PROTOCOLS

    def test_register_rejects_schema_param_factory_lacks(self):
        def factory(topology, seed):
            return None

        with pytest.raises(ConfigurationError, match="does not accept"):
            register_protocol(
                "orphan-param-test", factory, params=(ParamSpec("c", float, 2.0),)
            )
        assert "orphan-param-test" not in PROTOCOLS

    def test_register_rejects_duplicates_without_replace(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_protocol("flooding", lambda topology, seed: None)

    def test_register_and_replace_custom_protocol(self):
        def factory(topology, seed, *, c: float = 1.0):
            return run_protocol("flooding", topology, seed, c=c)

        def retuned_factory(topology, seed, *, c: float = 3.0):
            return run_protocol("flooding", topology, seed, c=c)

        try:
            register_protocol(
                "custom-test", factory, params=(ParamSpec("c", float, 1.0),)
            )
            spec = ProtocolSpec.parse("custom-test:c=2")
            assert spec.params == (("c", 2.0),)
            register_protocol(
                "custom-test",
                retuned_factory,
                params=(ParamSpec("c", float, 3.0),),
                replace=True,
            )
            assert protocol_by_name("custom-test").schema.param("c").default == 3.0
        finally:
            PROTOCOLS.pop("custom-test", None)


class TestSchemaValidation:
    def test_unknown_parameter_spells_out_schema(self):
        with pytest.raises(ConfigurationError) as excinfo:
            ProtocolSpec.create("irrevocable", phase_budget=3)
        message = str(excinfo.value)
        assert "irrevocable accepts: c (float, default 2.0)" in message
        assert "x_multiplier (float, default 2.0)" in message

    def test_bad_value_spells_out_schema(self):
        with pytest.raises(ConfigurationError) as excinfo:
            ProtocolSpec.parse("irrevocable:c=lots")
        assert "irrevocable accepts:" in str(excinfo.value)

    def test_int_parameter_rejects_fractional(self):
        with pytest.raises(ConfigurationError, match="extra_estimates"):
            ProtocolSpec.create("revocable", extra_estimates=1.5)

    def test_int_parameter_accepts_integral_float(self):
        spec = ProtocolSpec.create("revocable", extra_estimates=2.0)
        assert spec.params == (("extra_estimates", 2),)

    def test_bool_parameter_spellings(self):
        for raw, expected in (
            ("true", True),
            ("False", False),
            ("YES", True),
            ("0", False),
        ):
            spec = ProtocolSpec.parse(f"flooding:all_nodes_compete={raw}")
            assert spec.params == (("all_nodes_compete", expected),)

    def test_bool_parameter_rejects_nonsense(self):
        with pytest.raises(ConfigurationError, match="all_nodes_compete"):
            ProtocolSpec.parse("flooding:all_nodes_compete=maybe")

    def test_float_parameter_rejects_bool(self):
        with pytest.raises(ConfigurationError, match="parameter 'c'"):
            ProtocolSpec.create("gilbert", c=True)

    @pytest.mark.parametrize(
        "text",
        [
            "revocable:epsilon=0",
            "revocable:epsilon=1.5",
            "revocable:xi=1",
            "revocable:extra_estimates=-1",
            "irrevocable:c=0",
            "irrevocable:x_multiplier=-2",
            "flooding:c=0",
        ],
    )
    def test_out_of_range_values_fail_at_construction(self, text):
        # Range checks fire at grid construction (with the schema spelled
        # out), not inside a worker process mid-sweep.
        with pytest.raises(ConfigurationError, match="accepts"):
            ProtocolSpec.parse(text)

    def test_check_rejects_bad_default_at_registration(self):
        from repro.protocols import ProtocolSchema
        from repro.protocols.schema import check_positive

        with pytest.raises(ConfigurationError, match="bad default"):
            ParamSpec("c", float, 0.0, check=check_positive)


# --------------------------------------------------------------------------- #
# spec string round-trips
# --------------------------------------------------------------------------- #


class TestSpecRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "uniform",
            "irrevocable",
            "irrevocable:c=3,x_multiplier=1.5",
            "revocable:epsilon=0.25,extra_estimates=1",
            "revocable:xi=0.05",
            "flooding:all_nodes_compete=True,c=2.5",
            "gilbert:c=4.0",
        ],
    )
    def test_parse_str_parse_identity(self, text):
        spec = ProtocolSpec.parse(text)
        assert ProtocolSpec.parse(str(spec)) == spec
        # And the rendered form is a fixed point of the round-trip.
        assert str(ProtocolSpec.parse(str(spec))) == str(spec)

    def test_coercion_normalises_spellings(self):
        assert ProtocolSpec.parse("irrevocable:c=3") == ProtocolSpec.parse(
            "irrevocable:c=3.0"
        )
        assert ProtocolSpec.parse("irrevocable:c=3") == ProtocolSpec.create(
            "irrevocable", c=3
        )

    def test_token_is_stable_under_keyword_order(self):
        a = ProtocolSpec.create("irrevocable", c=3.0, x_multiplier=1.5)
        b = ProtocolSpec.create("irrevocable", x_multiplier=1.5, c=3.0)
        assert a == b
        assert a.token() == b.token() == "irrevocable:c=3.0,x_multiplier=1.5"
        assert hash(a) == hash(b)

    def test_bare_name_has_bare_token(self):
        assert ProtocolSpec.parse("uniform").token() == "uniform"

    def test_parse_rejects_malformed_params(self):
        for text in ("irrevocable:", "irrevocable:c", "irrevocable:=3",
                     "irrevocable:c=2,c=3"):
            with pytest.raises(ConfigurationError):
                ProtocolSpec.parse(text)

    def test_parse_rejects_unknown_protocol(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            ProtocolSpec.parse("gossip:fanout=3")

    def test_as_dict(self):
        spec = ProtocolSpec.parse("irrevocable:c=3")
        assert spec.as_dict() == {"name": "irrevocable", "params": {"c": 3.0}}


# --------------------------------------------------------------------------- #
# pickling (the parallel engine ships specs to workers)
# --------------------------------------------------------------------------- #


class TestPickling:
    def test_spec_pickles(self):
        spec = ProtocolSpec.parse("irrevocable:c=3,x_multiplier=1.5")
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_runner_pickles_and_runs(self):
        runner = protocol_runner("flooding:c=2.5")
        restored = pickle.loads(pickle.dumps(runner))
        assert restored.spec == runner.spec
        result = restored(cycle(8), 3)
        assert result.parameters["protocol"] == "flooding:c=2.5"

    def test_custom_protocol_survives_spawn_workers(self):
        # The runner carries its registry entry (factory pickled by
        # reference), so a spawn worker — a fresh interpreter that never
        # ran the parent's register_protocol — can still execute it.
        from repro.parallel import run_experiments
        from repro.protocols.registry import _flooding_factory

        try:
            register_protocol(
                "spawn-custom",
                _flooding_factory,
                params=(
                    ParamSpec("c", float, 2.0),
                    ParamSpec("all_nodes_compete", bool, False),
                ),
            )
            specs = sweep_specs(
                ["spawn-custom:c=3"], [cycle(8)], seeds=(0, 1), collect_profile=False
            )
            result = run_experiments(specs, workers=2, start_method="spawn")[0]
            assert result.cells[0].runs == 2
            assert result.cells[0].protocol == "spawn-custom:c=3.0"
        finally:
            PROTOCOLS.pop("spawn-custom", None)

    def test_experiment_spec_with_protocol_pickles(self):
        spec = ExperimentSpec(
            name="grid",
            protocol=ProtocolSpec.parse("irrevocable:c=3"),
            topologies=[cycle(6)],
            seeds=(0,),
            collect_profile=False,
        )
        restored = pickle.loads(pickle.dumps(spec))
        assert restored.protocol == spec.protocol


# --------------------------------------------------------------------------- #
# execution semantics
# --------------------------------------------------------------------------- #


class TestExecution:
    def test_default_spec_matches_legacy_runner(self):
        topology = cycle(9)
        via_spec = protocol_runner("irrevocable")(topology, 5)
        via_legacy = irrevocable_runner(topology, 5)
        assert via_spec.messages == via_legacy.messages
        assert via_spec.rounds_executed == via_legacy.rounds_executed
        assert via_spec.outcome.as_dict() == via_legacy.outcome.as_dict()

    def test_parameters_change_the_run(self):
        topology = cycle(9)
        cheap = run_protocol("irrevocable", topology, 5, c=1.5)
        costly = run_protocol("irrevocable", topology, 5, c=4.0)
        assert costly.rounds_executed > cheap.rounds_executed

    def test_revocable_extra_estimates_lengthens_run(self):
        topology = cycle(5)
        base = run_protocol("revocable", topology, 1)
        extended = run_protocol("revocable", topology, 1, extra_estimates=1)
        assert extended.rounds_executed > base.rounds_executed

    def test_run_protocol_validates_params(self):
        with pytest.raises(ConfigurationError, match="accepts"):
            run_protocol("gilbert", cycle(5), 0, fanout=3)

    def test_runner_records_protocol_token(self):
        result = protocol_runner("irrevocable:c=3")(cycle(6), 0)
        assert result.parameters["protocol"] == "irrevocable:c=3.0"


# --------------------------------------------------------------------------- #
# experiment integration
# --------------------------------------------------------------------------- #


class TestExperimentIntegration:
    def test_spec_requires_exactly_one_algorithm_source(self):
        with pytest.raises(ConfigurationError, match="runner"):
            ExperimentSpec(name="x", topologies=[cycle(5)])
        with pytest.raises(ConfigurationError, match="not both"):
            ExperimentSpec(
                name="x",
                runner=irrevocable_runner,
                protocol=ProtocolSpec.parse("irrevocable"),
                topologies=[cycle(5)],
            )

    def test_spec_parses_protocol_strings(self):
        spec = ExperimentSpec(
            name="x", protocol="irrevocable:c=3", topologies=[cycle(5)]
        )
        assert spec.protocol == ProtocolSpec.create("irrevocable", c=3.0)
        assert spec.protocol_token() == "irrevocable:c=3.0"

    def test_cells_carry_the_protocol_token(self):
        spec = ExperimentSpec(
            name="x",
            protocol="irrevocable:c=3",
            topologies=[cycle(6)],
            seeds=(0, 1),
            collect_profile=False,
        )
        result = run_experiment(spec)
        assert [cell.protocol for cell in result.cells] == ["irrevocable:c=3.0"]
        assert result.cells[0].as_dict()["protocol"] == "irrevocable:c=3.0"

    def test_legacy_cells_have_empty_protocol_column(self):
        spec = ExperimentSpec(
            name="x",
            runner=irrevocable_runner,
            topologies=[cycle(6)],
            seeds=(0,),
            collect_profile=False,
        )
        result = run_experiment(spec)
        assert result.cells[0].protocol == ""

    def test_variants_produce_distinct_cells(self):
        specs = sweep_specs(
            ["irrevocable:c=2", "irrevocable:c=3"],
            [cycle(6)],
            seeds=(0,),
            collect_profile=False,
        )
        assert [spec.name for spec in specs] == [
            "irrevocable:c=2.0",
            "irrevocable:c=3.0",
        ]
        results = [run_experiment(spec) for spec in specs]
        rounds = {result.cells[0].mean_rounds for result in results}
        assert len(rounds) == 2

    def test_sweep_specs_accepts_spec_objects_and_adversary(self):
        from repro.dynamics import AdversarySpec

        adversary = AdversarySpec.create("loss", p=0.05)
        specs = sweep_specs(
            param_grid("flooding", c=[2.0, 3.0]),
            [cycle(6)],
            seeds=(0,),
            adversary=adversary,
        )
        assert [spec.name for spec in specs] == [
            "flooding:c=2.0@loss(p=0.05)",
            "flooding:c=3.0@loss(p=0.05)",
        ]
        assert all(spec.adversary == adversary for spec in specs)

    def test_legacy_names_keep_legacy_task_keys(self):
        spec = sweep_specs(["flooding"], [cycle(6)], seeds=(0,))[0]
        task = expand_run_tasks(spec)[0]
        assert task.protocol == ""
        assert task.key.count("|") == 6  # the pre-protocol 7-field format

    def test_variant_task_keys_carry_the_token(self):
        spec = sweep_specs(["flooding:c=3"], [cycle(6)], seeds=(0,))[0]
        task = expand_run_tasks(spec)[0]
        assert task.protocol == "flooding:c=3.0"
        assert task.key.endswith("|flooding:c=3.0")

    def test_custom_protocol_sweeps_by_bare_name(self):
        def factory(topology, seed):
            return run_protocol("flooding", topology, seed, c=3.0)

        try:
            register_protocol("custom-sweep-test", factory)
            specs = sweep_specs(
                ["custom-sweep-test"], [cycle(6)], seeds=(0,), collect_profile=False
            )
            assert specs[0].protocol == ProtocolSpec.create("custom-sweep-test")
            result = run_experiment(specs[0])
            assert result.cells[0].runs == 1
        finally:
            PROTOCOLS.pop("custom-sweep-test", None)

    def test_unknown_bare_name_reports_protocol_registry(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            sweep_specs(["gossip"], [cycle(6)], seeds=(0,))

    def test_equivalent_spellings_rejected_with_originals_quoted(self):
        with pytest.raises(ConfigurationError) as excinfo:
            sweep_specs(["flooding:c=2", "flooding:c=2.00"], [cycle(6)], seeds=(0,))
        message = str(excinfo.value)
        assert "'flooding:c=2'" in message and "'flooding:c=2.00'" in message

    def test_runner_registered_only_in_runners_dict_still_sweeps(self):
        from repro.analysis.runners import RUNNERS, flooding_runner

        RUNNERS["custom-runner-only"] = flooding_runner
        try:
            specs = sweep_specs(
                ["custom-runner-only"], [cycle(6)], seeds=(0,), collect_profile=False
            )
            assert specs[0].runner is flooding_runner
            assert specs[0].protocol is None
        finally:
            RUNNERS.pop("custom-runner-only", None)

    def test_bare_name_vs_explicit_default_rejected(self):
        # "flooding" (legacy path) and "flooding:c=2.0" (spec path) run
        # the identical configuration; sweeping both is a duplicated cell.
        with pytest.raises(ConfigurationError, match="same configuration"):
            sweep_specs(["flooding", "flooding:c=2.0"], [cycle(6)], seeds=(0,))

    def test_canonical_fills_defaults(self):
        assert (
            ProtocolSpec.parse("flooding:c=2.0").canonical()
            == ProtocolSpec.parse("flooding").canonical()
            == "flooding:all_nodes_compete=False,c=2.0"
        )
        assert ProtocolSpec.parse("uniform").canonical() == "uniform"
        assert (
            ProtocolSpec.parse("flooding:c=3").canonical()
            != ProtocolSpec.parse("flooding").canonical()
        )


# --------------------------------------------------------------------------- #
# workload helpers
# --------------------------------------------------------------------------- #


class TestParamGrid:
    def test_single_axis(self):
        grid = param_grid("irrevocable", c=[1.5, 2.0, 3.0])
        assert [str(spec) for spec in grid] == [
            "irrevocable:c=1.5",
            "irrevocable:c=2.0",
            "irrevocable:c=3.0",
        ]

    def test_cross_product_with_pinned_scalar(self):
        grid = param_grid("irrevocable", c=[2.0, 3.0], x_multiplier=1.5)
        assert [str(spec) for spec in grid] == [
            "irrevocable:c=2.0,x_multiplier=1.5",
            "irrevocable:c=3.0,x_multiplier=1.5",
        ]

    def test_no_axes_yields_default_variant(self):
        assert param_grid("uniform") == [ProtocolSpec.create("uniform")]

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            param_grid("irrevocable", c=[])

    def test_axis_values_validated(self):
        with pytest.raises(ConfigurationError, match="accepts"):
            param_grid("irrevocable", phase_budget=[1, 2])

    def test_paper_constants_scenario(self):
        ladder = protocol_scenario("paper-constants")
        assert ladder[0] == ProtocolSpec.create("irrevocable")
        tokens = [spec.token() for spec in ladder]
        assert len(set(tokens)) == len(tokens)
        assert "irrevocable:c=1.5" in tokens
        assert any("x_multiplier" in token for token in tokens)
        assert "paper-constants" in PROTOCOL_SCENARIOS

    def test_unknown_protocol_scenario(self):
        with pytest.raises(ConfigurationError, match="unknown protocol scenario"):
            protocol_scenario("nope")


# --------------------------------------------------------------------------- #
# JSONL export sink
# --------------------------------------------------------------------------- #


class TestJsonlSink:
    def _sweep(self, tmp_path, **kwargs):
        path = tmp_path / "runs.jsonl"
        spec = ExperimentSpec(
            name="grid",
            protocol="irrevocable:c=3",
            topologies=[cycle(6), star(6)],
            seeds=(0, 1),
            collect_profile=False,
        )
        result = run_experiment(spec, sinks=[JsonlSink(path)], **kwargs)
        return path, result

    def test_streams_one_record_per_run(self, tmp_path):
        path, result = self._sweep(tmp_path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 4
        assert {record["protocol"] for record in records} == {"irrevocable:c=3.0"}
        assert {record["experiment"] for record in records} == {"grid"}
        assert all("messages" in record and "rounds" in record for record in records)
        # The sink streams: the cells were still assembled without
        # retaining per-run results.
        assert all(cell.results == [] for cell in result.cells)

    def test_records_match_cell_aggregates(self, tmp_path):
        path, result = self._sweep(tmp_path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        for topology_index, cell in enumerate(result.cells):
            mine = [r for r in records if r["topology_index"] == topology_index]
            assert sum(r["messages"] for r in mine) == pytest.approx(
                cell.mean_messages * cell.runs
            )

    def test_parallel_backend_writes_same_records(self, tmp_path):
        serial_path, _ = self._sweep(tmp_path / "serial")
        parallel_path, _ = self._sweep(tmp_path / "parallel", workers=2)

        def stable(path):
            records = [json.loads(line) for line in path.read_text().splitlines()]
            for record in records:
                record.pop("wall_clock_seconds")
            return sorted(records, key=lambda r: (r["topology_index"], r["seed_index"]))

        assert stable(serial_path) == stable(parallel_path)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deeply" / "nested" / "runs.jsonl"
        spec = ExperimentSpec(
            name="x",
            runner=irrevocable_runner,
            topologies=[cycle(5)],
            seeds=(0,),
            collect_profile=False,
        )
        run_experiment(spec, sinks=[JsonlSink(path)])
        assert path.exists()

    def test_legacy_runs_have_empty_protocol_field(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        spec = ExperimentSpec(
            name="x",
            runner=irrevocable_runner,
            topologies=[cycle(5)],
            seeds=(0,),
            collect_profile=False,
        )
        run_experiment(spec, sinks=[JsonlSink(path)])
        record = json.loads(path.read_text().splitlines()[0])
        assert record["protocol"] == ""

    def test_close_without_emits_creates_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        sink = JsonlSink(path)
        sink.close()  # e.g. an empty shard slice: evidence the job ran
        assert path.exists() and path.read_text() == ""

    def test_abort_before_any_emit_touches_nothing(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"previous": "export"}\n')
        sink = JsonlSink(path)
        sink.abort()  # the drivers' failure path, reached before any emit
        assert path.read_text() == '{"previous": "export"}\n'
        assert not path.with_name(path.name + ".partial").exists()

    def test_success_inside_foreign_exception_handler_still_publishes(self, tmp_path):
        # The publish decision is explicit driver state, not ambient
        # sys.exc_info(): a sweep run from inside an unrelated except
        # block must still publish its export.
        path = tmp_path / "runs.jsonl"
        spec = ExperimentSpec(
            name="x",
            runner=irrevocable_runner,
            topologies=[cycle(5)],
            seeds=(0,),
            collect_profile=False,
        )
        try:
            raise RuntimeError("unrelated in-flight exception")
        except RuntimeError:
            run_experiment(spec, sinks=[JsonlSink(path)])
        assert len(path.read_text().splitlines()) == 1

    def test_crash_before_first_run_leaves_no_empty_marker(self, tmp_path):
        # An empty .jsonl is the "shard job completed with zero local
        # runs" signal; a sweep that dies before its first run must not
        # forge it.
        path = tmp_path / "runs.jsonl"
        spec = ExperimentSpec(
            name="dies-immediately",
            runner=_fail_on_seed_two,
            topologies=[cycle(8)],
            seeds=(2,),
            collect_profile=False,
        )
        with pytest.raises(ValueError):
            run_experiment(spec, sinks=[JsonlSink(path)])
        assert not path.exists()

    def test_shared_sink_accumulates_across_driver_calls(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        sink = JsonlSink(path)
        specs = sweep_specs(
            ["flooding:c=2", "flooding:c=3"],
            [cycle(6), star(6)],
            seeds=(0,),
            collect_profile=False,
        )
        for spec in specs:
            run_experiment(spec, sinks=[sink])
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 4  # both calls' records, not just the last
        assert {r["protocol"] for r in records} == {
            "flooding:c=2.0",
            "flooding:c=3.0",
        }

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        sink = JsonlSink(path)
        spec = ExperimentSpec(
            name="x",
            runner=irrevocable_runner,
            topologies=[cycle(5)],
            seeds=(0,),
            collect_profile=False,
        )
        run_experiment(spec, sinks=[sink])  # the driver closes the sink
        sink.close()  # a defensive caller-side close must not truncate
        assert len(path.read_text().splitlines()) == 1

    @pytest.mark.parametrize("workers", [1, 2])
    def test_completed_records_flushed_when_a_run_fails(self, tmp_path, workers):
        from repro.parallel import TaskExecutionError

        path = tmp_path / "runs.jsonl"
        spec = ExperimentSpec(
            name="fragile",
            runner=_fail_on_seed_two,
            topologies=[cycle(8)],
            seeds=(0, 1, 2),
            collect_profile=False,
        )
        with pytest.raises((TaskExecutionError, ValueError)):
            run_experiment(spec, sinks=[JsonlSink(path)], workers=workers)
        # The sink was closed on the failure path: the completed runs'
        # records reached the .partial staging file intact, while the
        # export path itself was not published (the sweep is incomplete).
        assert not path.exists()
        staging = path.with_name(path.name + ".partial")
        records = [json.loads(line) for line in staging.read_text().splitlines()]
        assert len(records) >= 1
        assert all(record["experiment"] == "fragile" for record in records)

    def test_custom_sink_close_not_called_on_failure(self):
        from repro.analysis.streaming import ResultSink

        class PublishingSink(ResultSink):
            closed = False

            def close(self):
                self.closed = True

        sink = PublishingSink()
        spec = ExperimentSpec(
            name="fragile",
            runner=_fail_on_seed_two,
            topologies=[cycle(8)],
            seeds=(0, 2),
            collect_profile=False,
        )
        with pytest.raises(ValueError):
            run_experiment(spec, sinks=[sink])
        # close() still means "the sweep completed": a custom sink that
        # publishes on close must not be handed an incomplete sweep.
        assert not sink.closed

    def test_duck_typed_sink_without_abort_survives_failure(self):
        class LegacySink:  # emit/close contract, no ResultSink subclassing
            def emit(self, *args):
                pass

            def close(self):
                pass

        spec = ExperimentSpec(
            name="fragile",
            runner=_fail_on_seed_two,
            topologies=[cycle(8)],
            seeds=(2,),
            collect_profile=False,
        )
        # The original failure must propagate, not AttributeError('abort').
        with pytest.raises(ValueError, match="boom"):
            run_experiment(spec, sinks=[LegacySink()])

    def test_crashed_rerun_preserves_previous_complete_export(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        good = ExperimentSpec(
            name="fragile",
            runner=_fail_on_seed_two,
            topologies=[cycle(8)],
            seeds=(0, 1),
            collect_profile=False,
        )
        run_experiment(good, sinks=[JsonlSink(path)])
        complete = path.read_text()
        assert len(complete.splitlines()) == 2
        bad = ExperimentSpec(
            name="fragile",
            runner=_fail_on_seed_two,
            topologies=[cycle(8)],
            seeds=(0, 1, 2),
            collect_profile=False,
        )
        with pytest.raises(ValueError):
            run_experiment(bad, sinks=[JsonlSink(path)])
        # The rerun crashed mid-grid: the previous complete export stands,
        # the crashed attempt's records sit in the staging file.
        assert path.read_text() == complete
        staging = path.with_name(path.name + ".partial")
        assert len(staging.read_text().splitlines()) == 2


def _fail_on_seed_two(topology, seed):
    """Picklable runner dying on one grid point (sink-flush tests)."""
    if seed == 2:
        raise ValueError("boom")
    from repro.analysis.runners import flooding_runner

    return flooding_runner(topology, seed)


# --------------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------------- #


class TestCli:
    def test_protocols_subcommand_lists_everything(self, capsys):
        from repro.cli import main

        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for name in PROTOCOLS:
            assert name in out
        assert "c (float, default 2.0)" in out

    def test_elect_with_parameters(self, capsys):
        from repro.cli import main

        code = main(
            [
                "elect",
                "--algorithm",
                "irrevocable:c=3,x_multiplier=1.5",
                "--topology",
                "cycle:10",
                "--seed",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "irrevocable:c=3.0,x_multiplier=1.5" in out

    def test_elect_unknown_parameter_reports_schema(self, capsys):
        from repro.cli import main

        code = main(
            ["elect", "--algorithm", "irrevocable:budget=3", "--topology", "cycle:8"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "irrevocable accepts: c (float, default 2.0)" in err

    def test_elect_unknown_algorithm_reports_registry(self, capsys):
        from repro.cli import main

        code = main(["elect", "--algorithm", "gossip", "--topology", "cycle:8"])
        assert code == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_sweep_parameter_variants_produce_distinct_rows(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--suite",
                "tiny",
                "--algorithms",
                "flooding:c=2",
                "flooding:c=3",
                "--seeds",
                "2",
                "--no-profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flooding:c=2.0" in out
        assert "flooding:c=3.0" in out

    def test_sweep_jsonl_export(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "runs.jsonl"
        code = main(
            [
                "sweep",
                "--suite",
                "tiny",
                "--algorithms",
                "flooding:c=3",
                "--seeds",
                "2",
                "--no-profile",
                "--jsonl",
                str(path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 10  # 5 tiny-suite topologies x 2 seeds
        assert {record["protocol"] for record in records} == {"flooding:c=3.0"}

    def test_sharded_sweep_writes_per_shard_jsonl(self, capsys, tmp_path):
        from repro.cli import main

        base = [
            "sweep",
            "--suite",
            "tiny",
            "--algorithms",
            "flooding:c=3",
            "--seeds",
            "2",
            "--no-profile",
            "--checkpoint",
            str(tmp_path / "ck.json"),
            "--jsonl",
            str(tmp_path / "out.jsonl"),
        ]
        assert main(base + ["--shard", "0/2"]) == 0
        assert main(base + ["--shard", "1/2"]) == 0
        capsys.readouterr()
        shard0 = (tmp_path / "out.shard0of2.jsonl").read_text().splitlines()
        shard1 = (tmp_path / "out.shard1of2.jsonl").read_text().splitlines()
        assert len(shard0) + len(shard1) == 10  # 5 topologies x 2 seeds
        assert not (tmp_path / "out.jsonl").exists()

    def test_sweep_protocol_scenario(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--suite",
                "tiny",
                "--seeds",
                "1",
                "--no-profile",
                "--scenario",
                "paper-constants",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "irrevocable:c=1.5" in out
        assert "irrevocable:c=3.0" in out

    def test_sweep_protocol_scenario_rejects_explicit_algorithms(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--suite",
                "tiny",
                "--algorithms",
                "gilbert",
                "--scenario",
                "paper-constants",
                "--seeds",
                "1",
                "--no-profile",
            ]
        )
        assert code == 2
        assert "fixes the algorithm list" in capsys.readouterr().err

    def test_sweep_unknown_scenario_lists_both_registries(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--suite",
                "tiny",
                "--algorithms",
                "flooding",
                "--scenario",
                "nope",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "lossy" in err and "paper-constants" in err
