"""Unit tests for the synchronous CONGEST simulator and node base classes."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

import pytest

from repro.core import (
    CongestViolationError,
    GeneratorNode,
    Message,
    MetricsCollector,
    PassiveNode,
    ProtocolNode,
    SimulationError,
    SynchronousSimulator,
    build_nodes,
    run_protocol,
)
from repro.core.errors import ProtocolError
from repro.graphs import cycle, path, star


@dataclass(frozen=True)
class Ping(Message):
    payload: int


class EchoNode(ProtocolNode):
    """Sends its round number through every port, records what it receives."""

    def __init__(self, num_ports: int, rng: random.Random) -> None:
        super().__init__(num_ports, rng)
        self.received = []

    def step(self, round_index: int, inbox) -> Dict[int, Message]:
        self.received.append({port: msg.payload for port, msg in inbox.items()})
        return {port: Ping(payload=round_index) for port in self.ports()}

    def result(self):
        return {"received": self.received}


class HaltAfterNode(ProtocolNode):
    def __init__(self, num_ports: int, rng: random.Random, *, rounds: int = 3) -> None:
        super().__init__(num_ports, rng)
        self.rounds = rounds
        self._halted = False

    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, round_index, inbox):
        if round_index + 1 >= self.rounds:
            self._halted = True
        return {}


class BadPortNode(ProtocolNode):
    def step(self, round_index, inbox):
        return {self.num_ports + 1: Ping(payload=0)}


@dataclass(frozen=True)
class FatMessage(Message):
    blob: str


class FatSenderNode(ProtocolNode):
    def step(self, round_index, inbox):
        return {port: FatMessage(blob="x" * 100) for port in self.ports()}


class CountdownGenerator(GeneratorNode):
    """Generator-based node used to test the adapter."""

    def __init__(self, num_ports, rng, *, rounds=3):
        super().__init__(num_ports, rng)
        self.rounds = rounds
        self.seen = []

    def run(self):
        for i in range(self.rounds):
            inbox = yield {port: Ping(payload=i) for port in self.ports()}
            self.seen.append(sorted(msg.payload for msg in inbox.values()))


class TestBuildNodes:
    def test_one_node_per_vertex_with_matching_ports(self):
        topology = star(5)
        nodes = build_nodes(topology, lambda i, p, r: PassiveNode(p, r), seed=1)
        assert len(nodes) == 5
        assert nodes[0].num_ports == 4
        assert all(node.num_ports == 1 for node in nodes[1:])

    def test_rngs_are_independent(self):
        topology = cycle(4)
        nodes = build_nodes(topology, lambda i, p, r: PassiveNode(p, r), seed=1)
        draws = {node.rng.random() for node in nodes}
        assert len(draws) == 4

    def test_seed_reproducibility(self):
        topology = cycle(4)
        first = build_nodes(topology, lambda i, p, r: PassiveNode(p, r), seed=2)
        second = build_nodes(topology, lambda i, p, r: PassiveNode(p, r), seed=2)
        assert [n.rng.random() for n in first] == [n.rng.random() for n in second]


class TestSimulatorBasics:
    def test_node_count_mismatch_rejected(self):
        topology = cycle(4)
        nodes = [PassiveNode(2, random.Random(0)) for _ in range(3)]
        with pytest.raises(SimulationError):
            SynchronousSimulator(topology, nodes)

    def test_port_count_mismatch_rejected(self):
        topology = star(4)
        nodes = [PassiveNode(1, random.Random(0)) for _ in range(4)]
        with pytest.raises(SimulationError):
            SynchronousSimulator(topology, nodes)

    def test_invalid_port_in_outbox_rejected(self):
        result_error = None
        topology = cycle(3)
        nodes = build_nodes(topology, lambda i, p, r: BadPortNode(p, r), seed=0)
        simulator = SynchronousSimulator(topology, nodes)
        with pytest.raises(SimulationError):
            simulator.run_round()

    def test_negative_max_rounds_rejected(self):
        topology = cycle(3)
        nodes = build_nodes(topology, lambda i, p, r: PassiveNode(p, r), seed=0)
        with pytest.raises(SimulationError):
            SynchronousSimulator(topology, nodes).run(-1)


class TestMessageDelivery:
    def test_messages_arrive_next_round_at_correct_port(self):
        topology = path(3)
        nodes = build_nodes(topology, lambda i, p, r: EchoNode(p, r), seed=0)
        simulator = SynchronousSimulator(topology, nodes)
        simulator.run(3)
        middle = nodes[1]
        # Round 0 inbox is empty; round 1 inbox holds round-0 payloads from
        # both neighbours.
        assert middle.received[0] == {}
        assert middle.received[1] == {1: 0, 2: 0}
        assert middle.received[2] == {1: 1, 2: 1}

    def test_metrics_count_messages_and_rounds(self):
        topology = cycle(4)
        metrics = MetricsCollector()
        result = run_protocol(
            topology,
            lambda i, p, r: EchoNode(p, r),
            max_rounds=3,
            seed=0,
            metrics=metrics,
        )
        assert result.rounds_executed == 3
        # 4 nodes x 2 ports x 3 rounds
        assert result.metrics.messages == 24
        assert result.metrics.bits > 0

    def test_halted_nodes_stop_stepping(self):
        topology = cycle(4)
        result = run_protocol(
            topology,
            lambda i, p, r: HaltAfterNode(p, r, rounds=2),
            max_rounds=10,
            seed=0,
        )
        assert result.all_halted
        assert result.rounds_executed == 2

    def test_stop_when_predicate(self):
        topology = cycle(4)
        result = run_protocol(
            topology,
            lambda i, p, r: EchoNode(p, r),
            max_rounds=50,
            seed=0,
            stop_when=lambda sim: sim.current_round >= 5,
        )
        assert result.rounds_executed == 5
        assert not result.all_halted

    def test_rounds_executed_is_per_run_call(self):
        # A simulator driven in phases reports, per run() call, only the
        # rounds that call executed; total_rounds tracks the lifetime.
        topology = cycle(4)
        nodes = build_nodes(topology, lambda i, p, r: EchoNode(p, r), seed=0)
        simulator = SynchronousSimulator(topology, nodes)
        first = simulator.run(3)
        second = simulator.run(2)
        packaging = simulator.run(0)
        assert first.rounds_executed == 3
        assert second.rounds_executed == 2
        assert packaging.rounds_executed == 0
        assert first.total_rounds == 3
        assert second.total_rounds == 5
        assert packaging.total_rounds == 5

    def test_inbox_only_valid_during_step(self):
        # Inboxes are recycled buffers: contents observed during step are
        # correct even though the dict objects are reused across rounds.
        topology = path(3)
        nodes = build_nodes(topology, lambda i, p, r: EchoNode(p, r), seed=0)
        SynchronousSimulator(topology, nodes).run(4)
        middle = nodes[1]
        assert middle.received[2] == {1: 1, 2: 1}
        assert middle.received[3] == {1: 2, 2: 2}

    def test_require_halt_raises_when_not_done(self):
        topology = cycle(4)
        with pytest.raises(SimulationError):
            run_protocol(
                topology,
                lambda i, p, r: EchoNode(p, r),
                max_rounds=3,
                seed=0,
                require_halt=True,
            )


class OnePortFatSender(ProtocolNode):
    """Sends one oversized message through port 1 in round 2 only."""

    def step(self, round_index, inbox):
        if round_index == 2 and self.num_ports >= 1:
            return {1: FatMessage(blob="x" * 100)}
        return {}


class ForeignMessage:
    """A message-like object without size_bits/congest_units accessors."""

    payload = "opaque"


class ForeignSenderNode(ProtocolNode):
    def step(self, round_index, inbox):
        return {port: ForeignMessage() for port in self.ports()}


class TestCongestEnforcement:
    def test_violations_counted_but_not_fatal_by_default(self):
        topology = cycle(4)
        result = run_protocol(
            topology,
            lambda i, p, r: FatSenderNode(p, r),
            max_rounds=1,
            seed=0,
        )
        assert result.metrics.congest_violations == 8

    def test_unenforced_violations_do_not_stop_the_run(self):
        # With enforce_congest=False the run proceeds to max_rounds and
        # keeps counting: every round adds all 8 violating messages, and
        # message/bit totals still include them.
        topology = cycle(4)
        result = run_protocol(
            topology,
            lambda i, p, r: FatSenderNode(p, r),
            max_rounds=3,
            seed=0,
        )
        assert result.rounds_executed == 3
        assert result.metrics.congest_violations == 24
        assert result.metrics.messages == 24
        assert result.metrics.bits > 0

    def test_enforcement_raises(self):
        topology = cycle(4)
        with pytest.raises(CongestViolationError):
            run_protocol(
                topology,
                lambda i, p, r: FatSenderNode(p, r),
                max_rounds=1,
                seed=0,
                enforce_congest=True,
            )

    def test_enforcement_error_names_round_and_port(self):
        topology = cycle(4)
        with pytest.raises(CongestViolationError, match=r"port 1 in round 2"):
            run_protocol(
                topology,
                lambda i, p, r: OnePortFatSender(p, r),
                max_rounds=5,
                seed=0,
                enforce_congest=True,
            )

    def test_foreign_messages_fall_back_to_one_congest_word(self):
        # Objects without a size_bits accessor are charged exactly one
        # CONGEST word each, so they never count as violations.
        topology = cycle(4)
        nodes = build_nodes(topology, lambda i, p, r: ForeignSenderNode(p, r), seed=0)
        simulator = SynchronousSimulator(topology, nodes, enforce_congest=True)
        simulator.run_round()
        assert simulator.metrics.messages == 8
        assert simulator.metrics.bits == 8 * simulator.congest_bits
        assert simulator.metrics.congest_violations == 0

    def test_count_bits_false_charges_zero_bits(self):
        topology = cycle(4)
        nodes = build_nodes(topology, lambda i, p, r: FatSenderNode(p, r), seed=0)
        simulator = SynchronousSimulator(topology, nodes, count_bits=False)
        simulator.run_round()
        assert simulator.metrics.messages == 8
        assert simulator.metrics.bits == 0
        assert simulator.metrics.congest_violations == 0

    def test_small_messages_do_not_violate(self):
        topology = cycle(4)
        result = run_protocol(
            topology,
            lambda i, p, r: EchoNode(p, r),
            max_rounds=2,
            seed=0,
        )
        assert result.metrics.congest_violations == 0


class TestGeneratorNode:
    def test_yields_one_outbox_per_round_then_halts(self):
        topology = cycle(3)
        result = run_protocol(
            topology,
            lambda i, p, r: CountdownGenerator(p, r, rounds=3),
            max_rounds=10,
            seed=0,
        )
        assert result.all_halted
        # Generator yields 3 times, then halts at the 4th step.
        assert result.rounds_executed == 4

    def test_inbox_reaches_generator(self):
        topology = cycle(3)
        nodes = build_nodes(
            topology, lambda i, p, r: CountdownGenerator(p, r, rounds=3), seed=0
        )
        SynchronousSimulator(topology, nodes).run(10)
        # Every node saw payload 0 from both neighbours in its second round.
        assert all(node.seen[0] == [0, 0] for node in nodes)

    def test_skipped_round_detected(self):
        node = CountdownGenerator(0, random.Random(0), rounds=2)
        node.step(0, {})
        with pytest.raises(ProtocolError):
            node.step(2, {})


class TestPassiveNode:
    def test_never_halts_and_never_sends(self):
        node = PassiveNode(2, random.Random(0))
        assert node.step(0, {}) == {}
        assert not node.halted
        assert node.result() == {"passive": True}

    def test_random_port_requires_ports(self):
        node = PassiveNode(0, random.Random(0))
        with pytest.raises(ValueError):
            node.random_port()

    def test_ports_range(self):
        node = PassiveNode(3, random.Random(0))
        assert list(node.ports()) == [1, 2, 3]


class TestCongestViolationCoherence:
    """An enforced violation must not tear the round it occurs in.

    The violating round completes in full — conforming messages of that
    round are delivered, buffers are swapped, the round counter advances —
    and only then does the simulator raise.  A caller that catches the
    error holds a coherent simulator it can keep running.
    """

    def _build(self, backend):
        topology = cycle(4)

        def factory(i, p, rng):
            return OnePortFatSender(p, rng) if i == 0 else EchoNode(p, rng)

        nodes = build_nodes(topology, factory, seed=0)
        simulator = SynchronousSimulator(
            topology, nodes, enforce_congest=True, backend=backend
        )
        return simulator, nodes

    @pytest.mark.parametrize("backend", ["round", "event"])
    def test_caught_violation_leaves_round_state_coherent(self, backend):
        simulator, _ = self._build(backend)
        with pytest.raises(CongestViolationError, match=r"port 1 in round 2"):
            simulator.run(5)
        # The violating round completed before the raise.
        assert simulator.current_round == 3
        assert simulator.metrics.congest_violations == 1
        # The oversized message was withheld from its receiver and
        # accounted as dropped; conforming traffic was delivered.
        assert simulator.metrics.dropped_messages == 1
        assert (
            simulator.metrics.delivered_messages
            == simulator.metrics.sent_messages - 1
        )

    @pytest.mark.parametrize("backend", ["round", "event"])
    def test_run_continues_after_caught_violation(self, backend):
        simulator, nodes = self._build(backend)
        with pytest.raises(CongestViolationError):
            simulator.run(5)
        # Rounds 3 and 4 still run; the echo nodes see the round-2
        # traffic of their conforming neighbours (and would crash on the
        # withheld FatMessage, which has no payload — its absence from
        # every inbox is what this step checks).
        result = simulator.run(2)
        assert result.rounds_executed == 2
        assert simulator.current_round == 5
        echo = nodes[2]  # both neighbours (1 and 3) are echo nodes
        assert len(echo.received) == 5
        assert sorted(echo.received[3].values()) == [2, 2]


class TestMessageConservation:
    """Every physical send is delivered, dropped, or still pending."""

    @pytest.mark.parametrize("backend", ["round", "event"])
    def test_identity_on_a_fault_free_run(self, backend):
        topology = cycle(4)
        nodes = build_nodes(topology, lambda i, p, r: EchoNode(p, r), seed=0)
        simulator = SynchronousSimulator(topology, nodes, backend=backend)
        simulator.run(3)
        metrics = simulator.metrics
        assert metrics.sent_messages == 8 * 3
        assert metrics.delivered_messages == 8 * 3
        assert metrics.dropped_messages == 0
        assert simulator.pending_delayed() == 0
        assert metrics.sent_messages == (
            metrics.delivered_messages
            + metrics.dropped_messages
            + simulator.pending_delayed()
        )

    def test_unenforced_violations_still_deliver(self):
        # Without enforcement a violating message is flagged but NOT
        # withheld, so it counts as delivered and nothing as dropped.
        topology = cycle(4)
        nodes = build_nodes(topology, lambda i, p, r: FatSenderNode(p, r), seed=0)
        simulator = SynchronousSimulator(topology, nodes)
        simulator.run_round()
        assert simulator.metrics.congest_violations == 8
        assert simulator.metrics.sent_messages == 8
        assert simulator.metrics.delivered_messages == 8
        assert simulator.metrics.dropped_messages == 0
