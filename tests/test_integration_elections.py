"""Integration tests: all election algorithms, side by side, across topologies.

These tests exercise the same pipeline the benchmark harness uses (the
experiment runner over a topology suite) and check the qualitative claims
the paper's Table 1 makes about how the algorithms relate to each other.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentSpec, fit_power_law, render_comparison_table, run_experiment
from repro.baselines import run_flooding_election, run_gilbert_election
from repro.election import IrrevocableConfig, run_irrevocable_election, run_revocable_election
from repro.graphs import complete, expansion_profile, random_regular, torus_2d
from repro.workloads import scaling_family, tiny_suite


@pytest.fixture(scope="module")
def comparison_results():
    """Run the three known-n algorithms over a small mixed suite once."""
    topologies = [
        random_regular(24, 4, seed=3),
        torus_2d(5, 5),
        complete(16),
    ]
    seeds = (0, 1)
    runners = {
        "irrevocable": lambda t, s: run_irrevocable_election(t, seed=s),
        "gilbert": lambda t, s: run_gilbert_election(t, seed=s),
        "flooding": lambda t, s: run_flooding_election(t, seed=s),
    }
    results = {}
    profiles = {t.name: expansion_profile(t) for t in topologies}
    for name, runner in runners.items():
        spec = ExperimentSpec(
            name=name, runner=runner, topologies=topologies, seeds=seeds
        )
        results[name] = run_experiment(spec, profiles=profiles)
    return results


class TestCrossAlgorithmComparison:
    def test_every_algorithm_elects_leaders_reliably(self, comparison_results):
        for name, result in comparison_results.items():
            assert result.overall_success_rate() >= 0.8, name

    def test_paper_protocol_beats_gilbert_on_messages(self, comparison_results):
        ours = comparison_results["irrevocable"]
        gilbert = comparison_results["gilbert"]
        for cell in ours.cells:
            other = gilbert.cell_for(cell.topology_name)
            assert cell.mean_messages < other.mean_messages, cell.topology_name

    def test_flooding_wins_on_time(self, comparison_results):
        ours = comparison_results["irrevocable"]
        flooding = comparison_results["flooding"]
        for cell in ours.cells:
            other = flooding.cell_for(cell.topology_name)
            assert other.mean_rounds < cell.mean_rounds

    def test_comparison_table_renders(self, comparison_results):
        table = render_comparison_table(
            {name: result.as_rows() for name, result in comparison_results.items()},
            key_column="topology",
            value_column="mean_messages",
        )
        assert "irrevocable" in table and "gilbert" in table and "flooding" in table


class TestScalingBehaviour:
    def test_irrevocable_message_scaling_is_sublinear_in_n_squared(self):
        sizes = [16, 32, 64]
        topologies = scaling_family("random_regular", sizes, seed=5)
        messages = []
        for topology in topologies:
            config = IrrevocableConfig.from_topology(topology)
            result = run_irrevocable_election(topology, seed=1, config=config)
            assert result.success
            messages.append(result.messages)
        fit = fit_power_law(sizes, messages)
        # Õ(sqrt(n t_mix)/Φ): on expanders t_mix and Φ are ~constant, so the
        # exponent should be well below quadratic and near ~0.5-1.2 once the
        # polylog factors are smeared in at these sizes.
        assert fit.exponent < 1.8

    def test_irrevocable_time_tracks_mixing_time(self):
        expander = random_regular(32, 4, seed=2)
        from repro.graphs import cycle

        slow = cycle(32)
        fast_result = run_irrevocable_election(expander, seed=1)
        slow_result = run_irrevocable_election(slow, seed=1)
        assert slow_result.rounds_executed > fast_result.rounds_executed


class TestRevocableIntegration:
    def test_revocable_succeeds_on_tiny_suite(self):
        failures = []
        for topology in tiny_suite():
            result = run_revocable_election(topology, seed=4)
            if not (result.success and result.outcome.agreement):
                failures.append(topology.name)
        assert not failures

    def test_revocable_pays_far_more_than_known_n_protocol(self):
        topology = complete(6)
        revocable = run_revocable_election(topology, seed=2)
        irrevocable = run_irrevocable_election(topology, seed=2)
        # Not knowing n costs orders of magnitude more communication — the
        # gap Table 1 shows between the two settings.
        assert revocable.messages > 5 * irrevocable.messages
