"""Unit tests for the random-walk probing phase (Algorithm 5)."""

from __future__ import annotations

import random

import pytest

from repro.core import ConfigurationError, run_protocol
from repro.election import (
    RandomWalkProbeConfig,
    RandomWalkProbeNode,
    RandomWalkProbeState,
    WalkMessage,
)
from repro.graphs import Topology, complete, cycle, random_regular


def run_walk_phase(topology: Topology, candidates: dict, config: RandomWalkProbeConfig, seed=0):
    """Run a standalone walk phase; ``candidates`` maps node index -> ID."""

    def factory(index: int, num_ports: int, rng: random.Random):
        return RandomWalkProbeNode(
            num_ports,
            rng,
            config=config,
            candidate=index in candidates,
            node_id=candidates.get(index, 0),
        )

    return run_protocol(topology, factory, max_rounds=config.walk_rounds + 1, seed=seed)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomWalkProbeConfig(walk_rounds=0, walks_per_candidate=1)
        with pytest.raises(ConfigurationError):
            RandomWalkProbeConfig(walk_rounds=1, walks_per_candidate=0)


class TestState:
    def test_candidate_initial_max_is_own_id(self):
        config = RandomWalkProbeConfig(walk_rounds=5, walks_per_candidate=3)
        state = RandomWalkProbeState(num_ports=2, config=config, candidate=True, node_id=99)
        assert state.max_walk_id == 99

    def test_non_candidate_initial_max_is_zero(self):
        # Deviation 2 (DESIGN.md): a non-candidate's private ID never enters
        # any walk, so it must not shadow the candidates' IDs.
        config = RandomWalkProbeConfig(walk_rounds=5, walks_per_candidate=3)
        state = RandomWalkProbeState(num_ports=2, config=config, candidate=False, node_id=1234)
        assert state.max_walk_id == 0

    def test_initial_scatter_emits_all_tokens(self):
        config = RandomWalkProbeConfig(walk_rounds=5, walks_per_candidate=10)
        state = RandomWalkProbeState(num_ports=3, config=config, candidate=True, node_id=5)
        counts = state.initial_scatter(random.Random(0))
        assert sum(counts.values()) == 10
        assert all(1 <= port <= 3 for port in counts)

    def test_non_candidate_scatters_nothing(self):
        config = RandomWalkProbeConfig(walk_rounds=5, walks_per_candidate=10)
        state = RandomWalkProbeState(num_ports=3, config=config, candidate=False, node_id=5)
        assert state.initial_scatter(random.Random(0)) == {}

    def test_absorb_merges_ids_and_counts(self):
        config = RandomWalkProbeConfig(walk_rounds=5, walks_per_candidate=1)
        state = RandomWalkProbeState(num_ports=2, config=config, candidate=False, node_id=0)
        state.absorb({1: WalkMessage(walk_id=7, count=3), 2: WalkMessage(walk_id=4, count=2)})
        assert state.tokens == 5
        assert state.max_walk_id == 7
        assert state.tokens_seen == 5

    def test_move_tokens_conserves_count(self):
        config = RandomWalkProbeConfig(walk_rounds=5, walks_per_candidate=1)
        state = RandomWalkProbeState(num_ports=4, config=config, candidate=False, node_id=0)
        state.tokens = 50
        moved = state.move_tokens(random.Random(1))
        assert sum(moved.values()) + state.tokens == 50

    def test_step_outbox_carries_current_max(self):
        config = RandomWalkProbeConfig(walk_rounds=5, walks_per_candidate=4)
        state = RandomWalkProbeState(num_ports=2, config=config, candidate=True, node_id=11)
        outbox = state.step(random.Random(0), {})
        assert all(message.walk_id == 11 for message in outbox.values())
        assert sum(message.count for message in outbox.values()) == 4


class TestWalkPhaseEndToEnd:
    def test_token_count_is_conserved_globally(self):
        topology = cycle(10)
        config = RandomWalkProbeConfig(walk_rounds=12, walks_per_candidate=6)
        result = run_walk_phase(topology, {0: 50, 5: 80}, config)
        held = sum(r["tokens_held"] for r in result.results())
        assert held == 12  # two candidates x 6 walks

    def test_max_id_spreads_on_well_connected_graph(self):
        topology = complete(12)
        config = RandomWalkProbeConfig(walk_rounds=30, walks_per_candidate=12)
        result = run_walk_phase(topology, {0: 500, 3: 900}, config, seed=2)
        results = result.results()
        # Node 3 has the larger ID; a clear majority of nodes should have
        # been visited by one of its walks within 30 rounds.
        aware = sum(r["max_walk_id"] == 900 for r in results)
        assert aware >= 8
        # Candidate 0 must have learned it is beaten.
        assert results[0]["max_walk_id"] == 900

    def test_non_candidates_never_inject_their_ids(self):
        topology = cycle(8)
        config = RandomWalkProbeConfig(walk_rounds=10, walks_per_candidate=2)
        result = run_walk_phase(topology, {2: 77}, config)
        observed = {r["max_walk_id"] for r in result.results()}
        assert observed <= {0, 77}

    def test_walks_stay_near_source_on_long_cycle(self):
        topology = cycle(64)
        config = RandomWalkProbeConfig(walk_rounds=6, walks_per_candidate=4)
        result = run_walk_phase(topology, {0: 42}, config, seed=1)
        results = result.results()
        touched = [i for i, r in enumerate(results) if r["max_walk_id"] == 42]
        # In 6 lazy steps a walk cannot be farther than 6 hops away.
        assert all(min(i, 64 - i) <= 6 for i in touched)

    def test_message_count_bounded_by_token_rounds(self):
        topology = random_regular(16, 4, seed=3)
        config = RandomWalkProbeConfig(walk_rounds=20, walks_per_candidate=5)
        result = run_walk_phase(topology, {0: 10, 1: 20, 2: 30}, config, seed=5)
        # At most one message per token movement: 15 tokens x 20 rounds,
        # plus the initial scatter.
        assert result.metrics.messages <= 15 * 21

    def test_halts_after_configured_rounds(self):
        topology = cycle(6)
        config = RandomWalkProbeConfig(walk_rounds=7, walks_per_candidate=2)
        result = run_walk_phase(topology, {0: 9}, config)
        assert result.all_halted
        assert result.rounds_executed == 8
