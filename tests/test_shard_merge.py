"""Tests for distributed `--shard i/k` sweeps, shard-checkpoint merge, and
the streaming result pipeline.

The contract under test:

* an ``i/k`` split covers the grid exactly once, deterministically, with
  no coordination between the k jobs beyond the grid definition;
* merging the k shard checkpoints and replaying yields results
  bit-identical to an unsharded sweep (wall-clock readings aside), with
  zero re-executed runs;
* merge validation catches what multi-machine reality produces: missing
  shard files, partial coverage, conflicting records for one task key,
  shard files of mixed compactness, and stale records from a re-run
  under a different adversary token;
* the streaming aggregation path (exact per-cell accumulators) is
  order-independent, so pool completion order and shard fold order can
  never change a cell.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import CellAggregate, ExperimentSpec, run_experiment
from repro.analysis.runners import flooding_runner, uniform_id_runner
from repro.core.errors import ConfigurationError
from repro.graphs import cycle, grid_2d, star
from repro.parallel import (
    CheckpointStore,
    JsonlCheckpointStore,
    ShardManifest,
    compact_record,
    expand_run_tasks,
    manifest_path,
    merge_shard_checkpoints,
    parse_shard,
    result_to_record,
    run_experiments,
    select_shard,
    shard_checkpoint_path,
    validate_shard,
)

SEEDS = (0, 1, 2)
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", 2))


def _spec(name: str = "flooding", runner=flooding_runner) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        runner=runner,
        topologies=[cycle(8), star(8), grid_2d(3, 3)],
        seeds=SEEDS,
        collect_profile=False,
    )


def _specs():
    return [_spec("flooding"), _spec("uniform", uniform_id_runner)]


def _comparable(cells):
    rows = []
    for cell in cells:
        row = cell.as_dict()
        row.pop("mean_wall_clock_seconds")
        rows.append(row)
    return rows


def count_file_runner(topology, seed):
    """Picklable runner that logs invocations (see test_parallel_runner)."""
    with open(os.environ["REPRO_TEST_COUNT_FILE"], "a", encoding="utf-8") as handle:
        handle.write(f"{topology.name} {seed}\n")
    return flooding_runner(topology, seed)


# --------------------------------------------------------------------------- #
# shard selection and validation
# --------------------------------------------------------------------------- #


class TestShardSelection:
    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)

    @pytest.mark.parametrize(
        "text", ["2/2", "5/4", "-1/2", "1/0", "1/-3", "x/y", "3", "1/2/3", "/2", "1/"]
    )
    def test_bad_shard_specs_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_shard(text)

    def test_validate_shard_bounds(self):
        assert validate_shard(0, 1) == (0, 1)
        with pytest.raises(ConfigurationError):
            validate_shard(1, 1)
        with pytest.raises(ConfigurationError):
            validate_shard(0, 0)

    def test_select_shard_partitions_exactly(self):
        items = list(range(11))
        shards = [select_shard(items, index, 3) for index in range(3)]
        assert sorted(item for shard in shards for item in shard) == items
        assert shards[0] == [0, 3, 6, 9]
        # Deterministic: same inputs, same slice.
        assert select_shard(items, 0, 3) == shards[0]

    def test_shard_requires_checkpoint(self):
        with pytest.raises(ConfigurationError, match="requires a checkpoint"):
            run_experiments([_spec()], shard=(0, 2))

    def test_shard_validated_in_runner(self, tmp_path):
        with pytest.raises(ConfigurationError, match="shard index"):
            run_experiments(
                [_spec()], checkpoint=tmp_path / "ck.json", shard=(2, 2)
            )


# --------------------------------------------------------------------------- #
# the acceptance pin: sharded + merged == unsharded, bit for bit
# --------------------------------------------------------------------------- #


class TestShardedSweepEquivalence:
    def test_sharded_merge_replay_is_bit_identical(self, tmp_path, monkeypatch):
        specs = _specs()
        unsharded = run_experiments(specs, workers=WORKERS)

        base = tmp_path / "sweep.json"
        for index in range(2):
            run_experiments(specs, checkpoint=base, shard=(index, 2), workers=WORKERS)

        merged = tmp_path / "merged.json"
        summary = merge_shard_checkpoints(manifest_path(base), merged)
        assert summary["tasks_missing"] == 0
        assert summary["tasks_merged"] == summary["tasks_expected"]

        # The replay must execute nothing: every run comes from the merge.
        count_file = tmp_path / "invocations.log"
        monkeypatch.setenv("REPRO_TEST_COUNT_FILE", str(count_file))
        replay_specs = [
            ExperimentSpec(
                name=spec.name,
                runner=count_file_runner,
                topologies=spec.topologies,
                seeds=spec.seeds,
                collect_profile=False,
            )
            for spec in specs
        ]
        # NB: replay keys must match, and task keys do not include the
        # runner identity — only spec/topology/seed/adversary — so the
        # counting runner replays the stored records.
        replayed = run_experiments(replay_specs, checkpoint=merged)
        assert not count_file.exists() or count_file.read_text() == ""

        for a, b in zip(unsharded, replayed):
            assert _comparable(a.cells) == _comparable(b.cells)

    def test_shard_runs_disjoint_slices(self, tmp_path, monkeypatch):
        count_file = tmp_path / "invocations.log"
        monkeypatch.setenv("REPRO_TEST_COUNT_FILE", str(count_file))
        spec = ExperimentSpec(
            name="counted",
            runner=count_file_runner,
            topologies=[cycle(8), star(8)],
            seeds=SEEDS,
            collect_profile=False,
        )
        base = tmp_path / "sweep.json"
        run_experiments([spec], checkpoint=base, shard=(0, 2))
        run_experiments([spec], checkpoint=base, shard=(1, 2))
        # Each of the 6 grid runs executed exactly once across both jobs.
        lines = count_file.read_text().splitlines()
        assert len(lines) == 6
        assert len(set(lines)) == 6

    def test_sharded_results_contain_only_local_cells(self, tmp_path):
        # One topology, two seeds, two shards: each job holds one run of
        # the only cell; a 3-topology grid sharded 3 ways can drop whole
        # cells from a shard's partial view.
        spec = ExperimentSpec(
            name="narrow",
            runner=flooding_runner,
            topologies=[cycle(8), star(8), grid_2d(3, 3)],
            seeds=(0,),
            collect_profile=False,
        )
        base = tmp_path / "sweep.json"
        partial = run_experiments([spec], checkpoint=base, shard=(0, 3))[0]
        assert len(partial.cells) == 1  # tasks 0,3,6,... -> only cycle(8)
        assert partial.cells[0].topology_name == "cycle(n=8)"
        assert partial.cells[0].runs == 1

    def test_empty_slice_shards_still_merge(self, tmp_path):
        # More shards than tasks: the jobs whose round-robin slice is
        # empty must still write their (empty) shard checkpoints, and the
        # merge of the fully-executed split must validate as complete.
        spec = ExperimentSpec(
            name="small",
            runner=flooding_runner,
            topologies=[cycle(8)],
            seeds=(0, 1),
            collect_profile=False,
        )
        base = tmp_path / "sweep.json"
        for index in range(4):
            run_experiments([spec], checkpoint=base, shard=(index, 4))
            assert shard_checkpoint_path(base, index, 4).exists()
        summary = merge_shard_checkpoints(manifest_path(base), tmp_path / "m.json")
        assert summary["missing_shards"] == 0
        assert summary["tasks_missing"] == 0
        assert summary["tasks_merged"] == 2

    def test_resumed_shard_skips_completed_runs(self, tmp_path, monkeypatch):
        count_file = tmp_path / "invocations.log"
        monkeypatch.setenv("REPRO_TEST_COUNT_FILE", str(count_file))
        spec = ExperimentSpec(
            name="counted",
            runner=count_file_runner,
            topologies=[cycle(8), star(8)],
            seeds=SEEDS,
            collect_profile=False,
        )
        base = tmp_path / "sweep.json"
        run_experiments([spec], checkpoint=base, shard=(0, 2))
        executed = len(count_file.read_text().splitlines())
        run_experiments([spec], checkpoint=base, shard=(0, 2))  # resume: replay
        assert len(count_file.read_text().splitlines()) == executed


# --------------------------------------------------------------------------- #
# the shard manifest
# --------------------------------------------------------------------------- #


class TestShardManifest:
    def test_every_job_writes_the_same_manifest(self, tmp_path):
        base = tmp_path / "sweep.json"
        run_experiments([_spec()], checkpoint=base, shard=(0, 2))
        first = manifest_path(base).read_text()
        run_experiments([_spec()], checkpoint=base, shard=(1, 2))
        assert manifest_path(base).read_text() == first

    def test_manifest_round_trip(self, tmp_path):
        keys = [f"task-{index}" for index in range(7)]
        manifest = ShardManifest.plan(tmp_path / "ck.json", keys, 3)
        manifest.write(manifest_path(tmp_path / "ck.json"))
        loaded = ShardManifest.load(manifest_path(tmp_path / "ck.json"))
        assert loaded == manifest
        assert set(loaded.expected_keys()) == set(keys)
        assert loaded.expected_keys()["task-4"] == 1  # round-robin: 4 % 3

    def test_conflicting_manifest_rejected(self, tmp_path):
        # A shard job of a *different* grid (here: a different adversary,
        # which changes every task key) pointed at the same checkpoint
        # base must fail loudly instead of corrupting the split.
        from repro.dynamics import AdversarySpec

        base = tmp_path / "sweep.json"
        run_experiments([_spec()], checkpoint=base, shard=(0, 2))
        adversarial = ExperimentSpec(
            name="flooding",
            runner=flooding_runner,
            topologies=[cycle(8), star(8), grid_2d(3, 3)],
            seeds=SEEDS,
            collect_profile=False,
            adversary=AdversarySpec.create("loss", p=0.01),
        )
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_experiments([adversarial], checkpoint=base, shard=(1, 2))

    def test_manifest_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "not-manifest.json"
        path.write_text(json.dumps({"version": 1, "runs": {}}))
        with pytest.raises(ConfigurationError, match="not a shard manifest"):
            ShardManifest.load(path)


# --------------------------------------------------------------------------- #
# merge validation
# --------------------------------------------------------------------------- #


def _sharded_run(tmp_path, specs=None, shards=2):
    base = tmp_path / "sweep.json"
    specs = specs if specs is not None else [_spec()]
    for index in range(shards):
        run_experiments(specs, checkpoint=base, shard=(index, shards))
    return base


class TestMergeValidation:
    def test_missing_shard_rejected_then_allowed(self, tmp_path):
        base = _sharded_run(tmp_path)
        shard_checkpoint_path(base, 1, 2).unlink()
        with pytest.raises(ConfigurationError, match="missing shard"):
            merge_shard_checkpoints(manifest_path(base), tmp_path / "m.json")
        summary = merge_shard_checkpoints(
            manifest_path(base), tmp_path / "m.json", allow_partial=True
        )
        assert summary["missing_shards"] == 1
        assert 0 < summary["tasks_merged"] < summary["tasks_expected"]
        assert summary["tasks_missing"] > 0

    def test_overlapping_identical_records_deduplicate(self, tmp_path):
        base = _sharded_run(tmp_path)
        # Copy one record of shard 0 into shard 1: an overlap from a
        # re-run, with identical measurements — legal, deduplicated.
        store0 = JsonlCheckpointStore(shard_checkpoint_path(base, 0, 2))
        store1 = JsonlCheckpointStore(shard_checkpoint_path(base, 1, 2))
        key, record = next(iter(store0.load().items()))
        store1.add(key, record)
        store1.flush()
        summary = merge_shard_checkpoints(manifest_path(base), tmp_path / "m.json")
        assert summary["tasks_merged"] == summary["tasks_expected"]

    def test_conflicting_records_rejected(self, tmp_path):
        base = _sharded_run(tmp_path)
        store0 = JsonlCheckpointStore(shard_checkpoint_path(base, 0, 2))
        store1 = JsonlCheckpointStore(shard_checkpoint_path(base, 1, 2))
        key, record = next(iter(store0.load().items()))
        forged = dict(record)
        forged["metrics"] = dict(forged["metrics"])
        forged["metrics"]["messages"] = forged["metrics"]["messages"] + 1
        store1.add(key, forged)
        store1.flush()
        with pytest.raises(ConfigurationError, match="conflicting records"):
            merge_shard_checkpoints(manifest_path(base), tmp_path / "m.json")

    def test_mixed_compact_and_full_shards_merge(self, tmp_path):
        specs = [_spec()]
        base = tmp_path / "sweep.json"
        run_experiments(specs, checkpoint=base, shard=(0, 2))
        run_experiments(
            specs, checkpoint=base, shard=(1, 2), checkpoint_compact=True
        )
        merged = tmp_path / "merged.json"
        summary = merge_shard_checkpoints(manifest_path(base), merged)
        assert summary["tasks_missing"] == 0
        replayed = run_experiments(specs, checkpoint=merged)
        plain = run_experiments(specs)
        for a, b in zip(plain, replayed):
            assert _comparable(a.cells) == _comparable(b.cells)

    def test_compact_and_full_copies_of_one_record_are_not_a_conflict(self, tmp_path):
        base = _sharded_run(tmp_path)
        store0 = JsonlCheckpointStore(shard_checkpoint_path(base, 0, 2))
        store1 = JsonlCheckpointStore(shard_checkpoint_path(base, 1, 2))
        key, record = next(iter(store0.load().items()))
        store1.add(key, compact_record(record))
        store1.flush()
        summary = merge_shard_checkpoints(manifest_path(base), tmp_path / "m.json")
        assert summary["tasks_merged"] == summary["tasks_expected"]
        # The fuller record survives the dedupe.
        merged = JsonlCheckpointStore(tmp_path / "m.json").load()
        assert "node_results" in merged[key]

    def test_stale_records_from_other_adversary_token_dropped(self, tmp_path):
        # A shard file resumed from an earlier sweep under a different
        # adversary carries records whose task keys the manifest does not
        # know: they are dropped from the merge and reported, and
        # coverage of the *current* grid still validates.
        from repro.dynamics import AdversarySpec

        adversarial = ExperimentSpec(
            name="flooding",
            runner=flooding_runner,
            topologies=[cycle(8), star(8), grid_2d(3, 3)],
            seeds=SEEDS,
            collect_profile=False,
            adversary=AdversarySpec.create("loss", p=0.01),
        )
        base = _sharded_run(tmp_path)
        stale_keys = [task.key for task in expand_run_tasks(adversarial)]
        store0 = JsonlCheckpointStore(shard_checkpoint_path(base, 0, 2))
        result = flooding_runner(cycle(8), 0)
        store0.add(stale_keys[0], result_to_record(result, 0.1))
        store0.flush()
        summary = merge_shard_checkpoints(manifest_path(base), tmp_path / "m.json")
        assert summary["extraneous_records_dropped"] == 1
        assert summary["tasks_missing"] == 0
        assert stale_keys[0] not in JsonlCheckpointStore(tmp_path / "m.json").load()


# --------------------------------------------------------------------------- #
# streaming aggregation: exact, order-independent folds
# --------------------------------------------------------------------------- #


class TestStreamingAggregates:
    def _runs(self):
        return [(flooding_runner(cycle(8), seed), 0.25) for seed in range(5)]

    def test_fold_order_never_changes_the_aggregate(self):
        runs = self._runs()
        forward, backward = CellAggregate(), CellAggregate()
        for run, elapsed in runs:
            forward.add(run, elapsed)
        for run, elapsed in reversed(runs):
            backward.add(run, elapsed)
        assert forward.mean_messages == backward.mean_messages
        assert forward.stdev_messages == backward.stdev_messages
        assert forward.min_messages == backward.min_messages
        assert forward.max_rounds == backward.max_rounds
        assert forward.safety.summary() == backward.safety.summary()

    def test_merge_of_partial_aggregates_equals_total(self):
        runs = self._runs()
        total = CellAggregate()
        left, right = CellAggregate(), CellAggregate()
        for index, (run, elapsed) in enumerate(runs):
            total.add(run, elapsed)
            (left if index % 2 == 0 else right).add(run, elapsed)
        left.merge(right)
        assert left.count == total.count
        assert left.mean_messages == total.mean_messages
        assert left.stdev_messages == total.stdev_messages
        assert left.min_messages == total.min_messages
        assert left.max_messages == total.max_messages
        assert left.safety.summary() == total.safety.summary()

    def test_cell_min_max_fields(self):
        spec = ExperimentSpec(
            name="flooding",
            runner=flooding_runner,
            topologies=[cycle(8)],
            seeds=SEEDS,
            collect_profile=False,
        )
        cell = run_experiment(spec).cells[0]
        messages = [flooding_runner(cycle(8), seed).messages for seed in SEEDS]
        assert cell.min_messages == min(messages)
        assert cell.max_messages == max(messages)
        assert cell.min_rounds <= cell.max_rounds
        assert cell.safety is not None
        assert cell.safety.runs == len(SEEDS)

    def test_custom_sink_sees_every_run(self, tmp_path):
        from repro.analysis import ResultSink

        class Recorder(ResultSink):
            def __init__(self):
                self.seen = []
                self.closed = False

            def emit(self, spec_name, topology_index, seed_index, result, wall):
                self.seen.append((spec_name, topology_index, seed_index))

            def close(self):
                self.closed = True

        spec = _spec()
        serial, parallel = Recorder(), Recorder()
        run_experiment(spec, sinks=[serial])
        run_experiment(spec, workers=2, sinks=[parallel])
        assert sorted(serial.seen) == sorted(parallel.seen)
        assert len(serial.seen) == len(spec.topologies) * len(SEEDS)
        assert serial.closed and parallel.closed

    def test_checkpoint_parent_directories_created_at_construction(self, tmp_path):
        store = CheckpointStore(tmp_path / "a" / "b" / "ck.json")
        assert (tmp_path / "a" / "b").is_dir()
        result = flooding_runner(cycle(8), 0)
        store.add("k", result_to_record(result, 0.1))
        assert store.path.exists()


class TestProtocolGridSharding:
    """The acceptance pin for the protocol axis: a parameterised grid
    (two variants of one algorithm) shards, merges and replays
    bit-identically to the unsharded sweep, with protocol-qualified task
    keys throughout."""

    def _grid_specs(self):
        from repro.workloads import sweep_specs

        return sweep_specs(
            ["flooding:c=2", "flooding:c=3"],
            [cycle(8), star(8)],
            seeds=SEEDS,
            collect_profile=False,
        )

    def test_sharded_protocol_grid_merge_replay_is_bit_identical(self, tmp_path):
        specs = self._grid_specs()
        unsharded = run_experiments(specs, workers=WORKERS)

        base = tmp_path / "grid.json"
        for index in range(2):
            run_experiments(specs, checkpoint=base, shard=(index, 2), workers=WORKERS)

        merged = tmp_path / "merged.json"
        summary = merge_shard_checkpoints(manifest_path(base), merged)
        assert summary["tasks_missing"] == 0
        assert summary["tasks_merged"] == 2 * 2 * len(SEEDS)

        replayed = run_experiments(specs, checkpoint=merged)
        for a, b in zip(unsharded, replayed):
            assert _comparable(a.cells) == _comparable(b.cells)
        # Distinct variants stayed distinct through the split and merge.
        assert _comparable(replayed[0].cells) != _comparable(replayed[1].cells)

    def test_manifest_task_keys_carry_protocol_tokens(self, tmp_path):
        specs = self._grid_specs()
        base = tmp_path / "grid.json"
        run_experiments(specs, checkpoint=base, shard=(0, 2))
        manifest = json.loads(manifest_path(base).read_text())
        keys = [key for shard in manifest["shards"] for key in shard["tasks"]]
        assert len(keys) == 2 * 2 * len(SEEDS)
        assert all("|flooding:c=" in key for key in keys)

    def test_variant_cells_report_their_token(self, tmp_path):
        specs = self._grid_specs()
        results = run_experiments(specs, checkpoint=tmp_path / "grid.json")
        tokens = {
            cell.protocol for result in results for cell in result.cells
        }
        assert tokens == {"flooding:c=2.0", "flooding:c=3.0"}
