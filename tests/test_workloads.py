"""Unit tests for the named topology suites and scenario registries."""

from __future__ import annotations

import pytest

from repro import cli
from repro.core import ConfigurationError
from repro.workloads import (
    DYNAMIC_SCENARIOS,
    PROTOCOL_SCENARIOS,
    SUITES,
    dynamic_scenario,
    mixed_suite,
    poorly_connected_suite,
    protocol_scenario,
    scaling_family,
    suite_by_name,
    tiny_suite,
    well_connected_suite,
)
from repro.graphs import conductance, mixing_time


class TestSuites:
    def test_registry_contains_all_builders(self):
        assert {"well_connected", "poorly_connected", "mixed", "tiny"} <= set(SUITES)

    def test_suite_by_name_dispatch(self):
        suite = suite_by_name("tiny")
        assert len(suite) >= 3

    def test_suite_by_name_unknown(self):
        with pytest.raises(ConfigurationError):
            suite_by_name("nonexistent")

    def test_well_connected_sizes(self):
        suite = well_connected_suite(sizes=(16, 32))
        names = [t.name for t in suite]
        assert any("random_regular(n=16" in name for name in names)
        assert any("hypercube" in name for name in names)
        assert all(t.num_nodes >= 8 for t in suite)

    def test_poorly_connected_contains_cycles_and_barbell(self):
        suite = poorly_connected_suite(sizes=(16,))
        names = " ".join(t.name for t in suite)
        assert "cycle" in names and "barbell" in names

    def test_mixed_suite_spans_regimes(self):
        suite = mixed_suite()
        conductances = [conductance(t) for t in suite]
        assert max(conductances) / min(conductances) > 3

    def test_tiny_suite_is_small(self):
        assert all(t.num_nodes <= 8 for t in tiny_suite())

    def test_suites_are_reproducible(self):
        a = [t.name for t in well_connected_suite(sizes=(16,), seed=3)]
        b = [t.name for t in well_connected_suite(sizes=(16,), seed=3)]
        assert a == b
        first = well_connected_suite(sizes=(16,), seed=3)[0]
        second = well_connected_suite(sizes=(16,), seed=3)[0]
        assert sorted(first.edges()) == sorted(second.edges())


class TestScenarioRegistries:
    """Every registered scenario must construct, dedupe and reach the CLI."""

    def test_dynamic_scenarios_construct_and_dedupe(self):
        for name, builder in DYNAMIC_SCENARIOS.items():
            ladder = builder()
            assert ladder, f"scenario {name!r} built an empty ladder"
            tokens = [None if rung is None else rung.token() for rung in ladder]
            assert len(set(tokens)) == len(tokens), (
                f"scenario {name!r} lists a rung twice: {tokens}"
            )

    def test_protocol_scenarios_construct_and_dedupe(self):
        for name in PROTOCOL_SCENARIOS:
            ladder = protocol_scenario(name)
            assert ladder, f"scenario {name!r} built an empty ladder"
            canonical = [spec.canonical() for spec in ladder]
            assert len(set(canonical)) == len(canonical), (
                f"scenario {name!r} lists a configuration twice: {canonical}"
            )

    def test_lookup_helpers_reject_unknown_names(self):
        with pytest.raises(ConfigurationError):
            dynamic_scenario("sunny-day")
        with pytest.raises(ConfigurationError):
            protocol_scenario("sunny-day")

    @pytest.mark.parametrize(
        "name", sorted(DYNAMIC_SCENARIOS) + sorted(PROTOCOL_SCENARIOS)
    )
    def test_scenario_round_trips_through_cli_parsing(self, name):
        # The full CLI path short of execution: argv -> parsed args ->
        # expanded experiment grid, non-empty with unique spec names.
        argv = ["sweep", "--suite", "tiny", "--seeds", "1", "--no-profile",
                "--scenario", name]
        if name in DYNAMIC_SCENARIOS:
            argv += ["--algorithms", "flooding"]
        args = cli.build_parser().parse_args(argv)
        assert args.scenario == name
        specs, adversarial = cli.build_sweep_specs(args, tiny_suite())
        assert specs
        names = [spec.name for spec in specs]
        assert len(set(names)) == len(names)
        assert adversarial == (name in DYNAMIC_SCENARIOS)
        if name in DYNAMIC_SCENARIOS:
            # One spec per (algorithm, rung), baseline included.
            assert len(specs) == len(dynamic_scenario(name))
        else:
            assert len(specs) == len(protocol_scenario(name))


class TestScalingFamily:
    def test_random_regular_family_sizes(self):
        family = scaling_family("random_regular", [16, 32])
        assert [t.num_nodes for t in family] == [16, 32]

    def test_cycle_family_mixing_grows(self):
        family = scaling_family("cycle", [8, 16])
        assert mixing_time(family[1]) > mixing_time(family[0])

    def test_torus_family_uses_square_sides(self):
        family = scaling_family("torus", [16, 36])
        assert [t.num_nodes for t in family] == [16, 36]

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            scaling_family("moebius", [8])
