"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    Topology,
    complete,
    cycle,
    grid_2d,
    path,
    random_regular,
    star,
)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def triangle() -> Topology:
    """The smallest cycle: 3 nodes."""
    return cycle(3)


@pytest.fixture
def small_cycle() -> Topology:
    return cycle(8)


@pytest.fixture
def small_path() -> Topology:
    return path(6)


@pytest.fixture
def small_star() -> Topology:
    return star(6)


@pytest.fixture
def small_complete() -> Topology:
    return complete(6)


@pytest.fixture
def small_grid() -> Topology:
    return grid_2d(3, 3)


@pytest.fixture
def small_expander() -> Topology:
    return random_regular(16, 4, seed=11)


@pytest.fixture
def medium_expander() -> Topology:
    return random_regular(32, 4, seed=5)
