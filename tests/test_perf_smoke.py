"""Performance smoke tests for the simulator hot path and parallel engine.

These are tier-1 guardrails, not benchmarks: the time caps are deliberately
generous (an order of magnitude above observed timings) so they only fire
on genuine regressions — e.g. the delivery loop falling back to per-message
endpoint resolution or per-message metrics calls, or the parallel engine
serialising absurd amounts of state.  The real serial-vs-parallel speedup
trajectory is recorded by ``benchmarks/bench_parallel_sweep.py``.
"""

from __future__ import annotations

import random
import time
from typing import Dict

from repro.analysis import ExperimentSpec, run_experiment
from repro.analysis.runners import flooding_runner
from repro.core import Message, ProtocolNode, SynchronousSimulator, build_nodes
from repro.graphs import cycle, random_regular, star


class ChattyNode(ProtocolNode):
    """Sends through every port every round — a pure hot-path workload."""

    def step(self, round_index: int, inbox) -> Dict[int, Message]:
        return {port: Message() for port in self.ports()}


def test_simulator_hot_path_smoke():
    topology = random_regular(128, 4, seed=3)
    nodes = build_nodes(topology, lambda i, p, r: ChattyNode(p, r), seed=0)
    simulator = SynchronousSimulator(topology, nodes)
    rounds = 150
    started = time.perf_counter()
    for _ in range(rounds):
        simulator.run_round()
    elapsed = time.perf_counter() - started
    # 128 nodes x 4 ports x 150 rounds = 76_800 messages; observed well
    # under a second — the cap only catches order-of-magnitude regressions.
    assert simulator.metrics.messages == 128 * 4 * rounds
    assert simulator.metrics.rounds == rounds
    assert elapsed < 10.0, f"hot path took {elapsed:.2f}s for {rounds} rounds"


def test_parallel_engine_smoke():
    spec = ExperimentSpec(
        name="smoke",
        runner=flooding_runner,
        topologies=[cycle(12), star(12), random_regular(16, 4, seed=2)],
        seeds=(0, 1),
        collect_profile=False,
    )
    started = time.perf_counter()
    serial = run_experiment(spec)
    parallel = run_experiment(spec, workers=2)
    elapsed = time.perf_counter() - started
    assert [c.mean_messages for c in parallel.cells] == [
        c.mean_messages for c in serial.cells
    ]
    # Pool startup plus a trivial sweep; generous cap to stay robust on
    # loaded single-core CI runners.
    assert elapsed < 60.0, f"parallel smoke sweep took {elapsed:.2f}s"
