"""Tests for the flooding max-ID and uniform-ID baselines."""

from __future__ import annotations

import pytest

from repro.core import ConfigurationError
from repro.baselines import FloodingConfig, run_flooding_election, run_uniform_id_election
from repro.graphs import complete, cycle, path, random_regular


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FloodingConfig(n=0, diameter=3)
        with pytest.raises(ConfigurationError):
            FloodingConfig(n=4, diameter=-1)
        with pytest.raises(ConfigurationError):
            FloodingConfig(n=4, diameter=2, c=0)

    def test_total_rounds_is_diameter_plus_slack(self):
        config = FloodingConfig(n=16, diameter=5)
        assert config.total_rounds() == 7

    def test_from_topology_measures_diameter(self):
        config = FloodingConfig.from_topology(cycle(10))
        assert config.diameter == 5
        assert config.n == 10


class TestFloodingElection:
    def test_unique_leader_on_expander(self):
        result = run_flooding_election(random_regular(32, 4, seed=2), seed=4)
        assert result.success
        assert result.outcome.num_leaders == 1

    def test_unique_leader_on_cycle(self):
        result = run_flooding_election(cycle(20), seed=1)
        assert result.success

    def test_time_is_diameter_bounded(self):
        topology = cycle(20)
        result = run_flooding_election(topology, seed=1)
        assert result.rounds_executed == topology.diameter() + 2

    def test_message_complexity_near_linear_in_edges(self):
        topology = random_regular(64, 4, seed=5)
        result = run_flooding_election(topology, seed=3)
        # Each improvement of a node's running maximum triggers at most one
        # broadcast; with O(log n) candidates this stays well below m log n.
        assert result.messages <= 12 * topology.num_edges

    def test_leader_is_max_id_candidate(self):
        topology = random_regular(32, 4, seed=2)
        result = run_flooding_election(topology, seed=4)
        ids = {
            i: r["node_id"]
            for i, r in enumerate(result.node_results)
            if r["candidate"]
        }
        assert result.outcome.leader_indices == [max(ids, key=ids.get)]

    def test_success_rate_across_seeds(self):
        topology = random_regular(24, 4, seed=1)
        successes = sum(
            run_flooding_election(topology, seed=seed).success for seed in range(10)
        )
        # Can only fail when zero candidates are sampled, which is rare.
        assert successes >= 9

    def test_deterministic_given_seed(self):
        topology = cycle(12)
        a = run_flooding_election(topology, seed=6)
        b = run_flooding_election(topology, seed=6)
        assert a.messages == b.messages
        assert a.outcome.leader_indices == b.outcome.leader_indices

    def test_all_nodes_halt(self):
        result = run_flooding_election(path(8), seed=0)
        assert all(r["halted"] for r in result.node_results)


class TestUniformIdElection:
    def test_always_unique_leader(self):
        for seed in range(5):
            result = run_uniform_id_election(cycle(12), seed=seed)
            assert result.success

    def test_every_node_competes(self):
        result = run_uniform_id_election(cycle(12), seed=0)
        assert len(result.outcome.candidate_indices) == 12
        assert result.algorithm == "uniform-id-flooding"

    def test_costs_more_messages_than_sampled_flooding(self):
        topology = complete(24)
        uniform = run_uniform_id_election(topology, seed=1)
        sampled = run_flooding_election(topology, seed=1)
        assert uniform.messages > sampled.messages
