"""Smoke tests: every example script runs end to end on shrunk inputs."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_has_quickstart_plus_scenarios(self):
        scripts = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
        assert "quickstart" in scripts
        assert len(scripts) >= 3

    def test_quickstart_runs_and_elects(self, capsys):
        module = load_example("quickstart")
        assert module.main(n=24, seed=3) == 0
        out = capsys.readouterr().out
        assert "election outcomes" in out
        assert "kowalski-mosteiro-irrevocable" in out

    def test_sensor_field_runs(self, capsys):
        module = load_example("sensor_field")
        assert module.main(side=4, seed=2) == 0
        out = capsys.readouterr().out
        assert "coordinator election cost" in out

    def test_unknown_size_swarm_runs(self, capsys):
        module = load_example("unknown_size_swarm")
        assert module.main(n=4, seed=3) == 0
        out = capsys.readouterr().out
        assert "per-robot view" in out

    def test_impossibility_demo_runs(self, capsys):
        module = load_example("impossibility_demo")
        assert module.main(n=4, max_witnesses=2) == 0
        out = capsys.readouterr().out
        assert "broken on the wheel" in out
