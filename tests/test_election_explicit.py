"""Tests for the explicit-election extension (leader announcement + BFS tree)."""

from __future__ import annotations

import pytest

from repro.core import ConfigurationError
from repro.baselines import run_flooding_election
from repro.election import extend_to_explicit, run_irrevocable_election
from repro.graphs import cycle, grid_2d, random_regular, star


class TestExplicitExtension:
    def _explicit(self, topology, seed=3):
        implicit = run_irrevocable_election(topology, seed=seed)
        assert implicit.success
        return extend_to_explicit(topology, implicit, seed=seed)

    def test_everyone_learns_the_leader(self):
        topology = random_regular(24, 4, seed=7)
        explicit = self._explicit(topology)
        assert explicit.all_know_leader
        assert explicit.leader_id == (
            explicit.implicit.node_results[explicit.leader_index]["node_id"]
        )

    def test_tree_is_a_spanning_tree_rooted_at_leader(self):
        topology = grid_2d(4, 4)
        explicit = self._explicit(topology, seed=2)
        tree = explicit.tree
        assert tree.root == explicit.leader_index
        assert tree.is_spanning(topology)
        assert tree.parent[tree.root] is None

    def test_tree_depths_are_consistent_with_parents(self):
        topology = cycle(12)
        explicit = self._explicit(topology, seed=5)
        tree = explicit.tree
        for node, parent in tree.parent.items():
            if parent is None:
                assert tree.depth[node] == 0
            else:
                assert tree.depth[node] == tree.depth[parent] + 1

    def test_tree_depth_bounded_by_diameter(self):
        topology = random_regular(24, 4, seed=7)
        explicit = self._explicit(topology)
        assert explicit.tree.max_depth() <= topology.diameter()

    def test_announcement_costs_o_of_m_messages_and_d_rounds(self):
        topology = grid_2d(5, 5)
        explicit = self._explicit(topology, seed=4)
        assert explicit.metrics.messages <= 2 * topology.num_edges
        assert explicit.rounds_executed <= topology.diameter() + 4

    def test_total_cost_accumulates_implicit_phase(self):
        topology = star(8)
        explicit = self._explicit(topology, seed=1)
        assert explicit.total_messages == (
            explicit.implicit.messages + explicit.metrics.messages
        )
        assert explicit.total_rounds >= explicit.implicit.rounds_executed

    def test_works_on_top_of_other_implicit_protocols(self):
        topology = random_regular(24, 4, seed=9)
        implicit = run_flooding_election(topology, seed=2)
        assert implicit.success
        explicit = extend_to_explicit(topology, implicit, seed=2)
        assert explicit.all_know_leader
        assert explicit.tree.is_spanning(topology)

    def test_requires_successful_implicit_election(self):
        topology = cycle(8)
        implicit = run_irrevocable_election(topology, seed=3)
        failed = implicit
        # Fabricate a failed outcome by stripping the leader flags.
        from dataclasses import replace

        from repro.election import ElectionOutcome

        failed = replace(
            implicit,
            outcome=ElectionOutcome(
                num_leaders=0,
                leader_indices=[],
                candidate_indices=[],
                unique_leader=False,
            ),
        )
        with pytest.raises(ConfigurationError):
            extend_to_explicit(topology, failed)

    def test_requires_matching_topology(self):
        topology = cycle(8)
        implicit = run_irrevocable_election(topology, seed=3)
        with pytest.raises(ConfigurationError):
            extend_to_explicit(cycle(10), implicit)

    def test_children_of_helper(self):
        topology = star(6)
        explicit = self._explicit(topology, seed=1)
        tree = explicit.tree
        total_children = sum(len(tree.children_of(node)) for node in range(6))
        assert total_children == 5  # every non-root has exactly one parent

    def test_as_dict_fields(self):
        topology = cycle(8)
        explicit = self._explicit(topology, seed=3)
        data = explicit.as_dict()
        assert {"leader_index", "tree_depth", "total_messages"} <= set(data)
