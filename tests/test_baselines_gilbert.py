"""Tests for the Gilbert et al. style random-walk baseline."""

from __future__ import annotations

import pytest

from repro.core import ConfigurationError
from repro.baselines import GilbertConfig, TokenBundle, WalkToken, run_gilbert_election
from repro.graphs import complete, cycle, random_regular


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertConfig(n=0, t_mix=1)
        with pytest.raises(ConfigurationError):
            GilbertConfig(n=4, t_mix=0)
        with pytest.raises(ConfigurationError):
            GilbertConfig(n=4, t_mix=1, c=0)

    def test_tokens_scale_with_sqrt_n_log_n(self):
        import math

        config = GilbertConfig(n=64, t_mix=8, token_multiplier=1.0)
        assert config.tokens_per_candidate == math.ceil(math.sqrt(64) * math.log(64))

    def test_walk_length_scales_with_t_mix(self):
        short = GilbertConfig(n=64, t_mix=4)
        long = GilbertConfig(n=64, t_mix=16)
        assert long.walk_length > short.walk_length

    def test_total_rounds_covers_three_phases(self):
        config = GilbertConfig(n=32, t_mix=8)
        assert config.total_rounds() > 3 * config.walk_length

    def test_from_topology(self):
        config = GilbertConfig.from_topology(cycle(12))
        assert config.n == 12
        assert config.t_mix >= 1


class TestTokenBundle:
    def test_units_count_tokens(self):
        tokens = tuple(
            WalkToken(candidate_id=i, mode="mark", steps_remaining=3, collected_max=i)
            for i in range(1, 4)
        )
        bundle = TokenBundle(tokens=tokens)
        assert bundle.congest_units() == 3

    def test_path_is_excluded_from_bit_accounting(self):
        token_short = WalkToken(1, "probe", 3, 1, path=())
        token_long = WalkToken(1, "probe", 3, 1, path=(1, 2, 3, 4, 5))
        assert (
            TokenBundle((token_short,)).size_bits()
            == TokenBundle((token_long,)).size_bits()
        )

    def test_empty_bundle_still_one_unit(self):
        assert TokenBundle(()).congest_units() == 1


class TestGilbertElection:
    def test_unique_leader_on_expander(self):
        result = run_gilbert_election(random_regular(32, 4, seed=2), seed=4)
        assert result.success
        assert result.outcome.num_leaders == 1

    def test_unique_leader_on_complete_graph(self):
        result = run_gilbert_election(complete(16), seed=2)
        assert result.success

    def test_success_rate_across_seeds(self):
        topology = random_regular(24, 4, seed=1)
        config = GilbertConfig.from_topology(topology)
        successes = sum(
            run_gilbert_election(topology, seed=seed, config=config).success
            for seed in range(6)
        )
        assert successes >= 5

    def test_leader_among_candidates(self):
        result = run_gilbert_election(random_regular(32, 4, seed=2), seed=4)
        assert set(result.outcome.leader_indices) <= set(result.outcome.candidate_indices)

    def test_winner_has_max_candidate_id(self):
        result = run_gilbert_election(random_regular(32, 4, seed=2), seed=4)
        ids = {
            i: r["node_id"]
            for i, r in enumerate(result.node_results)
            if r["candidate"]
        }
        assert result.outcome.leader_indices == [max(ids, key=ids.get)]

    def test_message_complexity_reflects_token_volume(self):
        topology = random_regular(32, 4, seed=2)
        config = GilbertConfig.from_topology(topology)
        result = run_gilbert_election(topology, seed=4, config=config)
        candidates = len(result.outcome.candidate_indices)
        budget = 4 * candidates * config.tokens_per_candidate * config.walk_length
        assert result.messages <= budget

    def test_marks_spread_over_network(self):
        topology = random_regular(32, 4, seed=2)
        result = run_gilbert_election(topology, seed=4)
        marked = sum(r["mark"] > 0 for r in result.node_results)
        assert marked >= topology.num_nodes // 2

    def test_all_nodes_halt(self):
        result = run_gilbert_election(cycle(12), seed=1)
        assert all(r["halted"] for r in result.node_results)

    def test_deterministic_given_seed(self):
        topology = cycle(12)
        config = GilbertConfig.from_topology(topology)
        a = run_gilbert_election(topology, seed=3, config=config)
        b = run_gilbert_election(topology, seed=3, config=config)
        assert a.messages == b.messages
        assert a.outcome.leader_indices == b.outcome.leader_indices
