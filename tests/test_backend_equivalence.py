"""Equivalence suite for the two simulator cores (``backend="round"|"event"``).

The event-driven core is a pure performance optimisation: it skips
quiescent nodes and fast-forwards over quiescent stretches of rounds, but
every observable of a run — metrics, election outcomes, per-node results,
traces, fault events — must be bit-for-bit identical to the round-robin
core.  This file pins that contract across

* the raw simulator (plain and under every adversary family),
* the irrevocable election pipeline (quiescence predicates engaged),
* the experiment engine in all execution modes: serial, pooled, pooled
  with the spawn start method, and sharded-with-checkpoint,
* robustness curves over a dynamic scenario,
* checkpoint identity: the backend never enters task keys, so a sweep
  checkpointed under one core replays under the other.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import ExperimentSpec, run_experiment
from repro.analysis.runners import flooding_runner, irrevocable_runner
from repro.core import (
    BACKENDS,
    Message,
    ProtocolNode,
    SimulationError,
    SynchronousSimulator,
    backend_scope,
    build_nodes,
    default_backend,
    set_default_backend,
)
from repro.core.errors import ConfigurationError
from repro.dynamics import AdversarySpec, make_adversary, robustness_specs
from repro.election import run_irrevocable_election
from repro.graphs import cycle, grid_2d, random_regular, star
from repro.parallel import expand_run_tasks, run_experiments
from repro.workloads import dynamic_scenario

ADVERSARY_GRID = [
    None,
    AdversarySpec.create("loss", p=0.1),
    AdversarySpec.create("delay", p=0.2, max_delay=3),
    AdversarySpec.create("skew", p=0.4, max_skew=3),
    AdversarySpec.create("churn", p_down=0.1, p_up=0.5),
    AdversarySpec.create("crash", p=0.2, horizon=4),
    AdversarySpec.create(
        "composed", models="loss+delay", **{"loss.p": 0.1, "delay.p": 0.2}
    ),
    AdversarySpec.create(
        "composed", models="skew+delay", **{"skew.p": 0.3, "delay.p": 0.1}
    ),
]


class Ping(Message):
    pass


class ChatterNode(ProtocolNode):
    """Never quiescent: sends through every port each round."""

    def __init__(self, num_ports: int, rng: random.Random) -> None:
        super().__init__(num_ports, rng)
        self.received = 0

    def step(self, round_index, inbox):
        self.received += len(inbox)
        return {port: Ping() for port in self.ports()}

    def result(self):
        return {"received": self.received}


def _chatter_fingerprint(backend, adversary_spec):
    adversary = (
        make_adversary(adversary_spec, 7) if adversary_spec is not None else None
    )
    topology = cycle(8)
    nodes = build_nodes(topology, lambda i, p, rng: ChatterNode(p, rng), seed=0)
    simulator = SynchronousSimulator(
        topology, nodes, adversary=adversary, backend=backend
    )
    result = simulator.run(12)
    return (
        result.metrics.as_dict(),
        result.rounds_executed,
        result.results(),
        simulator.pending_delayed(),
    )


def _election_fingerprint(backend, topology, seed):
    with backend_scope(backend):
        result = run_irrevocable_election(topology, seed=seed)
    return result.as_dict()


def _comparable(cells):
    rows = []
    for cell in cells:
        row = cell.as_dict()
        row.pop("mean_wall_clock_seconds")
        rows.append(row)
    return rows


def _flooding_spec(adversary=None, name="flooding-backend-eq"):
    return ExperimentSpec(
        name=name,
        runner=flooding_runner,
        topologies=[cycle(8), star(8), grid_2d(3, 3)],
        seeds=(0, 1, 2),
        collect_profile=False,
        adversary=adversary,
    )


class TestSimulatorCoreEquivalence:
    @pytest.mark.parametrize(
        "adversary_spec",
        ADVERSARY_GRID,
        ids=lambda s: s.token() if s is not None else "plain",
    )
    def test_chatter_identical_under_every_adversary(self, adversary_spec):
        assert _chatter_fingerprint("round", adversary_spec) == _chatter_fingerprint(
            "event", adversary_spec
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "topology_factory",
        [lambda: cycle(8), lambda: random_regular(16, 4, seed=7)],
        ids=["cycle8", "rr16d4"],
    )
    def test_irrevocable_election_bit_identical(self, topology_factory, seed):
        # The election pipeline is the quiescence-heavy workload: its
        # nodes implement quiescent_until, so the event core actually
        # skips work here — and must still match bit for bit.
        topology = topology_factory()
        assert _election_fingerprint("round", topology, seed) == _election_fingerprint(
            "event", topology, seed
        )

    def test_irrevocable_runner_matches_across_backends(self):
        with backend_scope("round"):
            reference = irrevocable_runner(cycle(8), 1).as_dict()
        with backend_scope("event"):
            assert irrevocable_runner(cycle(8), 1).as_dict() == reference


class TestExperimentEngineEquivalence:
    @pytest.mark.parametrize(
        "adversary",
        ADVERSARY_GRID,
        ids=lambda s: s.token() if s is not None else "plain",
    )
    def test_serial_sweep_identical_across_cores(self, adversary):
        spec = _flooding_spec(adversary)
        reference = run_experiment(spec, backend="round")
        event = run_experiment(spec, backend="event")
        assert _comparable(event.cells) == _comparable(reference.cells)

    def test_all_execution_modes_and_cores_identical(self, tmp_path):
        # serial/round is the reference; every (execution mode, core)
        # combination must reproduce its cells exactly.
        from repro.parallel import manifest_path, merge_shard_checkpoints

        spec = _flooding_spec(AdversarySpec.create("loss", p=0.1))
        reference = _comparable(run_experiment(spec, backend="round").cells)

        assert _comparable(run_experiment(spec, backend="event").cells) == reference
        for backend in ("round", "event"):
            pooled = run_experiment(spec, workers=2, backend=backend)
            assert _comparable(pooled.cells) == reference
        spawned = run_experiment(
            spec, workers=2, start_method="spawn", backend="event"
        )
        assert _comparable(spawned.cells) == reference

        checkpoint = tmp_path / "ck" / "sweep.json"
        for shard_index in (0, 1):
            run_experiments(
                [spec], checkpoint=checkpoint, shard=(shard_index, 2), backend="event"
            )
        merge_shard_checkpoints(manifest_path(checkpoint), checkpoint)
        replayed = run_experiment(spec, checkpoint=checkpoint)
        assert _comparable(replayed.cells) == reference

    def test_robustness_curve_identical_across_cores(self):
        specs = robustness_specs(
            ["flooding"], [cycle(8)], dynamic_scenario("lossy"), seeds=(0, 1)
        )
        for spec in specs:
            reference = run_experiment(spec, backend="round")
            event = run_experiment(spec, backend="event")
            assert _comparable(event.cells) == _comparable(reference.cells)

    def test_backend_not_in_task_keys_and_checkpoints_interchange(self, tmp_path):
        # Task keys identify (spec, topology, seed, adversary) — never the
        # simulator core — so a checkpoint written under one core must
        # replay (not recompute) under the other.
        spec = _flooding_spec(AdversarySpec.create("delay", p=0.2, max_delay=3))
        keys = sorted(task.key for task in expand_run_tasks(spec))
        assert all("round" not in key and "event" not in key for key in keys)

        checkpoint = tmp_path / "sweep.json"
        written = run_experiment(spec, checkpoint=checkpoint, backend="round")
        replayed = run_experiment(spec, checkpoint=checkpoint, backend="event")
        assert _comparable(replayed.cells) == _comparable(written.cells)


class TestBackendSelection:
    def test_auto_resolves_to_event(self):
        assert default_backend() == "event"
        topology = cycle(4)
        nodes = build_nodes(topology, lambda i, p, rng: ChatterNode(p, rng), seed=0)
        assert SynchronousSimulator(topology, nodes).backend == "event"

    def test_scopes_nest_and_restore(self):
        with backend_scope("round"):
            assert default_backend() == "round"
            with backend_scope("event"):
                assert default_backend() == "event"
            assert default_backend() == "round"
        assert default_backend() == "event"

    def test_explicit_argument_wins_over_scope(self):
        topology = cycle(4)
        nodes = build_nodes(topology, lambda i, p, rng: ChatterNode(p, rng), seed=0)
        with backend_scope("round"):
            simulator = SynchronousSimulator(topology, nodes, backend="event")
        assert simulator.backend == "event"

    def test_process_default_reaches_auto(self):
        try:
            set_default_backend("round")
            assert default_backend() == "round"
        finally:
            set_default_backend("auto")
        assert default_backend() == "event"

    def test_invalid_backend_rejected_everywhere(self):
        topology = cycle(4)
        nodes = build_nodes(topology, lambda i, p, rng: ChatterNode(p, rng), seed=0)
        with pytest.raises(SimulationError, match="warp"):
            SynchronousSimulator(topology, nodes, backend="warp")
        with pytest.raises(SimulationError, match="warp"):
            set_default_backend("warp")
        with pytest.raises(SimulationError, match="warp"):
            with backend_scope("warp"):
                pass  # pragma: no cover - the scope must refuse to open
        with pytest.raises(ConfigurationError, match="warp"):
            run_experiments([_flooding_spec()], backend="warp")
        assert "warp" not in BACKENDS
