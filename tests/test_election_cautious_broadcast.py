"""Unit tests for cautious broadcast (Algorithms 2–4)."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.core import ConfigurationError, ProtocolError, run_protocol
from repro.election import (
    ActivateMessage,
    CautiousBroadcastConfig,
    CautiousBroadcastManager,
    CautiousBroadcastNode,
    CautiousBroadcastState,
    OfferMessage,
    SizeMessage,
    StopMessage,
)
from repro.graphs import Topology, complete, cycle, path, random_regular


def run_single_broadcast(
    topology: Topology,
    *,
    config: CautiousBroadcastConfig,
    source: int = 0,
    seed: int = 0,
):
    """Run one cautious broadcast from ``source`` and return the simulation."""

    def factory(index: int, num_ports: int, rng: random.Random):
        return CautiousBroadcastNode(
            num_ports,
            rng,
            config=config,
            is_source=(index == source),
            source_id=777,
        )

    return run_protocol(
        topology, factory, max_rounds=config.protocol_rounds + 1, seed=seed
    )


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            CautiousBroadcastConfig(protocol_rounds=0, territory_cap=4)
        with pytest.raises(ConfigurationError):
            CautiousBroadcastConfig(protocol_rounds=4, territory_cap=0.5)

    def test_from_parameters(self):
        config = CautiousBroadcastConfig.from_parameters(
            n=64, t_mix=10, conductance=0.2, walks_per_candidate=8, c=2.0
        )
        assert config.protocol_rounds >= 10
        assert config.territory_cap == pytest.approx(8 * 10 * 0.2)

    def test_from_parameters_validation(self):
        with pytest.raises(ConfigurationError):
            CautiousBroadcastConfig.from_parameters(
                n=0, t_mix=10, conductance=0.2, walks_per_candidate=8
            )


class TestStateMachine:
    def _state(self, *, is_source: bool, ports: int = 3) -> CautiousBroadcastState:
        config = CautiousBroadcastConfig(protocol_rounds=50, territory_cap=100)
        return CautiousBroadcastState(
            num_ports=ports, config=config, source_id=42, is_source=is_source
        )

    def test_source_starts_joined_and_active(self):
        state = self._state(is_source=True)
        assert state.joined
        assert state.status == "active"
        assert state.parent_port is None

    def test_non_source_joins_on_offer(self):
        state = self._state(is_source=False)
        assert not state.joined
        state.handle_message(2, OfferMessage(source_id=42))
        assert state.joined
        assert state.parent_port == 2
        assert state.status == "active"

    def test_second_offer_does_not_change_parent(self):
        state = self._state(is_source=False)
        state.handle_message(2, OfferMessage(source_id=42))
        state.handle_message(3, OfferMessage(source_id=42))
        assert state.parent_port == 2

    def test_size_message_registers_child(self):
        state = self._state(is_source=True)
        state.handle_message(1, SizeMessage(source_id=42, size=3))
        assert 1 in state.children
        assert state.confirmed_subtree_size() == 4

    def test_stop_message_stops(self):
        state = self._state(is_source=False)
        state.handle_message(1, StopMessage(source_id=42))
        assert state.status == "stop"

    def test_unknown_message_raises(self):
        state = self._state(is_source=False)

        class Foreign:
            source_id = 42

        with pytest.raises(ProtocolError):
            state.handle_message(1, Foreign())

    def test_new_joiner_reports_size_one_to_parent(self):
        state = self._state(is_source=False)
        state.handle_message(2, OfferMessage(source_id=42))
        outbox = state.prepare_transmissions(random.Random(0))
        assert isinstance(outbox[2], SizeMessage)
        assert outbox[2].size == 1

    def test_source_offers_each_available_port_at_most_once(self):
        state = self._state(is_source=True, ports=3)
        rng = random.Random(0)
        offered = []
        for _ in range(20):
            outbox = state.prepare_transmissions(rng)
            offered.extend(
                port for port, msg in outbox.items() if isinstance(msg, OfferMessage)
            )
        assert sorted(offered) == [1, 2, 3]

    def test_threshold_doubles_when_confirmed_size_crosses(self):
        state = self._state(is_source=True)
        rng = random.Random(0)
        state.prepare_transmissions(rng)  # size 1 crosses threshold 1 -> 2
        assert state.threshold == 2
        state.handle_message(1, SizeMessage(source_id=42, size=5))
        state.prepare_transmissions(rng)  # size 6 crosses threshold 2 -> 4
        assert state.threshold == 4

    def test_territory_cap_triggers_stop_and_notifies_children(self):
        config = CautiousBroadcastConfig(protocol_rounds=50, territory_cap=2)
        state = CautiousBroadcastState(
            num_ports=3, config=config, source_id=42, is_source=True
        )
        rng = random.Random(0)
        state.handle_message(1, SizeMessage(source_id=42, size=4))
        # Crossing doubles the threshold past the cap; the next round stops.
        state.prepare_transmissions(rng)
        outbox = state.prepare_transmissions(rng)
        assert state.status == "stop"
        assert any(isinstance(msg, StopMessage) for msg in outbox.values())

    def test_reactivation_prompt_after_child_report(self):
        state = self._state(is_source=True)
        rng = random.Random(0)
        state.prepare_transmissions(rng)  # threshold -> 2
        state.prepare_transmissions(rng)  # offers a port
        state.handle_message(1, SizeMessage(source_id=42, size=1))
        # size 2 >= threshold 2: doubles again, child stays paused
        state.prepare_transmissions(rng)
        outbox = state.prepare_transmissions(rng)
        assert any(isinstance(msg, ActivateMessage) for msg in outbox.values())

    def test_exhausted_state_stops_transmitting(self):
        config = CautiousBroadcastConfig(protocol_rounds=2, territory_cap=50)
        state = CautiousBroadcastState(
            num_ports=2, config=config, source_id=42, is_source=True
        )
        rng = random.Random(0)
        state.prepare_transmissions(rng)
        state.prepare_transmissions(rng)
        assert state.exhausted
        assert state.prepare_transmissions(rng) == {}

    def test_not_joined_state_is_silent(self):
        state = self._state(is_source=False)
        assert state.prepare_transmissions(random.Random(0)) == {}


class TestSingleBroadcastEndToEnd:
    def test_covers_small_graph_when_cap_is_large(self):
        topology = complete(8)
        config = CautiousBroadcastConfig(protocol_rounds=60, territory_cap=100)
        result = run_single_broadcast(topology, config=config)
        joined = [r for r in result.results() if r["joined"]]
        assert len(joined) == 8

    def test_tree_structure_is_consistent(self):
        topology = random_regular(16, 4, seed=2)
        config = CautiousBroadcastConfig(protocol_rounds=120, territory_cap=200)
        result = run_single_broadcast(topology, config=config, seed=4)
        results = result.results()
        joined = [i for i, r in enumerate(results) if r["joined"]]
        sources = [i for i, r in enumerate(results) if r["is_source"]]
        assert sources == [0]
        for index in joined:
            record = results[index]
            if record["is_source"]:
                assert record["parent_port"] is None
            else:
                assert record["parent_port"] is not None

    def test_territory_bounded_by_twice_cap(self):
        topology = random_regular(32, 4, seed=9)
        cap = 6
        config = CautiousBroadcastConfig(protocol_rounds=200, territory_cap=cap)
        result = run_single_broadcast(topology, config=config, seed=1)
        joined = [r for r in result.results() if r["joined"]]
        # The doubling control keeps the confirmed territory within a factor
        # 2 of the cap (Lemma 1); allow slack for in-flight joiners.
        assert len(joined) <= 4 * cap

    def test_messages_scale_with_territory_not_with_edges(self):
        topology = complete(24)  # m = 276
        cap = 5
        config = CautiousBroadcastConfig(protocol_rounds=100, territory_cap=cap)
        result = run_single_broadcast(topology, config=config, seed=3)
        # Flooding would need >= m messages; cautious broadcast stays near
        # its small territory.
        assert result.metrics.messages < topology.num_edges

    def test_deterministic_given_seed(self):
        topology = cycle(12)
        config = CautiousBroadcastConfig(protocol_rounds=60, territory_cap=50)
        first = run_single_broadcast(topology, config=config, seed=5)
        second = run_single_broadcast(topology, config=config, seed=5)
        assert first.metrics.messages == second.metrics.messages
        assert [r["joined"] for r in first.results()] == [
            r["joined"] for r in second.results()
        ]

    def test_grows_along_path(self):
        topology = path(10)
        config = CautiousBroadcastConfig(protocol_rounds=80, territory_cap=100)
        result = run_single_broadcast(topology, config=config, seed=0)
        joined = [i for i, r in enumerate(result.results()) if r["joined"]]
        # Growth from node 0 must be a prefix of the path.
        assert joined == list(range(len(joined)))
        assert len(joined) >= 3


class TestManager:
    def test_rejects_bad_slot_count(self):
        config = CautiousBroadcastConfig(protocol_rounds=10, territory_cap=10)
        with pytest.raises(ConfigurationError):
            CautiousBroadcastManager(num_ports=2, config=config, num_slots=0)

    def test_routes_messages_per_instance(self):
        config = CautiousBroadcastConfig(protocol_rounds=10, territory_cap=10)
        manager = CautiousBroadcastManager(num_ports=3, config=config, num_slots=4)
        manager.handle_inbox({1: OfferMessage(source_id=5), 2: OfferMessage(source_id=9)})
        assert manager.instance_count() == 2
        assert sorted(manager.joined_instances()) == [5, 9]
        assert manager.parent_ports() == {1, 2}

    def test_source_instance_registration(self):
        config = CautiousBroadcastConfig(protocol_rounds=10, territory_cap=10)
        manager = CautiousBroadcastManager(num_ports=3, config=config, num_slots=4)
        manager.add_source_instance(11)
        assert manager.joined_instances() == [11]
        assert manager.parent_ports() == set()
        with pytest.raises(ProtocolError):
            manager.add_source_instance(11)

    def test_one_instance_transmits_per_slot(self):
        config = CautiousBroadcastConfig(protocol_rounds=10, territory_cap=10)
        manager = CautiousBroadcastManager(num_ports=4, config=config, num_slots=2)
        manager.add_source_instance(3)
        manager.handle_inbox({1: OfferMessage(source_id=8)})
        rng = random.Random(0)
        out_slot0 = manager.transmissions_for_slot(0, rng)
        out_slot1 = manager.transmissions_for_slot(1, rng)
        # slot 0 serves instance 3 (own broadcast), slot 1 serves instance 8.
        assert all(getattr(m, "source_id", None) == 3 for m in out_slot0.values())
        assert all(getattr(m, "source_id", None) == 8 for m in out_slot1.values())

    def test_slot_out_of_range_rejected(self):
        config = CautiousBroadcastConfig(protocol_rounds=10, territory_cap=10)
        manager = CautiousBroadcastManager(num_ports=2, config=config, num_slots=2)
        with pytest.raises(ProtocolError):
            manager.transmissions_for_slot(5, random.Random(0))

    def test_foreign_message_rejected(self):
        config = CautiousBroadcastConfig(protocol_rounds=10, territory_cap=10)
        manager = CautiousBroadcastManager(num_ports=2, config=config, num_slots=2)

        class Foreign:
            pass

        with pytest.raises(ProtocolError):
            manager.handle_inbox({1: Foreign()})

    def test_overflow_counter(self):
        config = CautiousBroadcastConfig(protocol_rounds=10, territory_cap=10)
        manager = CautiousBroadcastManager(num_ports=2, config=config, num_slots=1)
        manager.add_source_instance(1)
        manager.handle_inbox({1: OfferMessage(source_id=2)})
        assert manager.overflow_instances == 1
