"""Tests for the closed-form Table 1 bound predictors."""

from __future__ import annotations

import pytest

from repro.analysis import (
    KNOWN_N_BOUNDS,
    flooding_messages,
    flooding_rounds,
    gilbert_messages,
    gilbert_rounds,
    lower_bound_messages,
    predicted_rows,
    revocable_messages,
    revocable_rounds,
    thm1_messages,
    thm1_rounds,
)
from repro.graphs import complete, cycle, expansion_profile, random_regular


@pytest.fixture(scope="module")
def expander_profile():
    return expansion_profile(random_regular(64, 4, seed=3))


@pytest.fixture(scope="module")
def cycle_profile():
    return expansion_profile(cycle(32))


class TestKnownNBounds:
    def test_thm1_beats_gilbert_prediction(self, expander_profile, cycle_profile):
        # The paper: sqrt(n*t_mix)/Phi <= t_mix*sqrt(n) because t_mix >= 1/Phi.
        for profile in (expander_profile, cycle_profile):
            assert thm1_messages(profile) <= gilbert_messages(profile)

    def test_thm1_messages_above_lower_bound(self, expander_profile):
        assert thm1_messages(expander_profile) >= lower_bound_messages(expander_profile)

    def test_round_predictions_order(self, expander_profile):
        assert flooding_rounds(expander_profile) < thm1_rounds(expander_profile)

    def test_thm1_rounds_scale_with_mixing_time(self, expander_profile, cycle_profile):
        assert thm1_rounds(cycle_profile) > thm1_rounds(expander_profile)

    def test_flooding_messages_scale_with_edges(self):
        sparse = expansion_profile(cycle(16))
        dense = expansion_profile(complete(16))
        assert flooding_messages(dense) > flooding_messages(sparse)

    def test_gilbert_rounds_positive(self, expander_profile):
        assert gilbert_rounds(expander_profile) > 0


class TestRevocableBounds:
    def test_rounds_blow_up_polynomially(self):
        small = expansion_profile(complete(4))
        large = expansion_profile(complete(8))
        assert revocable_rounds(large) > 10 * revocable_rounds(small)

    def test_messages_are_rounds_times_edges(self):
        profile = expansion_profile(complete(6))
        assert revocable_messages(profile) == pytest.approx(
            revocable_rounds(profile) * profile.num_edges
        )

    def test_epsilon_increases_cost(self):
        profile = expansion_profile(complete(6))
        assert revocable_rounds(profile, epsilon=1.0) > revocable_rounds(
            profile, epsilon=0.5
        )


class TestPredictedRows:
    def test_one_row_per_algorithm_and_topology(self, expander_profile, cycle_profile):
        rows = predicted_rows(
            {"expander": expander_profile, "cycle": cycle_profile}
        )
        assert len(rows) == 2 * len(KNOWN_N_BOUNDS)
        algorithms = {row["algorithm"] for row in rows}
        assert algorithms == {bound.algorithm for bound in KNOWN_N_BOUNDS}

    def test_rows_contain_positive_predictions(self, expander_profile):
        rows = predicted_rows({"expander": expander_profile})
        for row in rows:
            assert row["predicted_messages"] > 0
            assert row["predicted_rounds"] > 0

    def test_bound_evaluate_keys(self, expander_profile):
        data = KNOWN_N_BOUNDS[0].evaluate(expander_profile)
        assert set(data) == {"algorithm", "predicted_messages", "predicted_rounds"}
