"""Unit tests for the trace recorder."""

from __future__ import annotations

from repro.core import NullTraceRecorder, TraceEvent, TraceRecorder


class TestTraceRecorder:
    def test_records_events(self):
        trace = TraceRecorder()
        trace.record(0, "send", node=1, port=2)
        trace.record(1, "halt", node=1)
        assert len(trace) == 2
        assert trace.events[0].kind == "send"
        assert trace.events[0].detail == {"port": 2}

    def test_filter_by_kind_and_node(self):
        trace = TraceRecorder()
        trace.record(0, "send", node=1)
        trace.record(0, "send", node=2)
        trace.record(1, "halt", node=1)
        assert len(trace.of_kind("send")) == 2
        assert len(trace.for_node(1)) == 2

    def test_disabled_recorder_is_noop(self):
        trace = TraceRecorder(enabled=False)
        trace.record(0, "send")
        assert len(trace) == 0

    def test_max_events_drops_overflow(self):
        trace = TraceRecorder(max_events=2)
        for i in range(5):
            trace.record(i, "tick")
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_clear(self):
        trace = TraceRecorder(max_events=1)
        trace.record(0, "a")
        trace.record(0, "b")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_iteration(self):
        trace = TraceRecorder()
        trace.record(0, "a")
        assert [event.kind for event in trace] == ["a"]

    def test_str_contains_round_and_kind(self):
        event = TraceEvent(round_index=3, kind="send", node=1, detail={"p": 1})
        text = str(event)
        assert "send" in text and "3" in text


class TestNullTraceRecorder:
    def test_never_records(self):
        trace = NullTraceRecorder()
        trace.record(0, "send", node=1)
        assert len(trace) == 0
        assert trace.events == []
