"""Unit tests for the trace recorder."""

from __future__ import annotations

import json

from repro.core import (
    NullTraceRecorder,
    TraceEvent,
    TraceRecorder,
    active_trace,
    trace_scope,
)
from repro.core.simulator import SynchronousSimulator


class TestTraceRecorder:
    def test_records_events(self):
        trace = TraceRecorder()
        trace.record(0, "send", node=1, port=2)
        trace.record(1, "halt", node=1)
        assert len(trace) == 2
        assert trace.events[0].kind == "send"
        assert trace.events[0].detail == {"port": 2}

    def test_filter_by_kind_and_node(self):
        trace = TraceRecorder()
        trace.record(0, "send", node=1)
        trace.record(0, "send", node=2)
        trace.record(1, "halt", node=1)
        assert len(trace.of_kind("send")) == 2
        assert len(trace.for_node(1)) == 2

    def test_disabled_recorder_is_noop(self):
        trace = TraceRecorder(enabled=False)
        trace.record(0, "send")
        assert len(trace) == 0

    def test_max_events_drops_overflow(self):
        trace = TraceRecorder(max_events=2)
        for i in range(5):
            trace.record(i, "tick")
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_clear(self):
        trace = TraceRecorder(max_events=1)
        trace.record(0, "a")
        trace.record(0, "b")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_iteration(self):
        trace = TraceRecorder()
        trace.record(0, "a")
        assert [event.kind for event in trace] == ["a"]

    def test_str_contains_round_and_kind(self):
        event = TraceEvent(round_index=3, kind="send", node=1, detail={"p": 1})
        text = str(event)
        assert "send" in text and "3" in text


class TestNullTraceRecorder:
    def test_never_records(self):
        trace = NullTraceRecorder()
        trace.record(0, "send", node=1)
        assert len(trace) == 0
        assert trace.events == []


class TestTraceExport:
    def test_summary_reports_kept_and_dropped(self):
        trace = TraceRecorder(max_events=2)
        for i in range(5):
            trace.record(i, "tick")
        assert trace.summary() == {"events": 2, "dropped": 3}

    def test_to_jsonl_round_trips_events(self, tmp_path):
        trace = TraceRecorder(max_events=2)
        trace.record(0, "send", node=1, port=2)
        trace.record(3, "halt", node=1)
        trace.record(4, "late", node=0)  # dropped by the cap
        path = trace.to_jsonl(tmp_path / "trace.jsonl")
        lines = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        # Header first: a consumer can tell a truncated trace apart
        # without re-running the simulation.
        assert lines[0] == {"kind": "trace", "events": 2, "dropped": 1}
        assert lines[1] == {
            "round": 0,
            "event": "send",
            "node": 1,
            "detail": {"port": 2},
        }
        assert lines[2]["event"] == "halt"
        assert len(lines) == 3

    def test_to_jsonl_stringifies_unencodable_details(self, tmp_path):
        trace = TraceRecorder()
        trace.record(0, "odd", node=0, payload=object())
        path = trace.to_jsonl(tmp_path / "trace.jsonl")
        lines = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert lines[1]["event"] == "odd"
        assert "object object" in lines[1]["detail"]["payload"]

    def test_to_jsonl_creates_parent_directories(self, tmp_path):
        trace = TraceRecorder()
        path = trace.to_jsonl(tmp_path / "deep" / "dir" / "trace.jsonl")
        assert path.exists()


class TestTraceScope:
    def test_scope_is_ambient_and_nested_innermost_wins(self):
        outer, inner = TraceRecorder(), TraceRecorder()
        assert active_trace() is None
        with trace_scope(outer):
            assert active_trace() is outer
            with trace_scope(inner):
                assert active_trace() is inner
            assert active_trace() is outer
        assert active_trace() is None

    def test_simulator_picks_up_ambient_recorder(self):
        from repro.core import build_nodes, PassiveNode
        from repro.graphs import cycle

        topology = cycle(4)
        recorder = TraceRecorder()
        with trace_scope(recorder):
            simulator = SynchronousSimulator(
                topology, build_nodes(topology, lambda i, p, r: PassiveNode(p, r), seed=0)
            )
        assert simulator.trace is recorder

    def test_explicit_trace_argument_wins_over_scope(self):
        from repro.core import build_nodes, PassiveNode
        from repro.graphs import cycle

        topology = cycle(4)
        ambient, explicit = TraceRecorder(), TraceRecorder()
        with trace_scope(ambient):
            simulator = SynchronousSimulator(
                topology,
                build_nodes(topology, lambda i, p, r: PassiveNode(p, r), seed=0),
                trace=explicit,
            )
        assert simulator.trace is explicit

    def test_outside_scope_simulator_defaults_to_null(self):
        from repro.core import build_nodes, PassiveNode
        from repro.graphs import cycle

        topology = cycle(4)
        simulator = SynchronousSimulator(
            topology, build_nodes(topology, lambda i, p, r: PassiveNode(p, r), seed=0)
        )
        assert isinstance(simulator.trace, NullTraceRecorder)
