"""Equivalence and determinism tests for the parallel experiment engine.

The contract under test (see :mod:`repro.parallel`):

* parallel results are identical to serial results, cell by cell, for any
  worker count and multiprocessing start method — only wall-clock readings
  may differ;
* per-cell seed derivation is a pure function, stable across processes and
  start methods (``fork`` and ``spawn``);
* a checkpointed sweep can be interrupted and resumed without changing the
  aggregates, and runs already in the checkpoint are not re-executed.

CI runs this module under several worker counts via the
``REPRO_TEST_WORKERS`` environment variable.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.analysis import ExperimentSpec, run_experiment
from repro.analysis.runners import flooding_runner, uniform_id_runner
from repro.core.errors import ConfigurationError
from repro.graphs import cycle, grid_2d, random_regular, star
from repro.parallel import (
    CheckpointStore,
    JsonlCheckpointStore,
    TaskExecutionError,
    compact_record,
    derive_cell_seed,
    expand_run_tasks,
    result_from_record,
    result_to_record,
    run_experiments,
    run_parallel_experiment,
    shard_round_robin,
    task_key,
    topology_fingerprint,
)

SEEDS = (0, 1, 2)

#: Worker counts exercised by the equivalence tests; CI adds its matrix
#: entry on top so two counts are always covered there.
WORKER_COUNTS = sorted({1, 2, 4} | {int(os.environ.get("REPRO_TEST_WORKERS", 2))})


def _spec(name: str = "flooding", collect_profile: bool = False) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        runner=flooding_runner,
        topologies=[cycle(8), star(8), grid_2d(3, 3)],
        seeds=SEEDS,
        collect_profile=collect_profile,
    )


def _comparable(cells):
    """Cell dicts with the timing reading (legitimately nondeterministic)
    removed; everything else must match exactly."""
    rows = []
    for cell in cells:
        row = cell.as_dict()
        row.pop("mean_wall_clock_seconds")
        rows.append(row)
    return rows


def _stored_runs(path):
    """Read a checkpoint's run records regardless of on-disk format."""
    return JsonlCheckpointStore(path).load()


def count_file_runner(topology, seed):
    """A picklable runner that logs every invocation to a file.

    The log path travels through the environment so fork children (and the
    in-process backend) append to the same file, letting tests count how
    many runs were actually executed vs. restored from a checkpoint.
    """
    with open(os.environ["REPRO_TEST_COUNT_FILE"], "a", encoding="utf-8") as handle:
        handle.write(f"{topology.name} {seed}\n")
    return flooding_runner(topology, seed)


def _derive_in_child(args):
    spec_name, topology_name, replicate = args
    return derive_cell_seed(1234, spec_name, topology_name, replicate)


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_cells_identical_across_worker_counts(self, workers):
        spec = _spec()
        serial = run_experiment(spec)
        parallel = run_experiment(spec, workers=workers)
        assert _comparable(parallel.cells) == _comparable(serial.cells)

    def test_cells_identical_under_spawn(self):
        spec = _spec()
        serial = run_experiment(spec)
        parallel = run_experiment(spec, workers=2, start_method="spawn")
        assert _comparable(parallel.cells) == _comparable(serial.cells)

    def test_profiles_match_serial(self):
        spec = _spec(collect_profile=True)
        serial = run_experiment(spec)
        parallel = run_experiment(spec, workers=2)
        for a, b in zip(serial.cells, parallel.cells):
            assert a.profile == b.profile
            assert a.profile is not None

    def test_keep_results_returns_individual_runs(self):
        spec = _spec()
        parallel = run_experiment(spec, workers=2, keep_results=True)
        assert all(len(cell.results) == len(SEEDS) for cell in parallel.cells)
        serial = run_experiment(spec, keep_results=True)
        for a, b in zip(serial.cells, parallel.cells):
            assert [r.as_dict() for r in a.results] == [r.as_dict() for r in b.results]

    def test_multi_spec_pool_matches_independent_runs(self):
        specs = [
            _spec("flooding"),
            ExperimentSpec(
                name="uniform",
                runner=uniform_id_runner,
                topologies=[cycle(8), star(8)],
                seeds=SEEDS,
                collect_profile=False,
            ),
        ]
        pooled = run_experiments(specs, workers=2)
        for spec, pooled_result in zip(specs, pooled):
            assert pooled_result.name == spec.name
            solo = run_experiment(spec)
            assert _comparable(pooled_result.cells) == _comparable(solo.cells)

    def test_duplicate_spec_names_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiments([_spec(), _spec()], workers=2)

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_parallel_experiment(_spec(), workers=0)


class TestSeedDerivation:
    def test_pure_function_of_arguments(self):
        a = derive_cell_seed(7, "spec", "cycle(n=8)", 0)
        b = derive_cell_seed(7, "spec", "cycle(n=8)", 0)
        assert a == b
        assert derive_cell_seed(7, "spec", "cycle(n=8)", 1) != a
        assert derive_cell_seed(7, "spec", "star(n=8)", 0) != a
        assert derive_cell_seed(8, "spec", "cycle(n=8)", 0) != a

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_stable_across_start_methods(self, start_method):
        grid = [("spec-a", "cycle(n=8)", i) for i in range(4)] + [
            ("spec-b", "star(n=8)", i) for i in range(4)
        ]
        expected = [_derive_in_child(args) for args in grid]
        context = multiprocessing.get_context(start_method)
        with context.Pool(processes=2) as pool:
            derived = pool.map(_derive_in_child, grid)
        assert derived == expected

    def test_expand_run_tasks_with_derived_seeds(self):
        spec = _spec()
        tasks = expand_run_tasks(spec, derive_seeds=True, base_seed=99)
        assert len(tasks) == len(spec.topologies) * len(SEEDS)
        for task in tasks:
            assert task.seed == derive_cell_seed(
                99,
                spec.name,
                task.topology.name,
                task.seed_index,
                fingerprint=task.fingerprint,
            )
        # Expansion is deterministic: same spec, same tasks.
        again = expand_run_tasks(spec, derive_seeds=True, base_seed=99)
        assert [t.key for t in again] == [t.key for t in tasks]

    def test_derived_seeds_differ_for_same_named_topologies(self):
        spec = ExperimentSpec(
            name="dup-derived",
            runner=flooding_runner,
            topologies=[
                random_regular(16, 4, seed=1),
                random_regular(16, 4, seed=2),
            ],
            seeds=(0,),
            collect_profile=False,
        )
        tasks = expand_run_tasks(spec, derive_seeds=True, base_seed=5)
        assert tasks[0].seed != tasks[1].seed

    def test_expand_run_tasks_grid_order(self):
        spec = _spec()
        tasks = expand_run_tasks(spec)
        expected = [
            (t_index, s_index)
            for t_index in range(len(spec.topologies))
            for s_index in range(len(SEEDS))
        ]
        assert [(t.topology_index, t.seed_index) for t in tasks] == expected
        assert [t.seed for t in tasks[: len(SEEDS)]] == list(SEEDS)


class TestSharding:
    def test_round_robin_covers_everything_deterministically(self):
        items = list(range(10))
        shards = shard_round_robin(items, 3)
        assert sorted(x for shard in shards for x in shard) == items
        assert shards == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_round_robin([1, 2], 0)

    def test_task_key_is_stable_and_unique_per_grid_point(self):
        spec = _spec()
        tasks = expand_run_tasks(spec)
        keys = [task.key for task in tasks]
        assert len(set(keys)) == len(keys)
        assert keys[0] == task_key(
            spec.name,
            0,
            spec.topologies[0].name,
            topology_fingerprint(spec.topologies[0]),
            0,
            SEEDS[0],
        )

    def test_fingerprint_distinguishes_same_named_topologies(self):
        a = random_regular(16, 4, seed=1)
        b = random_regular(16, 4, seed=2)
        assert a.name == b.name
        assert topology_fingerprint(a) != topology_fingerprint(b)
        assert topology_fingerprint(a) == topology_fingerprint(
            random_regular(16, 4, seed=1)
        )

    def test_same_named_topologies_keep_distinct_cells(self):
        # Two distinct graph instances can share a display name (same
        # family/size, different graph seed); the grid index in the task
        # key must keep their runs apart.
        spec = ExperimentSpec(
            name="dup-names",
            runner=flooding_runner,
            topologies=[
                random_regular(16, 4, seed=1),
                random_regular(16, 4, seed=2),
            ],
            seeds=(0, 1),
            collect_profile=False,
        )
        assert spec.topologies[0].name == spec.topologies[1].name
        serial = run_experiment(spec)
        parallel = run_experiment(spec, workers=2)
        assert _comparable(parallel.cells) == _comparable(serial.cells)


class TestCheckpointing:
    def test_record_round_trip(self):
        result = flooding_runner(cycle(8), 3)
        record = result_to_record(result, 0.125)
        # The record must survive a JSON round trip unchanged.
        record = json.loads(json.dumps(record))
        restored, elapsed = result_from_record(record)
        assert elapsed == 0.125
        assert restored.as_dict() == result.as_dict()
        assert restored.metrics.as_dict() == result.metrics.as_dict()

    def test_checkpointed_sweep_matches_uncheckpointed(self, tmp_path):
        spec = _spec()
        plain = run_experiment(spec)
        checkpointed = run_experiment(
            spec, workers=2, checkpoint=tmp_path / "sweep.json"
        )
        assert _comparable(checkpointed.cells) == _comparable(plain.cells)
        runs = _stored_runs(tmp_path / "sweep.json")
        assert len(runs) == len(spec.topologies) * len(SEEDS)

    def test_resume_runs_only_missing_tasks(self, tmp_path, monkeypatch):
        count_file = tmp_path / "invocations.log"
        monkeypatch.setenv("REPRO_TEST_COUNT_FILE", str(count_file))
        checkpoint = tmp_path / "sweep.json"

        def spec_with_seeds(seeds):
            return ExperimentSpec(
                name="counted",
                runner=count_file_runner,
                topologies=[cycle(8), star(8)],
                seeds=seeds,
                collect_profile=False,
            )

        # First (interrupted) sweep covers a prefix of the seed grid.
        run_experiment(spec_with_seeds((0, 1)), workers=1, checkpoint=checkpoint)
        assert len(count_file.read_text().splitlines()) == 4

        # The resumed sweep adds seed 2: only the 2 missing runs execute.
        resumed = run_experiment(
            spec_with_seeds((0, 1, 2)), workers=1, checkpoint=checkpoint
        )
        assert len(count_file.read_text().splitlines()) == 6
        assert all(cell.runs == 3 for cell in resumed.cells)

        # A third pass is a pure replay: no new executions, same cells.
        replayed = run_experiment(
            spec_with_seeds((0, 1, 2)), workers=1, checkpoint=checkpoint
        )
        assert len(count_file.read_text().splitlines()) == 6
        assert [c.as_dict() for c in replayed.cells] == [
            c.as_dict() for c in resumed.cells
        ]

    def test_checkpoint_not_replayed_for_regenerated_topologies(self, tmp_path):
        # Same spec name, same topology names, but the graphs themselves
        # were rebuilt from a different seed: the checkpoint must not
        # replay results measured on the old graphs.
        checkpoint = tmp_path / "sweep.json"

        def spec_for(graph_seed):
            return ExperimentSpec(
                name="regen",
                runner=flooding_runner,
                topologies=[random_regular(16, 4, seed=graph_seed)],
                seeds=(0, 1),
                collect_profile=False,
            )

        first = run_experiment(spec_for(1), workers=1, checkpoint=checkpoint)
        fresh = run_experiment(spec_for(2), workers=1, checkpoint=checkpoint)
        direct = run_experiment(spec_for(2))
        assert _comparable(fresh.cells) == _comparable(direct.cells)
        assert first.cells[0].mean_messages != fresh.cells[0].mean_messages

    def test_unrelated_checkpoint_entries_are_ignored(self, tmp_path):
        checkpoint = tmp_path / "sweep.json"
        spec = _spec()
        run_experiment(spec, workers=1, checkpoint=checkpoint)
        other = ExperimentSpec(
            name="other-spec",
            runner=flooding_runner,
            topologies=[cycle(8)],
            seeds=(0,),
            collect_profile=False,
        )
        result = run_experiment(other, workers=1, checkpoint=checkpoint)
        assert result.cells[0].runs == 1
        runs = _stored_runs(checkpoint)
        assert len(runs) == len(spec.topologies) * len(SEEDS) + 1

    def test_wrong_format_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999, "runs": {}}))
        # ConfigurationError, so the CLI reports it as a clean `error:` line.
        with pytest.raises(ConfigurationError):
            CheckpointStore(path).load()

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text('{"version": 1, "runs": {tru')
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            CheckpointStore(path).load()

    def test_atomic_flush_leaves_no_temp_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "deep" / "ck.json")
        result = flooding_runner(cycle(8), 0)
        store.add("k", result_to_record(result, 0.1))
        assert (tmp_path / "deep" / "ck.json").exists()
        assert not (tmp_path / "deep" / "ck.json.tmp").exists()


class TestCheckpointCompaction:
    def test_compact_record_round_trips_aggregates(self):
        result = flooding_runner(cycle(8), 3)
        record = compact_record(result_to_record(result, 0.25))
        record = json.loads(json.dumps(record))  # must survive JSON
        restored, elapsed = result_from_record(record)
        assert elapsed == 0.25
        # Everything the aggregation layer reads is identical; only the
        # per-node diagnostic payload is gone.
        assert restored.node_results == []
        assert restored.outcome.as_dict() == result.outcome.as_dict()
        assert restored.metrics.as_dict() == result.metrics.as_dict()
        full = result.as_dict()
        slim = restored.as_dict()
        assert slim == full  # as_dict never includes node_results

    def test_compacted_sweep_matches_uncompacted(self, tmp_path):
        spec = _spec()
        plain = run_experiment(spec)
        compacted = run_experiment(
            spec,
            workers=2,
            checkpoint=tmp_path / "sweep.json",
            checkpoint_compact=True,
        )
        assert _comparable(compacted.cells) == _comparable(plain.cells)
        runs = _stored_runs(tmp_path / "sweep.json")
        assert all(
            "node_results" not in record for record in runs.values()
        )
        # A resume from the compacted checkpoint replays the same cells.
        resumed = run_experiment(
            spec, checkpoint=tmp_path / "sweep.json", checkpoint_compact=True
        )
        assert _comparable(resumed.cells) == _comparable(plain.cells)

    def test_compaction_shrinks_resume_files(self, tmp_path):
        spec = _spec()
        run_experiment(spec, checkpoint=tmp_path / "full.json")
        run_experiment(
            spec, checkpoint=tmp_path / "slim.json", checkpoint_compact=True
        )
        full = (tmp_path / "full.json").stat().st_size
        slim = (tmp_path / "slim.json").stat().st_size
        assert slim < full / 2

    def test_in_place_compaction_of_existing_checkpoint(self, tmp_path):
        spec = _spec()
        plain = run_experiment(spec, checkpoint=tmp_path / "ck.json")
        store = JsonlCheckpointStore(tmp_path / "ck.json")
        compacted = store.compact()
        store.flush()
        assert compacted == len(spec.topologies) * len(SEEDS)
        assert store.compact() == 0  # idempotent
        resumed = run_experiment(spec, checkpoint=tmp_path / "ck.json")
        assert _comparable(resumed.cells) == _comparable(plain.cells)

    def test_compact_store_compacts_loaded_full_records(self, tmp_path):
        spec = _spec()
        run_experiment(spec, checkpoint=tmp_path / "ck.json")
        resumed = run_experiment(
            spec, checkpoint=tmp_path / "ck.json", checkpoint_compact=True
        )
        assert _comparable(resumed.cells) == _comparable(run_experiment(spec).cells)


def failing_runner(topology, seed):
    """A picklable runner that dies on one specific grid point."""
    if topology.name.startswith("star") and seed == 1:
        raise ValueError("boom at the appointed run")
    return flooding_runner(topology, seed)


class TestWorkerErrorContext:
    def _failing_spec(self):
        return ExperimentSpec(
            name="fragile",
            runner=failing_runner,
            topologies=[cycle(8), star(8)],
            seeds=SEEDS,
            collect_profile=False,
        )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failures_carry_grid_coordinates(self, workers):
        # The in-process (workers=1) and pool backends funnel through the
        # same task entry point, so both report grid coordinates.
        with pytest.raises(TaskExecutionError) as excinfo:
            run_parallel_experiment(self._failing_spec(), workers=workers)
        message = str(excinfo.value)
        assert "'fragile'" in message
        assert "star" in message
        assert "seed 1" in message
        assert "ValueError" in message
        assert "boom at the appointed run" in message

    def test_parallel_failure_names_adversary(self):
        from repro.dynamics import AdversarySpec

        spec = ExperimentSpec(
            name="fragile-adv",
            runner=failing_runner,
            topologies=[star(8)],
            seeds=(1,),
            collect_profile=False,
            adversary=AdversarySpec.create("loss", p=0.0),
        )
        with pytest.raises(TaskExecutionError, match=r"loss\(p=0\.0\)"):
            run_experiment(spec, workers=2, checkpoint=None)

    def test_completed_runs_checkpointed_before_failure(self, tmp_path):
        checkpoint = tmp_path / "ck.json"
        with pytest.raises(TaskExecutionError):
            run_experiment(self._failing_spec(), workers=1, checkpoint=checkpoint)
        # The serial backend completed everything scheduled before the
        # failing run; the checkpoint holds those, so a fixed rerun resumes.
        assert len(_stored_runs(checkpoint)) >= 1


class TestProtocolGridParallel:
    """Parameterised protocol sweeps through the parallel engine.

    The protocol axis must behave exactly like the topology/seed/adversary
    axes: identical cells on every backend, protocol-qualified checkpoint
    task keys, and resume without re-execution.
    """

    def _grid_specs(self):
        from repro.workloads import sweep_specs

        return sweep_specs(
            ["flooding:c=2", "flooding:c=3"],
            [cycle(8), star(8)],
            seeds=SEEDS,
            collect_profile=False,
        )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_parallel_grid_matches_serial(self, workers):
        specs = self._grid_specs()
        serial = [run_experiment(spec) for spec in specs]
        parallel = run_experiments(specs, workers=workers)
        for serial_result, parallel_result in zip(serial, parallel):
            assert _comparable(parallel_result.cells) == _comparable(
                serial_result.cells
            )
        # The two variants really are different experiments.
        assert _comparable(parallel[0].cells) != _comparable(parallel[1].cells)

    def test_grid_matches_under_spawn(self):
        specs = self._grid_specs()
        serial = [run_experiment(spec) for spec in specs]
        parallel = run_experiments(specs, workers=2, start_method="spawn")
        for serial_result, parallel_result in zip(serial, parallel):
            assert _comparable(parallel_result.cells) == _comparable(
                serial_result.cells
            )

    def test_checkpoint_keys_carry_protocol_tokens(self, tmp_path):
        checkpoint = tmp_path / "grid.json"
        specs = self._grid_specs()
        run_experiments(specs, workers=1, checkpoint=checkpoint)
        keys = list(_stored_runs(checkpoint))
        assert len(keys) == 2 * 2 * len(SEEDS)
        assert all(
            key.endswith("|flooding:c=2.0") or key.endswith("|flooding:c=3.0")
            for key in keys
        )

    def test_resumed_grid_replays_without_rerunning(self, tmp_path):
        checkpoint = tmp_path / "grid.json"
        specs = self._grid_specs()
        first = run_experiments(specs, workers=1, checkpoint=checkpoint)
        stored = checkpoint.read_text()
        resumed = run_experiments(specs, workers=1, checkpoint=checkpoint)
        # Nothing re-executed: the checkpoint is byte-identical (re-run
        # records would at least carry fresh wall-clock readings).
        assert checkpoint.read_text() == stored
        for first_result, resumed_result in zip(first, resumed):
            assert _comparable(resumed_result.cells) == _comparable(
                first_result.cells
            )

    def test_resume_does_not_replay_other_variant(self, tmp_path):
        from repro.workloads import sweep_specs

        checkpoint = tmp_path / "grid.json"
        base = sweep_specs(
            ["flooding:c=2"], [cycle(8)], seeds=(0,), collect_profile=False
        )
        run_experiments(base, workers=1, checkpoint=checkpoint)
        # Same spec name is impossible (names embed the token), but force
        # the hazard anyway: a same-named spec under different constants
        # must re-run, not replay the stored c=2 measurements.
        retuned = [
            ExperimentSpec(
                name=base[0].name,
                protocol="flooding:c=3",
                topologies=[cycle(8)],
                seeds=(0,),
                collect_profile=False,
            )
        ]
        result = run_experiments(retuned, workers=1, checkpoint=checkpoint)[0]
        fresh = run_experiment(retuned[0])
        assert _comparable(result.cells) == _comparable(fresh.cells)
