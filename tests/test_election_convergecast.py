"""Unit tests for the convergecast phase (Algorithm 5, second part)."""

from __future__ import annotations

import random
from typing import Dict

import pytest

from repro.core import ConfigurationError, run_protocol
from repro.election import (
    ConvergecastConfig,
    ConvergecastMessage,
    ConvergecastNode,
    ConvergecastState,
)
from repro.graphs import Topology, path, star


def run_convergecast(
    topology: Topology,
    *,
    parents: Dict[int, int],
    walk_ids: Dict[int, int],
    candidates: Dict[int, bool],
    rounds: int,
    seed: int = 0,
):
    """Run a standalone convergecast over a precomputed tree.

    ``parents`` maps node index -> parent node index (tree edges).
    """
    config = ConvergecastConfig(convergecast_rounds=rounds)

    def factory(index: int, num_ports: int, rng: random.Random):
        parent_ports = []
        if index in parents:
            parent_ports = [topology.port_to(index, parents[index])]
        return ConvergecastNode(
            num_ports,
            rng,
            config=config,
            candidate=candidates.get(index, False),
            max_walk_id=walk_ids.get(index, 0),
            parent_ports=parent_ports,
        )

    return run_protocol(topology, factory, max_rounds=rounds + 1, seed=seed)


class TestConfig:
    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ConfigurationError):
            ConvergecastConfig(convergecast_rounds=0)


class TestState:
    def test_absorb_keeps_maximum(self):
        state = ConvergecastState(
            config=ConvergecastConfig(convergecast_rounds=3),
            candidate=False,
            max_walk_id=5,
            parent_ports=[1],
        )
        state.absorb({2: ConvergecastMessage(walk_id=9)})
        assert state.max_walk_id == 9
        state.absorb({2: ConvergecastMessage(walk_id=4)})
        assert state.max_walk_id == 9

    def test_candidate_never_transmits(self):
        state = ConvergecastState(
            config=ConvergecastConfig(convergecast_rounds=3),
            candidate=True,
            max_walk_id=5,
            parent_ports=[1],
        )
        assert state.step({}) == {}

    def test_non_candidate_reports_to_every_parent_port_once(self):
        state = ConvergecastState(
            config=ConvergecastConfig(convergecast_rounds=5),
            candidate=False,
            max_walk_id=5,
            parent_ports=[1, 3],
        )
        outbox = state.step({})
        assert set(outbox) == {1, 3}
        # Unchanged value: no re-send in the next round.
        assert state.step({}) == {}

    def test_improvement_triggers_resend(self):
        state = ConvergecastState(
            config=ConvergecastConfig(convergecast_rounds=5),
            candidate=False,
            max_walk_id=5,
            parent_ports=[1],
        )
        state.step({})
        outbox = state.step({2: ConvergecastMessage(walk_id=50)})
        assert outbox[1].walk_id == 50

    def test_zero_max_is_not_reported(self):
        state = ConvergecastState(
            config=ConvergecastConfig(convergecast_rounds=5),
            candidate=False,
            max_walk_id=0,
            parent_ports=[1],
        )
        assert state.step({}) == {}


class TestConvergecastEndToEnd:
    def test_max_reaches_root_on_path(self):
        # Path 0-1-2-3-4 rooted at 0; the largest walk ID sits at the far end.
        topology = path(5)
        result = run_convergecast(
            topology,
            parents={1: 0, 2: 1, 3: 2, 4: 3},
            walk_ids={0: 1, 1: 2, 2: 3, 3: 4, 4: 100},
            candidates={0: True},
            rounds=8,
        )
        root = result.results()[0]
        assert root["max_walk_id"] == 100

    def test_insufficient_rounds_do_not_reach_root(self):
        topology = path(6)
        result = run_convergecast(
            topology,
            parents={i: i - 1 for i in range(1, 6)},
            walk_ids={5: 100},
            candidates={0: True},
            rounds=2,
        )
        assert result.results()[0]["max_walk_id"] < 100

    def test_star_aggregates_leaf_maxima(self):
        topology = star(6)
        result = run_convergecast(
            topology,
            parents={i: 0 for i in range(1, 6)},
            walk_ids={i: 10 * i for i in range(6)},
            candidates={0: True},
            rounds=3,
        )
        assert result.results()[0]["max_walk_id"] == 50

    def test_messages_bounded_by_improvements(self):
        topology = path(6)
        result = run_convergecast(
            topology,
            parents={i: i - 1 for i in range(1, 6)},
            walk_ids={5: 100, 4: 90, 3: 80, 2: 70, 1: 60},
            candidates={0: True},
            rounds=12,
        )
        # Each link carries at most a handful of improvement reports, far
        # fewer than one message per round per link.
        assert result.metrics.messages <= 2 * 5 * 3

    def test_halts_after_rounds(self):
        topology = path(4)
        result = run_convergecast(
            topology,
            parents={1: 0, 2: 1, 3: 2},
            walk_ids={3: 7},
            candidates={0: True},
            rounds=5,
        )
        assert result.all_halted
