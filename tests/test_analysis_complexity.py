"""Unit tests for the complexity-fitting helpers."""

from __future__ import annotations

import math

import pytest

from repro.core import ConfigurationError
from repro.analysis import (
    crossover_point,
    fit_power_law,
    geometric_mean,
    ratio_spread,
    theory_ratio_series,
)


class TestPowerLawFit:
    def test_recovers_exact_exponent(self):
        sizes = [16, 32, 64, 128, 256]
        costs = [3.0 * n ** 1.5 for n in sizes]
        fit = fit_power_law(sizes, costs)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([10, 100], [10, 1000])
        assert fit.predict(1000) == pytest.approx(100000, rel=1e-6)

    def test_noisy_data_gives_reasonable_r_squared(self):
        sizes = [2 ** i for i in range(4, 10)]
        costs = [n ** 2 * (1.1 if i % 2 else 0.9) for i, n in enumerate(sizes)]
        fit = fit_power_law(sizes, costs)
        assert fit.exponent == pytest.approx(2.0, abs=0.1)
        assert fit.r_squared > 0.95

    def test_constant_series_fits_zero_exponent(self):
        fit = fit_power_law([1, 2, 4, 8], [5, 5, 5, 5])
        assert fit.exponent == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ConfigurationError):
            fit_power_law([1], [1])
        with pytest.raises(ConfigurationError):
            fit_power_law([1, -2], [1, 2])
        with pytest.raises(ConfigurationError):
            fit_power_law([1, 2], [0, 2])

    def test_as_dict(self):
        fit = fit_power_law([1, 2, 4], [1, 2, 4])
        assert set(fit.as_dict()) == {"exponent", "coefficient", "r_squared", "num_points"}


class TestRatios:
    def test_theory_ratio_constant_for_matching_prediction(self):
        sizes = [16, 64, 256]
        costs = [2.0 * math.sqrt(n) for n in sizes]
        ratios = theory_ratio_series(sizes, costs, lambda n: math.sqrt(n))
        assert all(ratio == pytest.approx(2.0) for _, ratio in ratios)
        assert ratio_spread(ratios) == pytest.approx(1.0)

    def test_ratio_spread_detects_divergence(self):
        ratios = [(16, 1.0), (64, 2.0), (256, 8.0)]
        assert ratio_spread(ratios) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theory_ratio_series([1], [1, 2], lambda n: n)
        with pytest.raises(ConfigurationError):
            theory_ratio_series([1], [1], lambda n: 0.0)
        with pytest.raises(ConfigurationError):
            ratio_spread([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)
        with pytest.raises(ConfigurationError):
            geometric_mean([])
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])


class TestCrossover:
    def test_slower_growing_series_wins_eventually(self):
        sizes = [16, 32, 64, 128]
        sqrt_costs = [100 * math.sqrt(n) for n in sizes]
        linear_costs = [10 * n for n in sizes]
        crossing = crossover_point(sizes, sqrt_costs, linear_costs)
        assert crossing == pytest.approx(100.0, rel=1e-6)

    def test_always_better_returns_zero(self):
        sizes = [16, 32, 64]
        cheap = [n for n in sizes]
        expensive = [10 * n for n in sizes]
        assert crossover_point(sizes, cheap, expensive) == 0.0

    def test_never_better_returns_infinity(self):
        sizes = [16, 32, 64]
        cheap = [n for n in sizes]
        expensive = [10 * n for n in sizes]
        assert math.isinf(crossover_point(sizes, expensive, cheap))
