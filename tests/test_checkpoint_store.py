"""Append-only JSONL checkpoint store tests.

Pins the on-disk contract of :class:`repro.parallel.store.JsonlCheckpointStore`:
one header line plus one line per completed run, flushes that append
rather than rewrite, transparent reads of legacy whole-file JSON
checkpoints (migrated to JSONL on the first real flush, with nothing
re-executed), tolerance of a torn trailing line from a writer killed
mid-append, compaction once dead lines outnumber live records, and the
staged partial/publish discipline the work-stealing shard path uses.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis import ExperimentSpec, run_experiment
from repro.analysis.runners import flooding_runner
from repro.core.errors import ConfigurationError
from repro.graphs import cycle, star
from repro.parallel import (
    CheckpointStore,
    JsonlCheckpointStore,
    result_to_record,
    run_experiments,
)

SEEDS = (0, 1, 2)


def _spec(seeds=SEEDS, runner=flooding_runner, name="flooding"):
    return ExperimentSpec(
        name=name,
        runner=runner,
        topologies=[cycle(8), star(8)],
        seeds=seeds,
        collect_profile=False,
    )


def _comparable(cells):
    rows = []
    for cell in cells:
        row = cell.as_dict()
        row.pop("mean_wall_clock_seconds")
        rows.append(row)
    return rows


def _records(count):
    out = {}
    for seed in range(count):
        result = flooding_runner(cycle(8), seed)
        out[f"key-{seed}"] = result_to_record(result, 0.1 * (seed + 1))
    return out


def _counted_runner(topology, seed):
    with open(os.environ["REPRO_STORE_COUNT_FILE"], "a", encoding="utf-8") as f:
        f.write(f"{topology.name} {seed}\n")
    return flooding_runner(topology, seed)


class TestJsonlFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        records = _records(3)
        for key, record in records.items():
            store.add(key, record)
        store.flush()
        reloaded = JsonlCheckpointStore(path).load()
        assert reloaded == records
        # The records survive a JSON round-trip untouched (same contract
        # as the legacy store).
        assert json.loads(json.dumps(reloaded)) == reloaded

    def test_header_line_identifies_format(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        store.add("k", _records(1)["key-0"])
        store.flush()
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"format": "jsonl", "kind": "checkpoint", "version": 1}

    def test_flushes_append_instead_of_rewriting(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        records = _records(4)
        keys = list(records)
        store.add(keys[0], records[keys[0]])
        store.add(keys[1], records[keys[1]])
        store.flush()
        first = path.read_bytes()
        store.add(keys[2], records[keys[2]])
        store.add(keys[3], records[keys[3]])
        store.flush()
        second = path.read_bytes()
        # Append-only: the earlier flush is a byte prefix of the later one.
        assert second.startswith(first)
        assert len(second.splitlines()) == 1 + 4
        assert JsonlCheckpointStore(path).load() == records

    def test_identical_re_add_writes_nothing(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        record = _records(1)["key-0"]
        store.add("k", record)
        store.flush()
        before = path.read_bytes()
        again = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        again.add("k", dict(record))
        again.flush()
        assert path.read_bytes() == before

    def test_unreadable_future_version_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(
            json.dumps({"format": "jsonl", "kind": "checkpoint", "version": 99})
            + "\n"
        )
        with pytest.raises(ConfigurationError, match="version"):
            JsonlCheckpointStore(path).load()


class TestLegacyTransparency:
    def test_reads_legacy_whole_file_json(self, tmp_path):
        path = tmp_path / "ck.json"
        legacy = CheckpointStore(path, flush_interval_seconds=0.0)
        records = _records(3)
        for key, record in records.items():
            legacy.add(key, record)
        legacy.flush()
        assert json.loads(path.read_text())["runs"] == records
        assert JsonlCheckpointStore(path).load() == records

    def test_migrates_to_jsonl_on_first_flush(self, tmp_path):
        path = tmp_path / "ck.json"
        legacy = CheckpointStore(path, flush_interval_seconds=0.0)
        records = _records(2)
        for key, record in records.items():
            legacy.add(key, record)
        legacy.flush()
        store = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        extra = _records(3)["key-2"]
        store.add("key-2", extra)
        store.flush()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == "jsonl"
        assert JsonlCheckpointStore(path).load() == {**records, "key-2": extra}

    def test_legacy_resume_executes_only_missing_runs(
        self, tmp_path, monkeypatch
    ):
        """The satellite pin: a legacy-JSON checkpoint resumes through the
        JSONL default with zero re-execution, and the results are
        bit-identical to an uncheckpointed serial sweep."""
        count_file = tmp_path / "runs.log"
        monkeypatch.setenv("REPRO_STORE_COUNT_FILE", str(count_file))
        checkpoint = tmp_path / "ck.json"
        serial = run_experiment(_spec(name="counted", runner=_counted_runner))
        count_file.write_text("")

        # Interrupted sweep under the legacy format: 2 of 3 seeds done.
        run_experiments(
            [_spec(seeds=(0, 1), name="counted", runner=_counted_runner)],
            checkpoint=checkpoint,
            checkpoint_format="json",
        )
        assert len(count_file.read_text().splitlines()) == 4
        assert "runs" in json.loads(checkpoint.read_text())

        # Resume with the JSONL default: only the 2 missing runs execute,
        # the file migrates, and the cells match the serial sweep exactly.
        resumed = run_experiment(
            _spec(name="counted", runner=_counted_runner),
            workers=2,
            checkpoint=checkpoint,
        )
        assert len(count_file.read_text().splitlines()) == 6
        assert _comparable(resumed.cells) == _comparable(serial.cells)
        header = json.loads(checkpoint.read_text().splitlines()[0])
        assert header["format"] == "jsonl"

        # A further pass is a pure replay: nothing executes, and the
        # checkpoint is byte-identical afterwards.
        before = checkpoint.read_bytes()
        replayed = run_experiment(
            _spec(name="counted", runner=_counted_runner),
            checkpoint=checkpoint,
        )
        assert len(count_file.read_text().splitlines()) == 6
        assert _comparable(replayed.cells) == _comparable(serial.cells)
        assert checkpoint.read_bytes() == before


class TestCorruptionTolerance:
    def test_torn_trailing_line_is_dropped_and_repaired(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        records = _records(3)
        for key, record in records.items():
            store.add(key, record)
        store.flush()
        # A writer died mid-append: the last line is torn.
        torn = path.read_text()[: -20]
        path.write_text(torn)
        reloaded = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        runs = reloaded.load()
        assert set(runs) == set(list(records)[:2])
        # The repair lands on the next flush: a rewrite with only intact
        # lines (plus whatever was re-added).
        reloaded.add("key-2", records["key-2"])
        reloaded.flush()
        assert JsonlCheckpointStore(path).load() == records
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_corrupt_interior_line_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        for key, record in _records(2).items():
            store.add(key, record)
        store.flush()
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-5]  # corrupt a non-trailing record line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            JsonlCheckpointStore(path).load()

    def test_non_checkpoint_json_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"not": "a checkpoint"}))
        with pytest.raises(ConfigurationError, match="runs"):
            JsonlCheckpointStore(path).load()


class TestCompaction:
    def test_superseded_lines_trigger_rewrite(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        record = _records(1)["key-0"]
        store.add("k", record)
        store.flush()
        # Re-add the same key with changing payloads: every version but
        # the last is a dead line.
        for i in range(70):
            changed = dict(record)
            changed["elapsed_seconds"] = float(i)
            store.add("k", changed)
        store.flush()
        # Once dead lines outnumber max(64, live records) a flush rewrites:
        # the file stays bounded instead of holding all 71 versions.
        lines = path.read_text().splitlines()
        assert len(lines) < 20
        assert JsonlCheckpointStore(path).load()["k"]["elapsed_seconds"] == 69.0

    def test_explicit_compact_strips_node_results(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        for key, record in _records(2).items():
            store.add(key, record)
        store.flush()
        store = JsonlCheckpointStore(path, flush_interval_seconds=0.0)
        assert store.compact() == 2
        store.flush()
        runs = JsonlCheckpointStore(path).load()
        assert all("node_results" not in record for record in runs.values())
        # Fully-compacted stores are byte-deterministic: header + records
        # sorted by key.
        keys = [json.loads(line)["key"] for line in path.read_text().splitlines()[1:]]
        assert keys == sorted(keys)

    def test_flush_interval_validation(self, tmp_path):
        for store_cls in (CheckpointStore, JsonlCheckpointStore):
            for bad in (-1.0, float("nan")):
                with pytest.raises(
                    ConfigurationError, match="flush_interval_seconds"
                ):
                    store_cls(tmp_path / "ck.json", flush_interval_seconds=bad)
            # Zero (flush on every add) stays legal.
            store_cls(tmp_path / f"ok-{store_cls.__name__}.json",
                      flush_interval_seconds=0.0)


class TestStagedMode:
    def test_partial_sidecar_then_atomic_publish(self, tmp_path):
        path = tmp_path / "block.json"
        records = _records(2)
        staged = JsonlCheckpointStore(
            path, flush_interval_seconds=0.0, staged=True
        )
        for key, record in records.items():
            staged.add(key, record)
        staged.flush()
        # Flushes land in the writer-unique partial; the real path does
        # not exist until publish.
        partial = Path(f"{path}.{os.getpid()}.partial")
        assert partial.exists() and not path.exists()
        staged.publish()
        assert path.exists() and not partial.exists()
        assert JsonlCheckpointStore(path).load() == records

    def test_load_folds_in_dead_writers_partial(self, tmp_path):
        # A dead job flushed one run to its partial but never published:
        # the thief's store resumes that progress instead of redoing it.
        path = tmp_path / "block.json"
        records = _records(2)
        dead_partial = Path(f"{path}.99999.partial")
        dead_partial.write_text(
            json.dumps(
                {"format": "jsonl", "kind": "checkpoint", "version": 1},
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
            + json.dumps(
                {"key": "key-0", "record": records["key-0"]},
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
        )
        thief = JsonlCheckpointStore(
            path, flush_interval_seconds=0.0, staged=True
        )
        assert thief.load() == {"key-0": records["key-0"]}
        thief.add("key-1", records["key-1"])
        thief.publish()
        assert not dead_partial.exists()
        assert JsonlCheckpointStore(path).load() == records
