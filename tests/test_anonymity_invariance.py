"""Anonymity checks: protocol behaviour must not depend on hidden identities.

The model gives nodes nothing but port numbers, and the port numbering is
adversarial (the impossibility proof quantifies over port mappings).  These
tests check the two facets of that assumption our implementation must
respect:

* protocols keep working (same success guarantees) when the port numbering
  is re-randomised — they cannot have smuggled in a dependency on the
  canonical assignment;
* protocols never read the node index the simulator uses for bookkeeping —
  enforced by construction (the factory hides it), and double-checked here
  by confirming identical aggregate behaviour under a relabelling of the
  node indices (an isomorphic topology).
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import run_flooding_election, run_gilbert_election
from repro.election import IrrevocableConfig, run_irrevocable_election, run_revocable_election
from repro.graphs import Topology, complete, random_regular


def relabel(topology: Topology, seed: int) -> Topology:
    """An isomorphic copy of ``topology`` with node indices permuted."""
    rng = random.Random(seed)
    permutation = list(range(topology.num_nodes))
    rng.shuffle(permutation)
    edges = [(permutation[u], permutation[v]) for u, v in topology.edges()]
    return Topology(topology.num_nodes, edges, name=f"{topology.name}+relabelled")


class TestPortNumberingInvariance:
    @pytest.mark.parametrize("port_seed", [None, 1, 99])
    def test_irrevocable_succeeds_under_any_port_numbering(self, port_seed):
        topology = random_regular(24, 4, seed=5).with_port_seed(port_seed)
        config = IrrevocableConfig.from_topology(topology)
        result = run_irrevocable_election(topology, seed=8, config=config)
        assert result.success

    @pytest.mark.parametrize("port_seed", [None, 7])
    def test_flooding_succeeds_under_any_port_numbering(self, port_seed):
        topology = random_regular(24, 4, seed=5).with_port_seed(port_seed)
        assert run_flooding_election(topology, seed=8).success

    @pytest.mark.parametrize("port_seed", [None, 3])
    def test_gilbert_succeeds_under_any_port_numbering(self, port_seed):
        topology = random_regular(24, 4, seed=5).with_port_seed(port_seed)
        assert run_gilbert_election(topology, seed=8).success

    def test_revocable_succeeds_under_shuffled_ports(self):
        topology = complete(5).with_port_seed(11)
        result = run_revocable_election(topology, seed=3)
        assert result.success and result.outcome.agreement


class TestNodeRelabellingInvariance:
    def test_flooding_cost_statistics_match_on_isomorphic_graphs(self):
        base = random_regular(24, 4, seed=6)
        copy = relabel(base, seed=13)
        base_result = run_flooding_election(base, seed=2)
        copy_result = run_flooding_election(copy, seed=2)
        # Same per-node randomness stream, isomorphic structure: costs stay
        # within the same ballpark and both elect exactly one leader.
        assert base_result.success and copy_result.success
        assert copy_result.messages == pytest.approx(base_result.messages, rel=0.5)

    def test_irrevocable_succeeds_on_isomorphic_copy(self):
        base = random_regular(24, 4, seed=6)
        copy = relabel(base, seed=21)
        config = IrrevocableConfig.from_topology(base)
        assert run_irrevocable_election(copy, seed=4, config=config).success
