"""Unit tests for the revocable-election parameter schedules."""

from __future__ import annotations

import math

import pytest

from repro.core import ConfigurationError
from repro.election import PaperSchedule, ScaledSchedule


class TestCommonStructure:
    @pytest.fixture(params=["paper", "scaled"])
    def schedule(self, request):
        if request.param == "paper":
            return PaperSchedule(epsilon=1.0, xi=0.1)
        return ScaledSchedule(epsilon=0.5, xi=0.1, convergence_rate=2.0)

    def test_estimate_power(self, schedule):
        assert schedule.estimate_power(4) == pytest.approx(4 ** (1 + schedule.epsilon))

    def test_white_probability_formula(self, schedule):
        k = 8
        assert schedule.white_probability(k) == pytest.approx(
            math.log(2.0) / schedule.estimate_power(k)
        )

    def test_white_probability_capped_at_one(self, schedule):
        assert schedule.white_probability(1) <= 1.0

    def test_threshold_below_one_and_increasing(self, schedule):
        values = [schedule.potential_threshold(k) for k in (2, 4, 8, 16)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == sorted(values)

    def test_dissemination_rounds_grow(self, schedule):
        assert schedule.dissemination_rounds(8) > schedule.dissemination_rounds(2)

    def test_id_range_is_superlinear(self, schedule):
        assert schedule.id_range(8) > 8 ** 4

    def test_diffusion_rounds_positive_and_growing(self, schedule):
        assert schedule.diffusion_rounds(2) >= 1
        assert schedule.diffusion_rounds(16) > schedule.diffusion_rounds(4)

    def test_certification_repeats_at_least_one(self, schedule):
        assert schedule.certification_repeats(2) >= 1

    def test_rounds_bookkeeping(self, schedule):
        k = 4
        per = schedule.rounds_per_certification(k)
        assert per == schedule.diffusion_rounds(k) + schedule.dissemination_rounds(k)
        assert schedule.rounds_for_estimate(k) == schedule.certification_repeats(k) * per

    def test_estimates_iterator(self, schedule):
        assert list(schedule.estimates(16)) == [2, 4, 8, 16]

    def test_total_rounds_through_sums_estimates(self, schedule):
        total = schedule.total_rounds_through(8)
        assert total == sum(schedule.rounds_for_estimate(k) for k in (2, 4, 8))

    def test_final_estimate_exceeds_4n(self, schedule):
        for n in (1, 3, 10, 50):
            k = schedule.final_estimate(n)
            assert schedule.estimate_power(k) > 4 * n
            assert schedule.estimate_power(k // 2) <= 4 * n

    def test_final_estimate_rejects_nonpositive(self, schedule):
        with pytest.raises(ConfigurationError):
            schedule.final_estimate(0)

    def test_paper_bit_rounds_exceed_simulated_rounds(self, schedule):
        # Bit-by-bit transmission can only make rounds longer.
        assert schedule.paper_bit_rounds_for_estimate(4) >= schedule.rounds_for_estimate(4)

    def test_describe_rows(self, schedule):
        rows = schedule.describe([2, 4])
        assert len(rows) == 2
        assert {"k", "r(k)", "f(k)", "p(k)", "tau(k)"} <= set(rows[0])

    def test_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            PaperSchedule(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            PaperSchedule(epsilon=1.5)
        with pytest.raises(ConfigurationError):
            PaperSchedule(xi=1.0)


class TestPaperSchedule:
    def test_theorem3_r_uses_isoperimetric_number(self):
        blind = PaperSchedule(epsilon=1.0, xi=0.1)
        informed = PaperSchedule(epsilon=1.0, xi=0.1, isoperimetric_number=2.0)
        # Knowing i(G) tightens the diffusion length dramatically (Theorem 3
        # vs Corollary 1).
        assert informed.diffusion_rounds(8) < blind.diffusion_rounds(8)

    def test_corollary1_form_matches_substitution(self):
        # With i(G) = 2/k the Theorem 3 head term equals the Corollary 1 one.
        k, eps = 8, 1.0
        blind = PaperSchedule(epsilon=eps, xi=0.1)
        informed = PaperSchedule(epsilon=eps, xi=0.1, isoperimetric_number=2.0 / k)
        assert blind.diffusion_rounds(k) == pytest.approx(
            informed.diffusion_rounds(k), rel=1e-6
        )

    def test_f_uses_paper_constant(self):
        schedule = PaperSchedule(epsilon=1.0, xi=0.1)
        k = 8
        expected = (4 * math.sqrt(2) / (math.sqrt(2) - 1) ** 2) * math.log(
            schedule.estimate_power(k) / schedule.xi
        )
        assert schedule.certification_repeats(k) == math.ceil(expected)

    def test_paper_rounds_are_enormous(self):
        # Sanity check of the Õ(n^{4(2+ε)}) blow-up the paper reports: even
        # n = 8 needs hundreds of millions of rounds under Corollary 1.
        schedule = PaperSchedule(epsilon=1.0, xi=0.1)
        assert schedule.total_rounds_through(schedule.final_estimate(8)) > 10 ** 8

    def test_isoperimetric_validation(self):
        with pytest.raises(ConfigurationError):
            PaperSchedule(isoperimetric_number=0.0)


class TestScaledSchedule:
    def test_scaled_is_cheaper_than_paper(self):
        paper = PaperSchedule(epsilon=0.5, xi=0.1, isoperimetric_number=1.0)
        scaled = ScaledSchedule(epsilon=0.5, xi=0.1, convergence_rate=1.0)
        assert scaled.total_rounds_through(8) < paper.total_rounds_through(8)

    def test_higher_convergence_rate_means_fewer_rounds(self):
        slow = ScaledSchedule(convergence_rate=0.5)
        fast = ScaledSchedule(convergence_rate=4.0)
        assert fast.diffusion_rounds(8) < slow.diffusion_rounds(8)

    def test_certification_min_respected(self):
        schedule = ScaledSchedule(convergence_rate=1.0, certification_min=9)
        assert schedule.certification_repeats(2) >= 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScaledSchedule(convergence_rate=0.0)
        with pytest.raises(ConfigurationError):
            ScaledSchedule(convergence_rate=1.0, diffusion_scale=0.0)
        with pytest.raises(ConfigurationError):
            ScaledSchedule(convergence_rate=1.0, certification_min=0)

    def test_id_exponent_controls_range(self):
        wide = ScaledSchedule(convergence_rate=1.0, id_exponent=4.0)
        narrow = ScaledSchedule(convergence_rate=1.0, id_exponent=2.0)
        assert narrow.id_range(8) < wide.id_range(8)
