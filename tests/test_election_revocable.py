"""Tests for the blind revocable election (Algorithms 6–7, Theorem 3)."""

from __future__ import annotations

import pytest

from repro.election import (
    Certificate,
    ScaledSchedule,
    default_scaled_schedule,
    run_revocable_election,
)
from repro.graphs import algebraic_connectivity, complete, cycle, grid_2d, star


class TestDefaultSchedule:
    def test_uses_topology_connectivity(self):
        topology = complete(5)
        schedule = default_scaled_schedule(topology)
        assert schedule.convergence_rate == pytest.approx(
            algebraic_connectivity(topology)
        )

    def test_parameters_forwarded(self):
        schedule = default_scaled_schedule(
            complete(5), epsilon=0.25, xi=0.05, certification_min=7
        )
        assert schedule.epsilon == 0.25
        assert schedule.xi == 0.05
        assert schedule.certification_repeats(2) >= 7


class TestRevocableElection:
    def test_unique_leader_and_agreement_on_small_clique(self):
        topology = complete(5)
        result = run_revocable_election(topology, seed=7)
        assert result.success
        assert result.outcome.num_leaders == 1
        assert result.outcome.agreement is True

    def test_unique_leader_on_star(self):
        result = run_revocable_election(star(5), seed=3)
        assert result.success
        assert result.outcome.agreement is True

    def test_unique_leader_on_small_cycle(self):
        result = run_revocable_election(cycle(5), seed=1)
        assert result.success
        assert result.outcome.agreement is True

    def test_unique_leader_on_grid(self):
        result = run_revocable_election(grid_2d(2, 3), seed=2)
        assert result.success

    def test_success_rate_across_seeds(self):
        topology = complete(4)
        schedule = default_scaled_schedule(topology)
        successes = 0
        for seed in range(6):
            result = run_revocable_election(topology, seed=seed, schedule=schedule)
            successes += result.success and result.outcome.agreement
        assert successes >= 5

    def test_leader_holds_strongest_certificate(self):
        topology = complete(5)
        result = run_revocable_election(topology, seed=7)
        certificates = [
            Certificate(estimate=r["own_estimate"], node_id=r["node_id"])
            for r in result.node_results
            if r["node_id"] is not None
        ]
        strongest = max(certificates, key=Certificate.sort_key)
        leader_index = result.outcome.leader_indices[0]
        leader = result.node_results[leader_index]
        assert (leader["own_estimate"], leader["node_id"]) == strongest.as_tuple()

    def test_all_nodes_choose_ids_by_the_final_estimate(self):
        topology = complete(5)
        result = run_revocable_election(topology, seed=7)
        assert all(r["node_id"] is not None for r in result.node_results)
        final = result.parameters["final_estimate"]
        assert all(r["own_estimate"] <= final for r in result.node_results)

    def test_no_node_decides_at_a_hopelessly_small_estimate(self):
        # Lemma 7: nodes should not fix an ID while k^{1+eps}*log(4k) < n is
        # grossly violated; with our tiny graphs this means estimates of at
        # least 2.
        topology = complete(6)
        result = run_revocable_election(topology, seed=11)
        assert all(r["own_estimate"] >= 2 for r in result.node_results)

    def test_nodes_never_halt(self):
        topology = complete(4)
        result = run_revocable_election(topology, seed=5)
        # Revocable election never terminates at the nodes; the driver just
        # stops simulating.
        assert not result.node_results[0]["leader"] is None
        assert all(r["iterations_completed"] >= 1 for r in result.node_results)

    def test_simulated_rounds_match_schedule(self):
        topology = complete(4)
        schedule = default_scaled_schedule(topology)
        result = run_revocable_election(topology, seed=5, schedule=schedule)
        expected = schedule.total_rounds_through(
            result.parameters["final_estimate"]
        ) + 2 * topology.num_nodes + 2
        assert result.rounds_executed <= expected

    def test_paper_bit_round_accounting_reported(self):
        result = run_revocable_election(complete(4), seed=5)
        assert result.parameters["paper_bit_rounds"] > result.rounds_executed

    def test_message_complexity_tracks_m_times_rounds(self):
        topology = complete(5)
        result = run_revocable_election(topology, seed=7)
        # Every round broadcasts over every edge in both directions at most.
        assert result.messages <= 2 * topology.num_edges * result.rounds_executed

    def test_max_rounds_cap_respected(self):
        topology = complete(5)
        result = run_revocable_election(topology, seed=7, max_rounds=50)
        assert result.rounds_executed <= 50

    def test_deterministic_given_seed(self):
        topology = complete(4)
        schedule = default_scaled_schedule(topology)
        a = run_revocable_election(topology, seed=9, schedule=schedule)
        b = run_revocable_election(topology, seed=9, schedule=schedule)
        assert a.messages == b.messages
        assert a.outcome.leader_indices == b.outcome.leader_indices

    def test_custom_schedule_accepted(self):
        topology = cycle(4)
        schedule = ScaledSchedule(
            epsilon=0.5,
            xi=0.1,
            convergence_rate=algebraic_connectivity(topology),
            certification_min=4,
        )
        result = run_revocable_election(topology, seed=2, schedule=schedule)
        assert result.parameters["schedule"] == "ScaledSchedule"
        assert result.outcome.num_leaders >= 1
