"""Tests for the composite Irrevocable Leader Election protocol (Theorem 1)."""

from __future__ import annotations

import pytest

from repro.core import ConfigurationError
from repro.election import IrrevocableConfig, run_irrevocable_election
from repro.graphs import complete, cycle, grid_2d, random_regular


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IrrevocableConfig(n=0, t_mix=1, conductance=0.5)
        with pytest.raises(ConfigurationError):
            IrrevocableConfig(n=4, t_mix=0, conductance=0.5)
        with pytest.raises(ConfigurationError):
            IrrevocableConfig(n=4, t_mix=1, conductance=1.5)
        with pytest.raises(ConfigurationError):
            IrrevocableConfig(n=4, t_mix=1, conductance=0.5, c=-1)
        with pytest.raises(ConfigurationError):
            IrrevocableConfig(n=4, t_mix=1, conductance=0.5, x=0)

    def test_walks_follow_paper_formula(self):
        config = IrrevocableConfig(n=64, t_mix=16, conductance=0.25, x_multiplier=1.0)
        import math

        expected = math.ceil(math.sqrt(64 * math.log(64) / (0.25 * 16)))
        assert config.walks_per_candidate == expected

    def test_explicit_x_overrides_formula(self):
        config = IrrevocableConfig(n=64, t_mix=16, conductance=0.25, x=5)
        assert config.walks_per_candidate == 5

    def test_phase_rounds_scale_with_t_mix_and_log_n(self):
        small = IrrevocableConfig(n=64, t_mix=4, conductance=0.25)
        large = IrrevocableConfig(n=64, t_mix=16, conductance=0.25)
        # c * t_mix * ln(n) up to rounding: quadrupling t_mix quadruples it.
        assert large.phase_rounds == pytest.approx(4 * small.phase_rounds, abs=4)

    def test_total_rounds_composition(self):
        config = IrrevocableConfig(n=32, t_mix=8, conductance=0.25)
        assert config.total_rounds() == (
            config.broadcast_phase_rounds
            + config.walk_phase_rounds
            + config.convergecast_phase_rounds
            + 1
        )
        assert config.broadcast_phase_rounds == config.num_slots * config.phase_rounds

    def test_territory_cap_formula(self):
        config = IrrevocableConfig(n=64, t_mix=10, conductance=0.2, x=8)
        assert config.territory_cap == pytest.approx(8 * 10 * 0.2)

    def test_from_topology_measures_graph(self):
        topology = cycle(12)
        config = IrrevocableConfig.from_topology(topology)
        assert config.n == 12
        assert config.t_mix >= 1
        assert 0 < config.conductance <= 1

    def test_from_topology_accepts_overrides(self):
        topology = cycle(12)
        config = IrrevocableConfig.from_topology(topology, t_mix=5, conductance=0.5)
        assert config.t_mix == 5
        assert config.conductance == 0.5

    def test_as_dict_exposes_derived_values(self):
        config = IrrevocableConfig(n=32, t_mix=8, conductance=0.25)
        data = config.as_dict()
        assert data["x"] == config.walks_per_candidate
        assert data["total_rounds"] == config.total_rounds()


class TestElectionEndToEnd:
    def test_unique_leader_on_expander(self):
        topology = random_regular(32, 4, seed=3)
        result = run_irrevocable_election(topology, seed=11)
        assert result.success
        assert result.outcome.num_leaders == 1
        # The leader must be one of the candidates.
        assert set(result.outcome.leader_indices) <= set(result.outcome.candidate_indices)

    def test_unique_leader_on_cycle(self):
        result = run_irrevocable_election(cycle(16), seed=5)
        assert result.success

    def test_unique_leader_on_grid(self):
        result = run_irrevocable_election(grid_2d(4, 4), seed=2)
        assert result.success

    def test_unique_leader_on_complete_graph(self):
        result = run_irrevocable_election(complete(16), seed=8)
        assert result.success

    def test_high_success_rate_across_seeds(self):
        topology = random_regular(24, 4, seed=1)
        config = IrrevocableConfig.from_topology(topology)
        outcomes = [
            run_irrevocable_election(topology, seed=seed, config=config).success
            for seed in range(8)
        ]
        assert sum(outcomes) >= 7

    def test_leader_is_candidate_with_maximum_id(self):
        topology = random_regular(32, 4, seed=3)
        result = run_irrevocable_election(topology, seed=11)
        candidate_ids = {
            index: result.node_results[index]["node_id"]
            for index in result.outcome.candidate_indices
        }
        leader = result.outcome.leader_indices[0]
        assert candidate_ids[leader] == max(candidate_ids.values())

    def test_rounds_match_configured_schedule(self):
        topology = cycle(12)
        config = IrrevocableConfig.from_topology(topology)
        result = run_irrevocable_election(topology, seed=1, config=config)
        assert result.rounds_executed == config.total_rounds()

    def test_phase_metrics_are_populated(self):
        topology = random_regular(16, 4, seed=2)
        result = run_irrevocable_election(topology, seed=3)
        phases = result.metrics.phases
        assert {"cautious-broadcast", "random-walk", "convergecast"} <= set(phases)
        assert phases["random-walk"].messages > 0

    def test_all_nodes_halt(self):
        topology = cycle(10)
        result = run_irrevocable_election(topology, seed=4)
        assert all(r["halted"] for r in result.node_results)

    def test_deterministic_given_seed(self):
        topology = random_regular(16, 4, seed=6)
        config = IrrevocableConfig.from_topology(topology)
        a = run_irrevocable_election(topology, seed=9, config=config)
        b = run_irrevocable_election(topology, seed=9, config=config)
        assert a.messages == b.messages
        assert a.outcome.leader_indices == b.outcome.leader_indices

    def test_different_seeds_differ(self):
        topology = random_regular(16, 4, seed=6)
        config = IrrevocableConfig.from_topology(topology)
        a = run_irrevocable_election(topology, seed=1, config=config)
        b = run_irrevocable_election(topology, seed=2, config=config)
        assert (
            a.outcome.candidate_indices != b.outcome.candidate_indices
            or a.node_results != b.node_results
        )

    def test_parallel_broadcast_count_stays_within_slots(self):
        topology = random_regular(32, 4, seed=3)
        config = IrrevocableConfig.from_topology(topology)
        result = run_irrevocable_election(topology, seed=11, config=config)
        assert all(
            r["parallel_broadcasts"] <= config.num_slots and r["broadcast_overflow"] == 0
            for r in result.node_results
        )

    def test_congest_message_sizes(self):
        # All messages must fit the O(log n) budget the simulator enforces.
        topology = random_regular(16, 4, seed=2)
        result = run_irrevocable_election(topology, seed=3, enforce_congest=True)
        assert result.metrics.congest_violations == 0
