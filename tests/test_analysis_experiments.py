"""Unit tests for the experiment runner and reporting layer."""

from __future__ import annotations

import pytest

from repro.core import ConfigurationError
from repro.analysis import (
    ExperimentSpec,
    render_comparison_table,
    render_kv,
    render_series,
    render_table,
    run_experiment,
    summarize_results,
)
from repro.baselines import run_flooding_election
from repro.graphs import cycle, star


def flooding_runner(topology, seed):
    return run_flooding_election(topology, seed=seed)


class TestExperimentSpec:
    def test_requires_topologies_and_seeds(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(name="x", runner=flooding_runner, topologies=[], seeds=(1,))
        with pytest.raises(ConfigurationError):
            ExperimentSpec(
                name="x", runner=flooding_runner, topologies=[cycle(4)], seeds=()
            )


class TestRunExperiment:
    def test_cells_aggregate_per_topology(self):
        spec = ExperimentSpec(
            name="flooding",
            runner=flooding_runner,
            topologies=[cycle(8), star(8)],
            seeds=(0, 1, 2),
            collect_profile=False,
        )
        result = run_experiment(spec)
        assert len(result.cells) == 2
        cell = result.cell_for("cycle(n=8)")
        assert cell.runs == 3
        assert cell.mean_messages > 0
        assert 0.0 <= cell.success_rate <= 1.0

    def test_profiles_attached_when_requested(self):
        spec = ExperimentSpec(
            name="flooding",
            runner=flooding_runner,
            topologies=[cycle(8)],
            seeds=(0,),
            collect_profile=True,
        )
        result = run_experiment(spec)
        cell = result.cells[0]
        assert cell.profile is not None
        assert cell.profile.diameter == 4
        assert "conductance" in cell.as_dict()

    def test_same_named_topologies_get_their_own_profiles(self):
        from repro.graphs import random_regular

        a = random_regular(16, 4, seed=1)
        b = random_regular(16, 4, seed=2)
        assert a.name == b.name
        spec = ExperimentSpec(
            name="flooding",
            runner=flooding_runner,
            topologies=[a, b],
            seeds=(0,),
            collect_profile=True,
        )
        result = run_experiment(spec)
        from repro.graphs import expansion_profile

        assert result.cells[0].profile == expansion_profile(a)
        assert result.cells[1].profile == expansion_profile(b)
        assert result.cells[0].profile != result.cells[1].profile

    def test_precomputed_profiles_are_reused(self):
        from repro.graphs import expansion_profile

        topology = cycle(8)
        profile = expansion_profile(topology)
        spec = ExperimentSpec(
            name="flooding",
            runner=flooding_runner,
            topologies=[topology],
            seeds=(0,),
        )
        result = run_experiment(spec, profiles={topology.name: profile})
        assert result.cells[0].profile is profile

    def test_series_extraction_sorted_by_x(self):
        spec = ExperimentSpec(
            name="flooding",
            runner=flooding_runner,
            topologies=[cycle(16), cycle(8)],
            seeds=(0,),
            collect_profile=False,
        )
        result = run_experiment(spec)
        series = result.series(x_field="n", y_field="mean_messages")
        assert [x for x, _ in series] == [8, 16]

    def test_keep_results_stores_individual_runs(self):
        spec = ExperimentSpec(
            name="flooding",
            runner=flooding_runner,
            topologies=[cycle(8)],
            seeds=(0, 1),
            collect_profile=False,
        )
        result = run_experiment(spec, keep_results=True)
        assert len(result.cells[0].results) == 2

    def test_overall_success_rate_and_rows(self):
        spec = ExperimentSpec(
            name="flooding",
            runner=flooding_runner,
            topologies=[cycle(8)],
            seeds=(0, 1),
            collect_profile=False,
        )
        result = run_experiment(spec)
        assert 0.0 <= result.overall_success_rate() <= 1.0
        rows = summarize_results([result])
        assert len(rows) == 1
        assert rows[0]["algorithm"] == "flooding-max-id"

    def test_missing_cell_raises(self):
        spec = ExperimentSpec(
            name="flooding",
            runner=flooding_runner,
            topologies=[cycle(8)],
            seeds=(0,),
            collect_profile=False,
        )
        result = run_experiment(spec)
        with pytest.raises(KeyError):
            result.cell_for("nonexistent")


class TestReporting:
    def test_render_table_alignment_and_values(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = render_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_table_empty(self):
        assert "(no data)" in render_table([], title="T")

    def test_render_comparison_table_pivots(self):
        cells = {
            "alg1": [{"topology": "cycle", "mean_messages": 10}],
            "alg2": [{"topology": "cycle", "mean_messages": 20}],
        }
        text = render_comparison_table(cells)
        assert "alg1" in text and "alg2" in text
        assert "10" in text and "20" in text

    def test_render_series(self):
        text = render_series([(8, 100), (16, 200)], x_label="n", y_label="msgs")
        assert "msgs" in text
        assert "200" in text

    def test_render_kv(self):
        text = render_kv({"alpha": 1, "beta": 0.5}, title="params")
        assert text.startswith("params")
        assert "alpha" in text

    def test_format_large_and_small_floats(self):
        from repro.analysis import format_value

        assert format_value(1234567.0) == "1.23e+06"
        assert format_value(0.00001) == "1.00e-05"
        assert format_value(True) == "yes"
        assert format_value(12345) == "12,345"
