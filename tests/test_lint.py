"""Tests for the ``repro.lint`` static-analysis pass.

Every rule gets one positive fixture (minimal source that must trigger
it) and one negative fixture (the compliant spelling that must not), so
a rule regression shows up as a named test, not as CI noise.  On top of
the fixtures: the suppression round-trip (valid, reasonless, standalone
comments), the baseline round-trip, the JSON schema, the CLI surface,
and the pinned self-lint — ``repro-le lint src`` must exit 0.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.lint import (
    BaseRule,
    ENGINE_RULE,
    JSON_REPORT_VERSION,
    RULES,
    lint_paths,
    lint_source,
    load_baseline,
    register_rule,
    render_json,
    render_text,
    rule_table,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def rule_ids(findings):
    return [finding.rule for finding in findings]


def counting(findings):
    return [finding for finding in findings if finding.counts]


# --------------------------------------------------------------------------- #
# rule fixtures: one positive + one negative per rule
# --------------------------------------------------------------------------- #


class TestUnseededRng:
    def test_global_draw_flagged(self):
        findings = lint_source(
            "import random\nvalue = random.random()\n", rules=["REP101"]
        )
        assert rule_ids(findings) == ["REP101"]
        assert "process-global RNG" in findings[0].message

    def test_from_import_alias_flagged(self):
        findings = lint_source(
            "from random import shuffle as mix\nmix(items)\n", rules=["REP101"]
        )
        assert rule_ids(findings) == ["REP101"]

    def test_seedless_random_instance_flagged(self):
        findings = lint_source(
            "import random\nrng = random.Random()\n", rules=["REP101"]
        )
        assert rule_ids(findings) == ["REP101"]

    def test_seeded_stream_clean(self):
        findings = lint_source(
            "import random\n"
            "from repro.core.rng import derive_seed\n"
            "rng = random.Random(derive_seed(7, 'node', 3))\n"
            "value = rng.random()\n",
            rules=["REP101"],
        )
        assert findings == []


class TestWallClock:
    def test_time_time_flagged(self):
        findings = lint_source("import time\nnow = time.time()\n", rules=["REP102"])
        assert rule_ids(findings) == ["REP102"]

    def test_perf_counter_alias_flagged(self):
        findings = lint_source(
            "from time import perf_counter as pc\nstart = pc()\n", rules=["REP102"]
        )
        assert rule_ids(findings) == ["REP102"]

    def test_datetime_now_flagged(self):
        findings = lint_source(
            "import datetime\nstamp = datetime.datetime.now()\n", rules=["REP102"]
        )
        assert rule_ids(findings) == ["REP102"]

    def test_monotonic_clean(self):
        # Monotonic deadline arithmetic never appears in results; the rule
        # deliberately leaves it alone.
        findings = lint_source(
            "import time\ndeadline = time.monotonic() + 5.0\n", rules=["REP102"]
        )
        assert findings == []

    def test_obs_layer_is_the_allowlist(self):
        findings = lint_source(
            "import time\nstart = time.perf_counter()\n",
            path="src/repro/obs/spans.py",
            rules=["REP102"],
        )
        assert findings == []


class TestUnorderedIteration:
    def test_for_over_set_literal_flagged(self):
        findings = lint_source(
            "for item in {1, 2, 3}:\n    print(item)\n", rules=["REP103"]
        )
        assert rule_ids(findings) == ["REP103"]

    def test_for_over_tracked_set_name_flagged(self):
        findings = lint_source(
            "pending = set(tasks)\nfor task in pending:\n    handle(task)\n",
            rules=["REP103"],
        )
        assert rule_ids(findings) == ["REP103"]

    def test_list_over_set_flagged(self):
        findings = lint_source("order = list({3, 1, 2})\n", rules=["REP103"])
        assert rule_ids(findings) == ["REP103"]

    def test_sorted_iteration_clean(self):
        findings = lint_source(
            "pending = set(tasks)\n"
            "for task in sorted(pending):\n"
            "    handle(task)\n"
            "count = len(pending)\n",
            rules=["REP103"],
        )
        assert findings == []


class TestPickleSafety:
    def test_lambda_registry_entry_flagged(self):
        findings = lint_source(
            "RUNNERS = {}\nRUNNERS['quick'] = lambda spec: spec\n", rules=["REP104"]
        )
        assert rule_ids(findings) == ["REP104"]
        assert "spawn" in findings[0].message

    def test_lambda_pool_initializer_flagged(self):
        findings = lint_source(
            "pool = Pool(4, initializer=lambda: setup())\n", rules=["REP104"]
        )
        assert rule_ids(findings) == ["REP104"]

    def test_nested_function_registration_flagged(self):
        findings = lint_source(
            "def install():\n"
            "    def runner(spec):\n"
            "        return spec\n"
            "    register_runner('nested', runner)\n",
            rules=["REP104"],
        )
        assert rule_ids(findings) == ["REP104"]

    def test_module_level_function_clean(self):
        findings = lint_source(
            "def runner(spec):\n"
            "    return spec\n"
            "RUNNERS = {'quick': runner}\n"
            "register_runner('quick', runner)\n",
            rules=["REP104"],
        )
        assert findings == []


class TestContractConformance:
    def test_wrong_emit_arity_flagged(self):
        findings = lint_source(
            "class Sink(ResultSink):\n"
            "    def emit(self, result):\n"
            "        self.results.append(result)\n",
            rules=["REP105"],
        )
        assert rule_ids(findings) == ["REP105"]
        assert "takes 2 positional" in findings[0].message

    def test_protocol_node_missing_step_flagged(self):
        findings = lint_source(
            "class Node(ProtocolNode):\n"
            "    def result(self):\n"
            "        return None\n",
            rules=["REP105"],
        )
        assert rule_ids(findings) == ["REP105"]
        assert "does not define step()" in findings[0].message

    def test_quiescent_without_step_flagged(self):
        findings = lint_source(
            "class Node(ProtocolNode):\n"
            "    def step(self, round_index, inbox):\n"
            "        return []\n"
            "\n"
            "class Lazy(Node):\n"
            "    pass\n"
            "\n"
            "class Quiet(ProtocolNode):\n"
            "    def step(self, round_index, inbox):\n"
            "        return []\n"
            "    def quiescent_until(self, round_index):\n"
            "        return round_index + 1\n",
            rules=["REP105"],
        )
        # Node/Quiet conform; Lazy doesn't subclass the contract directly.
        assert findings == []
        findings = lint_source(
            "class Quiet(ProtocolNode):\n"
            "    def quiescent_until(self, round_index):\n"
            "        return round_index + 1\n",
            rules=["REP105"],
        )
        messages = " ".join(finding.message for finding in findings)
        assert "without overriding step()" in messages

    def test_conformant_sink_clean(self):
        findings = lint_source(
            "class Sink(ResultSink):\n"
            "    def emit(self, spec_name, topology_index, seed_index, result,\n"
            "             wall_clock_seconds):\n"
            "        pass\n"
            "    def close(self):\n"
            "        pass\n",
            rules=["REP105"],
        )
        assert findings == []

    def test_abstract_intermediate_clean(self):
        findings = lint_source(
            "import abc\n"
            "class Base(ProtocolNode, abc.ABC):\n"
            "    @abc.abstractmethod\n"
            "    def decide(self):\n"
            "        ...\n",
            rules=["REP105"],
        )
        assert findings == []


class TestExactAccumulation:
    def test_float_attribute_sum_flagged(self):
        findings = lint_source(
            "class Cell:\n"
            "    def add(self, result):\n"
            "        self.sum_messages += result.mean_messages\n",
            rules=["REP106"],
        )
        assert rule_ids(findings) == ["REP106"]
        assert "order-independent" in findings[0].message

    def test_sum_over_set_flagged(self):
        findings = lint_source("total = sum({0.5, 1.5, 2.5})\n", rules=["REP106"])
        assert rule_ids(findings) == ["REP106"]

    def test_exact_accumulation_clean(self):
        findings = lint_source(
            "from fractions import Fraction\n"
            "class Cell:\n"
            "    def add(self, result):\n"
            "        self.sum_messages += int(result.messages)\n"
            "        self.sum_rounds += Fraction(result.mean_rounds) * int(result.runs)\n"
            "    def merge(self, other):\n"
            "        self.sum_messages += other.sum_messages\n",
            rules=["REP106"],
        )
        assert findings == []

    def test_wall_clock_attribute_exempt(self):
        # Wall clock is the one legitimately nondeterministic measurement;
        # it is excluded from the equivalence guarantee and from the rule.
        findings = lint_source(
            "class Cell:\n"
            "    def add(self, seconds):\n"
            "        self.sum_wall_clock += seconds\n",
            rules=["REP106"],
        )
        assert findings == []


class TestMutableDefault:
    def test_list_default_flagged(self):
        findings = lint_source(
            "def collect(item, into=[]):\n    into.append(item)\n", rules=["REP107"]
        )
        assert rule_ids(findings) == ["REP107"]

    def test_dict_call_kwonly_default_flagged(self):
        findings = lint_source(
            "def configure(*, options=dict()):\n    return options\n",
            rules=["REP107"],
        )
        assert rule_ids(findings) == ["REP107"]

    def test_none_default_clean(self):
        findings = lint_source(
            "def collect(item, into=None):\n"
            "    into = [] if into is None else into\n"
            "    into.append(item)\n",
            rules=["REP107"],
        )
        assert findings == []


class TestSwallowedException:
    def test_bare_except_flagged(self):
        findings = lint_source(
            "try:\n    run()\nexcept:\n    cleanup()\n", rules=["REP108"]
        )
        assert rule_ids(findings) == ["REP108"]

    def test_broad_silent_handler_flagged(self):
        findings = lint_source(
            "try:\n    run()\nexcept Exception:\n    pass\n", rules=["REP108"]
        )
        assert rule_ids(findings) == ["REP108"]

    def test_narrow_or_recorded_clean(self):
        findings = lint_source(
            "try:\n"
            "    run()\n"
            "except ValueError:\n"
            "    pass\n"
            "try:\n"
            "    run()\n"
            "except Exception as error:\n"
            "    failures.append(error)\n",
            rules=["REP108"],
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# suppressions
# --------------------------------------------------------------------------- #


class TestSuppressions:
    def test_inline_suppression_with_reason(self):
        findings = lint_source(
            "import time\n"
            "now = time.time()  # repro: disable=REP102 — fixture needs epoch time\n",
            rules=["REP102"],
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert not findings[0].counts
        assert findings[0].reason == "fixture needs epoch time"

    def test_standalone_comment_covers_next_code_line(self):
        findings = lint_source(
            "import time\n"
            "# repro: disable=REP102 — fixture: the comment stands alone and\n"
            "# continues over a second line before the code it covers\n"
            "now = time.time()\n",
            rules=["REP102"],
        )
        assert len(findings) == 1
        assert findings[0].suppressed

    def test_reasonless_suppression_suppresses_nothing(self):
        findings = lint_source(
            "import time\nnow = time.time()  # repro: disable=REP102\n",
            rules=["REP102"],
        )
        rules = rule_ids(findings)
        assert ENGINE_RULE in rules  # the reasonless suppression is reported
        original = [f for f in findings if f.rule == "REP102"]
        assert original and not original[0].suppressed

    def test_suppression_only_covers_named_rules(self):
        findings = lint_source(
            "import time, random\n"
            "now = time.time()  # repro: disable=REP101 — wrong rule named\n",
            rules=["REP102"],
        )
        assert len(findings) == 1
        assert not findings[0].suppressed

    def test_multi_rule_suppression(self):
        findings = lint_source(
            "import random\n"
            "import time\n"
            "# repro: disable=REP101,REP102 — fixture exercises both rules\n"
            "value = random.random() + time.time()\n",
            rules=["REP101", "REP102"],
        )
        assert len(findings) == 2
        assert all(finding.suppressed for finding in findings)


# --------------------------------------------------------------------------- #
# engine: files, selection, registration, parse failures
# --------------------------------------------------------------------------- #


class TestEngine:
    def test_syntax_error_reported_as_engine_finding(self):
        findings = lint_source("def broken(:\n")
        assert rule_ids(findings) == [ENGINE_RULE]
        assert "does not parse" in findings[0].message

    def test_unknown_rule_selection_rejected(self):
        with pytest.raises(ConfigurationError):
            lint_source("x = 1\n", rules=["REP999"])

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            lint_paths([str(tmp_path / "nowhere")])

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ConfigurationError):

            @register_rule
            class Duplicate(BaseRule):
                id = "REP101"
                title = "duplicate"
                rationale = "duplicate"

    def test_rule_without_id_rejected(self):
        with pytest.raises(ConfigurationError):

            @register_rule
            class Nameless(BaseRule):
                title = "nameless"
                rationale = "nameless"

    def test_all_documented_rules_registered(self):
        expected = {f"REP10{index}" for index in range(1, 9)}
        assert expected <= set(RULES)
        rows = rule_table()
        assert {row["rule"] for row in rows} >= expected

    def test_report_counts_files_and_sorts_findings(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nnow = time.time()\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        report = lint_paths([str(tmp_path)])
        assert report.files_checked == 2
        assert report.exit_code == 1
        assert [finding.rule for finding in report.counting] == ["REP102"]


# --------------------------------------------------------------------------- #
# baseline round-trip
# --------------------------------------------------------------------------- #


class TestBaseline:
    def test_round_trip_tolerates_recorded_findings_only(self, tmp_path):
        module = tmp_path / "legacy.py"
        module.write_text("import time\nnow = time.time()\n")
        baseline_file = tmp_path / "baseline.json"

        report = lint_paths([str(module)])
        assert report.exit_code == 1
        written = write_baseline(str(baseline_file), report.findings)
        assert written == 1

        baseline = load_baseline(str(baseline_file))
        report = lint_paths([str(module)], baseline=baseline)
        assert report.exit_code == 0
        assert len(report.baselined) == 1

        # A *new* finding is not covered by the old baseline.
        module.write_text(
            "import time\nnow = time.time()\nimport random\nrandom.seed(0)\n"
        )
        report = lint_paths([str(module)], baseline=baseline)
        assert report.exit_code == 1
        assert [finding.rule for finding in report.counting] == ["REP101"]

    def test_baseline_excludes_suppressed_findings(self, tmp_path):
        module = tmp_path / "suppressed.py"
        module.write_text(
            "import time\n"
            "now = time.time()  # repro: disable=REP102 — fixture\n"
        )
        baseline_file = tmp_path / "baseline.json"
        report = lint_paths([str(module)])
        assert write_baseline(str(baseline_file), report.findings) == 0

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(ConfigurationError):
            load_baseline(str(bad))
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ConfigurationError):
            load_baseline(str(bad))


# --------------------------------------------------------------------------- #
# report formats
# --------------------------------------------------------------------------- #


class TestReportFormats:
    def test_json_schema(self, tmp_path):
        module = tmp_path / "module.py"
        module.write_text(
            "import time\n"
            "now = time.time()\n"
            "later = time.time()  # repro: disable=REP102 — fixture\n"
        )
        payload = json.loads(render_json(lint_paths([str(module)])))
        assert payload["version"] == JSON_REPORT_VERSION
        assert payload["files_checked"] == 1
        assert payload["summary"] == {
            "counting": 1,
            "suppressed": 1,
            "baselined": 0,
        }
        for entry in payload["findings"]:
            assert {"rule", "path", "line", "col", "message", "suppressed", "baselined"} <= set(entry)
        suppressed = [entry for entry in payload["findings"] if entry["suppressed"]]
        assert suppressed and suppressed[0]["reason"] == "fixture"

    def test_text_report_lists_locations(self, tmp_path):
        module = tmp_path / "module.py"
        module.write_text("import time\nnow = time.time()\n")
        text = render_text(lint_paths([str(module)]))
        assert "module.py:2:" in text
        assert "REP102" in text
        assert "1 finding(s) in 1 file(s)" in text


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #


class TestLintCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        module = tmp_path / "module.py"
        module.write_text("import time\nnow = time.time()\n")
        assert main(["lint", str(module)]) == 1
        assert "REP102" in capsys.readouterr().out

    def test_exit_zero_when_suppressed(self, tmp_path, capsys):
        module = tmp_path / "module.py"
        module.write_text(
            "import time\nnow = time.time()  # repro: disable=REP102 — fixture\n"
        )
        assert main(["lint", str(module)]) == 0
        assert "1 suppressed" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        module = tmp_path / "module.py"
        module.write_text("import time\nnow = time.time()\n")
        assert main(["lint", str(module), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["counting"] == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP101", "REP105", "REP108"):
            assert rule_id in out

    def test_baseline_workflow(self, tmp_path, capsys):
        module = tmp_path / "module.py"
        module.write_text("import time\nnow = time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert (
            main(["lint", str(module), "--baseline", str(baseline), "--write-baseline"])
            == 0
        )
        assert "recorded 1 finding(s)" in capsys.readouterr().out
        assert main(["lint", str(module), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_write_baseline_requires_baseline_path(self, tmp_path):
        module = tmp_path / "module.py"
        module.write_text("x = 1\n")
        assert main(["lint", str(module), "--write-baseline"]) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        assert main(["lint", str(tmp_path / "nowhere")]) == 2


# --------------------------------------------------------------------------- #
# the pinned gate: the repo's own sources stay lint-clean
# --------------------------------------------------------------------------- #


class TestSelfLint:
    def test_src_is_lint_clean(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src")]) == 0

    def test_benchmarks_and_examples_are_lint_clean(self, capsys):
        paths = [
            str(REPO_ROOT / name)
            for name in ("benchmarks", "examples")
            if (REPO_ROOT / name).exists()
        ]
        assert paths, "benchmarks/ and examples/ should exist at the repo root"
        assert main(["lint", *paths]) == 0
