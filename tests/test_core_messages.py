"""Unit tests for CONGEST message encoding and bit accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import pytest

from repro.core import Message, bits_for_int, bits_for_value, congest_budget_bits, id_space_bits


@dataclass(frozen=True)
class _Sample(Message):
    value: int
    flag: bool
    note: Optional[str] = None


@dataclass(frozen=True)
class _Nested(Message):
    pair: Tuple[int, int]


class TestBitsForInt:
    def test_zero_costs_one_bit(self):
        assert bits_for_int(0) == 1

    def test_one_costs_one_bit(self):
        assert bits_for_int(1) == 1

    def test_powers_of_two(self):
        assert bits_for_int(2) == 2
        assert bits_for_int(255) == 8
        assert bits_for_int(256) == 9

    def test_negative_adds_sign_bit(self):
        assert bits_for_int(-255) == bits_for_int(255) + 1

    def test_large_id(self):
        # IDs from {1..n^4} for n=1024 need 40 bits.
        assert bits_for_int(1024 ** 4) == 41


class TestBitsForValue:
    def test_none_is_free(self):
        assert bits_for_value(None) == 0

    def test_bool_costs_one_bit(self):
        assert bits_for_value(True) == 1
        assert bits_for_value(False) == 1

    def test_float_costs_fixed_64(self):
        assert bits_for_value(0.5) == 64

    def test_string_costs_eight_bits_per_char(self):
        assert bits_for_value("abc") == 24

    def test_tuple_sums_elements(self):
        assert bits_for_value((1, 2, 3)) == bits_for_int(1) + bits_for_int(2) + bits_for_int(3)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            bits_for_value(object())


class TestMessageSize:
    def test_size_includes_type_tag(self):
        message = _Sample(value=5, flag=True)
        expected = Message.TYPE_TAG_BITS + bits_for_int(5) + 1
        assert message.size_bits() == expected

    def test_none_fields_are_free(self):
        with_note = _Sample(value=5, flag=True, note="x")
        without_note = _Sample(value=5, flag=True, note=None)
        assert with_note.size_bits() == without_note.size_bits() + 8

    def test_nested_tuple_fields(self):
        message = _Nested(pair=(3, 9))
        assert message.size_bits() == Message.TYPE_TAG_BITS + bits_for_int(3) + bits_for_int(9)

    def test_default_congest_units_is_one(self):
        assert _Sample(value=1, flag=False).congest_units() == 1

    def test_messages_are_immutable(self):
        message = _Sample(value=1, flag=False)
        with pytest.raises(Exception):
            message.value = 2  # type: ignore[misc]


class TestBudgets:
    def test_id_space_bits_matches_four_log_n(self):
        assert id_space_bits(16) == 16
        assert id_space_bits(1024) == 40

    def test_id_space_bits_small_n(self):
        assert id_space_bits(1) >= 1
        assert id_space_bits(2) == 4

    def test_id_space_bits_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            id_space_bits(0)

    def test_congest_budget_scales_with_log_n(self):
        assert congest_budget_bits(16) == 8 * 4
        assert congest_budget_bits(17) == 8 * 5

    def test_congest_budget_factor(self):
        assert congest_budget_bits(16, factor=2) == 8

    def test_congest_budget_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            congest_budget_bits(0)
