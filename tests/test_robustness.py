"""Tests for the robustness-curve subsystem (``repro.analysis.robustness``).

The contract under test:

* classification: every adversary rung maps to a (family, dial) pair —
  model defaults resolve, churn dials ``p_down``, composed rungs take the
  maximum of their parts, the baseline sits at ``("", 0.0)``;
* folding: the streaming curve sink and the post-hoc cell fold agree,
  and both are independent of scheduling — serial, any worker count, or
  a sharded split folding through one shared sink produce bit-identical
  curves;
* assembly: points are sorted by strictly increasing ``p``, the shared
  baseline rung is prepended to every family curve of its protocol;
* the ``robustness_curves`` workload helper crosses protocol parameter
  grids with adversary ladders into ordinary experiment specs.
"""

from __future__ import annotations

import io
import os

import pytest

from repro.analysis import run_experiment
from repro.analysis.robustness import (
    DIAL_PARAMETERS,
    RobustnessCurveSink,
    classify_adversary,
    curve_rows,
    curves_as_dicts,
    fold_experiments,
)
from repro.analysis.streaming import ProgressSink
from repro.core.errors import ConfigurationError
from repro.dynamics import AdversarySpec, composed_spec, robustness_specs
from repro.graphs import complete, cycle, star
from repro.parallel import run_experiments
from repro.workloads import dynamic_scenario, robustness_curves, tiny_suite

WORKER_COUNTS = sorted({2, 4} | {int(os.environ.get("REPRO_TEST_WORKERS", 2))})


def _lossy_specs(seeds=(0, 1)):
    return robustness_specs(
        ["flooding"],
        [cycle(8), star(8)],
        dynamic_scenario("lossy"),
        seeds=seeds,
        collect_profile=False,
    )


def _sink_for(specs, **kwargs):
    sink = RobustnessCurveSink()
    results = run_experiments(specs, sinks=[sink], **kwargs)
    return sink, results


# --------------------------------------------------------------------------- #
# classification
# --------------------------------------------------------------------------- #


class TestClassifyAdversary:
    def test_baseline(self):
        assert classify_adversary(None) == ("", 0.0)

    def test_explicit_dial(self):
        assert classify_adversary(AdversarySpec.create("loss", p=0.1)) == ("loss", 0.1)
        assert classify_adversary(AdversarySpec.create("skew", p=0.3, max_skew=2)) == (
            "skew",
            0.3,
        )

    def test_churn_dials_p_down(self):
        assert DIAL_PARAMETERS["churn"] == "p_down"
        spec = AdversarySpec.create("churn", p_down=0.2, p_up=0.5)
        assert classify_adversary(spec) == ("churn", 0.2)

    def test_model_defaults_resolve(self):
        # A rung that leaves the dial at the model default must classify
        # at that default, not at zero.
        family, p = classify_adversary(AdversarySpec.create("loss"))
        assert family == "loss" and p == pytest.approx(0.05)

    def test_composed_takes_max_of_parts(self):
        spec = composed_spec(
            AdversarySpec.create("skew", p=0.4, max_skew=2),
            AdversarySpec.create("delay", p=0.1),
        )
        assert classify_adversary(spec) == ("composed", 0.4)

    def test_accepts_recorded_dict_form(self):
        spec = AdversarySpec.create("loss", p=0.1)
        assert classify_adversary(spec.as_dict()) == classify_adversary(spec)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_adversary({"params": {}})


# --------------------------------------------------------------------------- #
# folding: sink, cell fold, and their equivalence
# --------------------------------------------------------------------------- #


class TestCurveFolding:
    def test_sink_builds_one_curve_per_family_with_baseline_first(self):
        specs = _lossy_specs()
        sink, _ = _sink_for(specs)
        curves = sink.curves()
        assert len(curves) == 1
        curve = curves[0]
        assert curve.adversary == "loss"
        assert [point.p for point in curve.points] == [0.0, 0.01, 0.05, 0.1]
        # 2 topologies x 2 seeds per rung.
        assert all(point.runs == 4 for point in curve.points)
        assert curve.points[0].success_rate == 1.0
        assert curve.points[0].safety_rate == 1.0

    def test_series_and_rows_and_dicts(self):
        sink, _ = _sink_for(_lossy_specs())
        (curve,) = sink.curves()
        series = curve.series("success_rate")
        assert [p for p, _ in series] == [0.0, 0.01, 0.05, 0.1]
        rows = curve_rows([curve])
        assert len(rows) == 4
        assert rows[0]["adversary"] == "loss"
        assert {"p", "runs", "success_rate", "safety_rate"} <= set(rows[0])
        (record,) = curves_as_dicts([curve])
        assert record["protocol"] == curve.protocol
        assert len(record["points"]) == 4

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sink_curves_identical_for_any_worker_count(self, workers):
        specs = _lossy_specs()
        serial_sink, _ = _sink_for(specs)
        parallel_sink, _ = _sink_for(specs, workers=workers)
        assert curves_as_dicts(parallel_sink.curves()) == curves_as_dicts(
            serial_sink.curves()
        )

    def test_sharded_split_through_one_sink_matches_serial(self, tmp_path):
        specs = _lossy_specs()
        serial_sink, _ = _sink_for(specs)
        sharded_sink = RobustnessCurveSink()
        for shard_index in (0, 1, 2):
            run_experiments(
                specs,
                checkpoint=tmp_path / "sweep.json",
                shard=(shard_index, 3),
                sinks=[sharded_sink],
            )
        assert curves_as_dicts(sharded_sink.curves()) == curves_as_dicts(
            serial_sink.curves()
        )

    def test_fold_experiments_agrees_with_sink(self):
        specs = _lossy_specs()
        sink, results = _sink_for(specs)
        folded = fold_experiments(specs, results)
        streamed = sink.curves()
        assert len(folded) == len(streamed)
        for fold_curve, sink_curve in zip(folded, streamed):
            assert fold_curve.protocol == sink_curve.protocol
            assert fold_curve.adversary == sink_curve.adversary
            for fold_point, sink_point in zip(fold_curve.points, sink_curve.points):
                # Counts and rates are integer-derived: exactly equal.
                assert fold_point.p == sink_point.p
                assert fold_point.runs == sink_point.runs
                assert fold_point.successes == sink_point.successes
                assert fold_point.safe_runs == sink_point.safe_runs
                # Means are reconstructed from the cells' rounded floats:
                # equal to float rounding across the two paths.
                assert fold_point.mean_messages == pytest.approx(
                    sink_point.mean_messages, rel=1e-12
                )
                assert fold_point.mean_rounds == pytest.approx(
                    sink_point.mean_rounds, rel=1e-12
                )

    def test_fold_experiments_is_shard_transparent(self, tmp_path):
        specs = _lossy_specs()
        full = run_experiments(specs)
        shard_results = [
            run_experiments(
                specs, checkpoint=tmp_path / "sweep.json", shard=(index, 2)
            )
            for index in (0, 1)
        ]
        folded_full = fold_experiments(specs, full)
        # Folding each shard's partial results through one bucket set:
        # emulate by folding the concatenated (spec, result) pairs.
        paired_specs = [spec for _ in shard_results for spec in specs]
        paired_results = [result for results in shard_results for result in results]
        folded_shards = fold_experiments(paired_specs, paired_results)
        assert curves_as_dicts(folded_shards) == curves_as_dicts(folded_full)

    def test_fold_experiments_requires_matching_lengths(self):
        specs = _lossy_specs()
        with pytest.raises(ConfigurationError):
            fold_experiments(specs, [])

    def test_explicit_zero_rung_shadows_baseline(self):
        specs = robustness_specs(
            ["flooding"],
            [cycle(8)],
            [None, AdversarySpec.create("loss", p=0.0), AdversarySpec.create("loss", p=0.1)],
            seeds=(0,),
            collect_profile=False,
        )
        sink, _ = _sink_for(specs)
        (curve,) = sink.curves()
        ps = [point.p for point in curve.points]
        assert ps == [0.0, 0.1]  # explicit p=0 rung wins; no duplicate point
        assert curve.points[0].runs == 1

    def test_multi_family_sweep_gets_one_curve_per_family(self):
        ladder = [
            None,
            AdversarySpec.create("loss", p=0.05),
            AdversarySpec.create("skew", p=0.3, max_skew=2),
        ]
        specs = robustness_specs(
            ["flooding"], [cycle(8)], ladder, seeds=(0,), collect_profile=False
        )
        sink, _ = _sink_for(specs)
        curves = sink.curves()
        assert [curve.adversary for curve in curves] == ["loss", "skew"]
        # The single baseline rung calibrates both curves.
        for curve in curves:
            assert curve.points[0].p == 0.0
            assert curve.points[0].runs == 1


# --------------------------------------------------------------------------- #
# the robustness_curves workload helper (param_grid x adversary ladder)
# --------------------------------------------------------------------------- #


class TestRobustnessCurvesHelper:
    def test_crosses_param_grid_with_ladder(self):
        specs = robustness_curves(
            "irrevocable",
            tiny_suite()[:1],
            scenario="skewed",
            seeds=(0,),
            c=[1.5, 2.0],
        )
        # 2 variants x 4 rungs (baseline + 3 skew levels).
        assert len(specs) == 8
        names = [spec.name for spec in specs]
        assert len(set(names)) == len(names)
        assert "irrevocable:c=1.5" in names
        assert any(name.startswith("irrevocable:c=2.0@skew(") for name in names)

    def test_bare_name_sweeps_default_configuration(self):
        specs = robustness_curves(
            "flooding", [cycle(8)], scenario="lossy", seeds=(0,)
        )
        assert [spec.name for spec in specs][0] == "flooding"
        assert len(specs) == 4

    def test_explicit_ladder_accepted(self):
        ladder = [None, AdversarySpec.create("skew", p=0.2, max_skew=2)]
        specs = robustness_curves("flooding", [cycle(8)], scenario=ladder, seeds=(0,))
        assert len(specs) == 2

    def test_empty_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            robustness_curves("flooding", [cycle(8)], scenario=[], seeds=(0,))

    def test_specs_run_and_fold_end_to_end(self):
        specs = robustness_curves(
            "irrevocable",
            [complete(4)],
            scenario="skewed",
            seeds=(0,),
            c=[2.0, 3.0],
        )
        sink = RobustnessCurveSink()
        run_experiments(specs, sinks=[sink])
        curves = sink.curves()
        # One curve per protocol variant, each covering the full ladder.
        assert [curve.protocol for curve in curves] == [
            "irrevocable:c=2.0",
            "irrevocable:c=3.0",
        ]
        for curve in curves:
            assert [point.p for point in curve.points] == [0.0, 0.1, 0.3, 0.6]


# --------------------------------------------------------------------------- #
# progress reporting
# --------------------------------------------------------------------------- #


class FakeClock:
    """A deterministic clock for ProgressSink: advances 2s per reading."""

    def __init__(self, step: float = 2.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        reading, self.now = self.now, self.now + self.step
        return reading


class TestProgressSink:
    def test_reports_every_n_and_final(self):
        # The Stopwatch reads the clock once at construction, then once
        # per reported line: readings 0, 2, 4, 6 → elapsed 2, 4, 6.
        stream = io.StringIO()
        sink = ProgressSink(5, every=2, stream=stream, clock=FakeClock())
        for index in range(5):
            sink.emit("spec", 0, index, None, 0.0)
        sink.close()
        lines = stream.getvalue().splitlines()
        assert lines == [
            "progress: 2/5 runs (40.0%) | 2.0s elapsed, 1.0 runs/s, ETA 3.0s",
            "progress: 4/5 runs (80.0%) | 4.0s elapsed, 1.0 runs/s, ETA 1.0s",
            "progress: 5/5 runs (100.0%) | 6.0s elapsed, 0.8 runs/s",
        ]

    def test_label_and_unknown_total(self):
        # Unknown total: throughput but no ETA (nothing to extrapolate to).
        stream = io.StringIO()
        sink = ProgressSink(
            label="shard 1/4", every=1, stream=stream, clock=FakeClock()
        )
        sink.emit("spec", 0, 0, None, 0.0)
        sink.close()
        assert stream.getvalue().splitlines() == [
            "progress[shard 1/4]: 1 runs | 2.0s elapsed, 0.5 runs/s"
        ]

    def test_empty_slice_still_reports_on_close(self):
        # Zero runs: no throughput or ETA — a rate of 0/elapsed is noise.
        stream = io.StringIO()
        ProgressSink(0, label="shard 3/4", stream=stream, clock=FakeClock()).close()
        assert stream.getvalue().splitlines() == [
            "progress[shard 3/4]: 0 runs | 2.0s elapsed"
        ]

    def test_default_cadence_is_about_five_percent(self):
        stream = io.StringIO()
        sink = ProgressSink(100, stream=stream)
        for index in range(100):
            sink.emit("spec", 0, index, None, 0.0)
        sink.close()
        assert len(stream.getvalue().splitlines()) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            ProgressSink(-1)
        with pytest.raises(ValueError):
            ProgressSink(10, every=0)

    def test_counts_runs_streamed_through_drivers(self, capsys):
        specs = _lossy_specs(seeds=(0,))
        sink = ProgressSink(8, every=8)
        run_experiments(specs, sinks=[sink])
        assert "progress: 8/8 runs (100.0%)" in capsys.readouterr().err
