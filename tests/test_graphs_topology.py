"""Unit tests for the port-numbered anonymous topology."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core import TopologyError
from repro.graphs import Topology, cycle, star


class TestConstruction:
    def test_basic_counts(self):
        topology = Topology(3, [(0, 1), (1, 2), (2, 0)])
        assert topology.num_nodes == 3
        assert topology.num_edges == 3
        assert sorted(topology.degrees()) == [2, 2, 2]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(TopologyError):
            Topology(0, [])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 5)])

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 0)])

    def test_rejects_parallel_edges(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 1), (1, 0)])

    def test_rejects_disconnected_by_default(self):
        with pytest.raises(TopologyError):
            Topology(4, [(0, 1), (2, 3)])

    def test_disconnected_allowed_when_requested(self):
        topology = Topology(4, [(0, 1), (2, 3)], require_connected=False)
        assert topology.num_edges == 2

    def test_single_node_is_connected(self):
        topology = Topology(1, [])
        assert topology.num_nodes == 1
        assert topology.degree(0) == 0


class TestPorts:
    def test_ports_cover_neighbors_bijectively(self):
        topology = star(5)
        hub_neighbors = {topology.neighbor_via(0, port) for port in range(1, 5)}
        assert hub_neighbors == {1, 2, 3, 4}

    def test_endpoint_roundtrip(self):
        topology = cycle(6)
        for node in range(6):
            for port in range(1, topology.degree(node) + 1):
                neighbor, neighbor_port = topology.endpoint(node, port)
                back, back_port = topology.endpoint(neighbor, neighbor_port)
                assert back == node
                assert back_port == port

    def test_port_to_inverse_of_neighbor_via(self):
        topology = cycle(5)
        for node in range(5):
            for neighbor in topology.neighbors(node):
                port = topology.port_to(node, neighbor)
                assert topology.neighbor_via(node, port) == neighbor

    def test_port_to_rejects_non_neighbors(self):
        topology = cycle(5)
        with pytest.raises(TopologyError):
            topology.port_to(0, 2)

    def test_invalid_port_rejected(self):
        topology = cycle(5)
        with pytest.raises(TopologyError):
            topology.endpoint(0, 3)
        with pytest.raises(TopologyError):
            topology.endpoint(0, 0)

    def test_random_port_assignment_is_a_permutation(self):
        canonical = star(6)
        shuffled = star(6, port_seed=99)
        assert set(canonical.port_order(0)) == set(shuffled.port_order(0))

    def test_with_port_seed_preserves_edges(self):
        topology = cycle(6)
        reshuffled = topology.with_port_seed(3)
        assert sorted(topology.edges()) == sorted(reshuffled.edges())

    def test_port_seed_changes_assignment_somewhere(self):
        topology = star(8)
        reshuffled = topology.with_port_seed(123)
        assert any(
            topology.port_order(node) != reshuffled.port_order(node)
            for node in range(topology.num_nodes)
        )


class TestQueries:
    def test_has_edge(self):
        topology = cycle(4)
        assert topology.has_edge(0, 1)
        assert not topology.has_edge(0, 2)

    def test_volume(self):
        topology = star(5)
        assert topology.volume() == 2 * topology.num_edges
        assert topology.volume([0]) == 4
        assert topology.volume([1, 2]) == 2

    def test_edge_boundary(self):
        topology = cycle(6)
        assert topology.edge_boundary({0, 1, 2}) == 2
        assert topology.edge_boundary({0, 2, 4}) == 6

    def test_bfs_distances_and_diameter(self):
        topology = cycle(8)
        distances = topology.bfs_distances(0)
        assert distances[4] == 4
        assert topology.diameter() == 4

    def test_out_of_range_node_rejected(self):
        topology = cycle(4)
        with pytest.raises(TopologyError):
            topology.degree(9)

    def test_equality_and_hash(self):
        a = cycle(5)
        b = cycle(5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != cycle(6)

    def test_repr_mentions_size(self):
        assert "n=5" in repr(cycle(5))


class TestNetworkxInterop:
    def test_to_networkx_preserves_structure(self):
        topology = cycle(7)
        graph = topology.to_networkx()
        assert graph.number_of_nodes() == 7
        assert graph.number_of_edges() == 7
        assert nx.is_connected(graph)

    def test_from_networkx_roundtrip(self):
        graph = nx.petersen_graph()
        topology = Topology.from_networkx(graph, name="petersen")
        assert topology.num_nodes == 10
        assert topology.num_edges == 15
        assert topology.name == "petersen"
        assert topology.diameter() == 2


class TestPickling:
    def test_round_trip_preserves_structure_and_ports(self):
        import pickle

        from repro.graphs import random_regular

        topology = random_regular(16, 4, seed=3).with_port_seed(11)
        restored = pickle.loads(pickle.dumps(topology))
        assert restored == topology
        assert restored.name == topology.name
        assert restored.endpoint_table() == topology.endpoint_table()
        for node in range(topology.num_nodes):
            assert restored.port_order(node) == topology.port_order(node)
            for port in range(1, topology.degree(node) + 1):
                assert restored.endpoint(node, port) == topology.endpoint(node, port)

    def test_payload_ships_only_defining_data(self):
        topology = cycle(12)
        state = topology.__getstate__()
        assert set(state) == {"n", "name", "edges", "port_order"}
