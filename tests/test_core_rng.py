"""Unit tests for deterministic randomness management."""

from __future__ import annotations

import pytest

from repro.core import DEFAULT_SEED, RngStream, derive_seed, make_rng, spawn_child_rngs
from repro.core.rng import spawn_numpy_generators


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7)
        b = make_rng(7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_none_uses_default_seed(self):
        a = make_rng(None)
        b = make_rng(DEFAULT_SEED)
        assert a.random() == b.random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, "topology", 16) == derive_seed(3, "topology", 16)

    def test_scope_changes_value(self):
        assert derive_seed(3, "topology", 16) != derive_seed(3, "topology", 17)
        assert derive_seed(3, "a") != derive_seed(3, "b")

    def test_seed_changes_value(self):
        assert derive_seed(3, "x") != derive_seed(4, "x")

    def test_none_seed_uses_default(self):
        assert derive_seed(None, "x") == derive_seed(DEFAULT_SEED, "x")


class TestSpawnChildRngs:
    def test_count(self):
        assert len(spawn_child_rngs(1, 5)) == 5
        assert spawn_child_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_child_rngs(1, -1)

    def test_children_are_independent_streams(self):
        children = spawn_child_rngs(9, 3)
        draws = [child.random() for child in children]
        assert len(set(draws)) == 3

    def test_reproducible_across_calls(self):
        first = [r.random() for r in spawn_child_rngs(11, 4)]
        second = [r.random() for r in spawn_child_rngs(11, 4)]
        assert first == second

    def test_numpy_generators(self):
        gens = spawn_numpy_generators(3, 2)
        assert len(gens) == 2
        assert gens[0].random() != gens[1].random()

    def test_numpy_generators_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_numpy_generators(3, -2)


class TestRngStream:
    def test_draw_counter(self):
        stream = RngStream(5)
        stream.next_rng()
        stream.take(3)
        assert stream.drawn == 4

    def test_reproducible(self):
        a = RngStream(5)
        b = RngStream(5)
        assert a.next_rng().random() == b.next_rng().random()
        assert a.next_seed() == b.next_seed()

    def test_iteration_yields_fresh_rngs(self):
        stream = RngStream(5)
        iterator = iter(stream)
        first = next(iterator)
        second = next(iterator)
        assert first.random() != second.random()

    def test_seed_property(self):
        assert RngStream(42).seed == 42
        assert RngStream(None).seed == DEFAULT_SEED
