"""Tests for Topology's lean pickling and structure fingerprint.

The parallel engine ships one topology per (topology, seed) task, so the
pickle payload must stay lean (defining data only — derived tables are
rebuilt on load) and the structure fingerprint must identify graph
*instances*: same-named graphs with different structure may never collide
in profile caches or checkpoint task keys.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis import ExperimentSpec
from repro.analysis.runners import flooding_runner
from repro.graphs import Topology, cycle, random_regular, torus_2d
from repro.parallel import expand_run_tasks


class TestLeanPickling:
    def test_state_carries_only_defining_data(self):
        topology = torus_2d(4, 4)
        state = topology.__getstate__()
        assert set(state) == {"n", "name", "edges", "port_order"}

    def test_round_trip_preserves_structure_and_ports(self):
        topology = random_regular(16, 4, seed=3).with_port_seed(11)
        clone = pickle.loads(pickle.dumps(topology))
        assert clone == topology
        assert clone.name == topology.name
        assert clone.endpoint_table() == topology.endpoint_table()
        assert [clone.degree(v) for v in range(16)] == [
            topology.degree(v) for v in range(16)
        ]

    def test_round_trip_rebuilds_derived_tables(self):
        topology = cycle(8)
        clone = pickle.loads(pickle.dumps(topology))
        # Derived accessors must work (adjacency, ports, BFS) — they are
        # reconstructed, not shipped.
        assert clone.neighbors(0) == topology.neighbors(0)
        assert clone.port_to(0, 1) == topology.port_to(0, 1)
        assert clone.diameter() == topology.diameter()

    def test_round_trip_preserves_fingerprint(self):
        topology = random_regular(16, 4, seed=5)
        clone = pickle.loads(pickle.dumps(topology))
        assert clone.fingerprint() == topology.fingerprint()

    def test_pickle_payload_smaller_than_naive_dict(self):
        topology = random_regular(64, 4, seed=1)
        lean = len(pickle.dumps(topology))
        naive = len(pickle.dumps(topology.__dict__))
        assert lean < naive


class TestFingerprint:
    def test_stable_across_equal_instances(self):
        assert (
            random_regular(16, 4, seed=1).fingerprint()
            == random_regular(16, 4, seed=1).fingerprint()
        )

    def test_same_name_different_structure_differs(self):
        a = random_regular(16, 4, seed=1)
        b = random_regular(16, 4, seed=2)
        assert a.name == b.name
        assert a.fingerprint() != b.fingerprint()

    def test_port_assignment_is_part_of_the_identity(self):
        base = cycle(8)
        reported = base.with_port_seed(9)
        assert sorted(base.edges()) == sorted(reported.edges())
        assert base.fingerprint() != reported.fingerprint()

    @pytest.mark.parametrize("graph_seeds", [(1, 2), (3, 4)])
    def test_same_named_graphs_never_collide_in_checkpoint_keys(self, graph_seeds):
        # Two sweeps over regenerated same-named suites must produce
        # disjoint task keys, otherwise a resumed checkpoint would replay
        # results measured on different graphs.
        def keys_for(seed):
            spec = ExperimentSpec(
                name="regen",
                runner=flooding_runner,
                topologies=[random_regular(16, 4, seed=seed)],
                seeds=(0, 1),
                collect_profile=False,
            )
            return {task.key for task in expand_run_tasks(spec)}

        first, second = (keys_for(seed) for seed in graph_seeds)
        assert first.isdisjoint(second)
