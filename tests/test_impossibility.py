"""Tests for the pumping-wheel construction and impossibility demonstration."""

from __future__ import annotations

import pytest

from repro.core import ConfigurationError, run_protocol
from repro.impossibility import (
    BoundedUnknownSizeElectionNode,
    WitnessLayout,
    build_pumping_wheel,
    demonstrate_impossibility,
    paper_witness_count,
)
from repro.graphs import cycle


class TestWitnessLayout:
    def test_lengths_match_figure1(self):
        layout = WitnessLayout(n=6, horizon=12)
        assert layout.core_length == 12
        assert layout.witness_length == 2 * 12 + 12
        assert layout.separation == 24
        assert layout.period == layout.witness_length + layout.separation

    def test_core_slices_sit_in_the_middle(self):
        layout = WitnessLayout(n=4, horizon=8)
        core = layout.core_slice(0)
        assert core.start == 8
        assert len(core) == 8
        second_core = layout.core_slice(1)
        assert second_core.start == layout.period + 8

    def test_segments_partition_the_core(self):
        layout = WitnessLayout(n=4, horizon=8)
        left, right = layout.segment_slices(0)
        assert len(left) == len(right) == 4
        assert left.stop == right.start
        assert set(left) | set(right) == set(layout.core_slice(0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WitnessLayout(n=0, horizon=4)
        with pytest.raises(ConfigurationError):
            WitnessLayout(n=4, horizon=0)


class TestWheelConstruction:
    def test_wheel_is_a_cycle_of_the_right_size(self):
        layout = WitnessLayout(n=4, horizon=8)
        wheel = build_pumping_wheel(layout, 3)
        assert wheel.num_nodes == 3 * layout.period
        assert set(wheel.degrees()) == {2}
        assert wheel.num_edges == wheel.num_nodes

    def test_requires_at_least_one_witness(self):
        layout = WitnessLayout(n=4, horizon=8)
        with pytest.raises(ConfigurationError):
            build_pumping_wheel(layout, 0)

    def test_paper_witness_count_is_astronomical(self):
        assert paper_witness_count(4, 8, 0.9) > 1e15

    def test_paper_witness_count_validation(self):
        with pytest.raises(ConfigurationError):
            paper_witness_count(4, 8, 1.0)


class TestBoundedProtocol:
    def test_elects_unique_leader_on_design_cycle(self):
        topology = cycle(8)
        result = run_protocol(
            topology,
            lambda i, p, r: BoundedUnknownSizeElectionNode(p, r, assumed_size=8),
            max_rounds=20,
            seed=3,
        )
        leaders = [r for r in result.results() if r["leader"]]
        assert len(leaders) == 1
        assert result.all_halted

    def test_stops_within_horizon(self):
        topology = cycle(8)
        result = run_protocol(
            topology,
            lambda i, p, r: BoundedUnknownSizeElectionNode(p, r, assumed_size=8),
            max_rounds=100,
            seed=3,
        )
        assert result.rounds_executed <= 2 * 8 + 1

    def test_rejects_bad_assumed_size(self):
        import random

        with pytest.raises(ConfigurationError):
            BoundedUnknownSizeElectionNode(2, random.Random(0), assumed_size=0)


class TestDemonstration:
    def test_base_succeeds_wheel_fails(self):
        report = demonstrate_impossibility(5, num_witnesses=4, seeds=range(5))
        assert report.base_success_rate >= 0.8
        assert report.wheel_failure_rate >= 0.8
        assert report.mean_wheel_leaders > 1.5

    def test_more_witnesses_do_not_reduce_failures(self):
        small = demonstrate_impossibility(4, num_witnesses=1, seeds=range(4))
        large = demonstrate_impossibility(4, num_witnesses=8, seeds=range(4))
        assert large.mean_wheel_leaders >= small.mean_wheel_leaders

    def test_report_dictionary_fields(self):
        report = demonstrate_impossibility(4, num_witnesses=2, seeds=range(3))
        data = report.as_dict()
        assert data["trials"] == 3
        assert data["wheel_size"] == report.wheel_size
        assert 0.0 <= data["wheel_failure_rate"] <= 1.0

    def test_requires_cycle_of_at_least_three(self):
        with pytest.raises(ConfigurationError):
            demonstrate_impossibility(2)

    def test_trial_records_are_consistent(self):
        report = demonstrate_impossibility(4, num_witnesses=2, seeds=range(3))
        for trial in report.trials:
            assert trial.base_correct == (trial.base_leaders == 1)
            assert trial.wheel_failed == (trial.wheel_leaders != 1)
