"""Robustness to approximate knowledge (Section 4's "linear upper bounds").

The paper notes that the known-``n`` protocol only needs *linear upper
bounds* on ``n``, ``t_mix`` and (a lower bound on) ``Φ`` — exact values are
used in the presentation purely for simplicity.  These tests run the
protocol with deliberately slack parameters and check the election still
succeeds, and that the cost degrades in the direction the formulas predict
(more walks / longer phases), never correctness.
"""

from __future__ import annotations

import pytest

from repro.election import IrrevocableConfig, run_irrevocable_election
from repro.graphs import conductance, mixing_time, random_regular


@pytest.fixture(scope="module")
def topology():
    return random_regular(24, 4, seed=13)


@pytest.fixture(scope="module")
def exact_parameters(topology):
    return {
        "n": topology.num_nodes,
        "t_mix": mixing_time(topology),
        "conductance": conductance(topology),
    }


class TestLinearUpperBounds:
    def test_doubled_n_still_elects(self, topology, exact_parameters):
        config = IrrevocableConfig(
            n=2 * exact_parameters["n"],
            t_mix=exact_parameters["t_mix"],
            conductance=exact_parameters["conductance"],
        )
        result = run_irrevocable_election(topology, seed=5, config=config)
        assert result.success

    def test_doubled_mixing_time_still_elects(self, topology, exact_parameters):
        config = IrrevocableConfig(
            n=exact_parameters["n"],
            t_mix=2 * exact_parameters["t_mix"],
            conductance=exact_parameters["conductance"],
        )
        result = run_irrevocable_election(topology, seed=5, config=config)
        assert result.success

    def test_halved_conductance_still_elects(self, topology, exact_parameters):
        config = IrrevocableConfig(
            n=exact_parameters["n"],
            t_mix=exact_parameters["t_mix"],
            conductance=exact_parameters["conductance"] / 2,
        )
        result = run_irrevocable_election(topology, seed=5, config=config)
        assert result.success

    def test_all_bounds_slack_simultaneously(self, topology, exact_parameters):
        config = IrrevocableConfig(
            n=2 * exact_parameters["n"],
            t_mix=2 * exact_parameters["t_mix"],
            conductance=exact_parameters["conductance"] / 2,
        )
        result = run_irrevocable_election(topology, seed=5, config=config)
        assert result.success

    def test_slack_parameters_only_increase_cost(self, topology, exact_parameters):
        exact = IrrevocableConfig(**exact_parameters)
        slack = IrrevocableConfig(
            n=2 * exact_parameters["n"],
            t_mix=2 * exact_parameters["t_mix"],
            conductance=exact_parameters["conductance"] / 2,
        )
        exact_result = run_irrevocable_election(topology, seed=5, config=exact)
        slack_result = run_irrevocable_election(topology, seed=5, config=slack)
        assert slack_result.rounds_executed > exact_result.rounds_executed
        assert slack_result.messages > exact_result.messages

    def test_slack_increases_walks_and_territory(self, exact_parameters):
        exact = IrrevocableConfig(**exact_parameters)
        slack = IrrevocableConfig(
            n=2 * exact_parameters["n"],
            t_mix=exact_parameters["t_mix"],
            conductance=exact_parameters["conductance"] / 2,
        )
        assert slack.walks_per_candidate >= exact.walks_per_candidate
        assert slack.territory_cap >= exact.territory_cap

    def test_underestimating_conductance_never_shrinks_walk_budget(self, exact_parameters):
        accurate = IrrevocableConfig(**exact_parameters)
        pessimistic = IrrevocableConfig(
            n=exact_parameters["n"],
            t_mix=exact_parameters["t_mix"],
            conductance=exact_parameters["conductance"] / 4,
        )
        assert pessimistic.walks_per_candidate >= 2 * accurate.walks_per_candidate - 1
