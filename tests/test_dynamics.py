"""Tests for the adversarial network dynamics subsystem (``repro.dynamics``).

The contract under test:

* every adversary model is a deterministic function of the run seed — the
  same (topology, seed, adversary) run is bit-identical wherever and
  however often it executes, and adversarial sweeps are identical between
  the serial and parallel experiment backends for any worker count;
* fault injection is observable: dropped/delayed counters in
  :class:`~repro.core.metrics.Metrics`, fault events in the trace, the
  adversary description in the run's parameters and checkpoint record;
* the adversary is part of a run's checkpoint identity, so resuming a
  sweep under a different fault model re-runs instead of replaying;
* safety under benign faults: the paper's irrevocable protocol never
  reports more than one leader under mild message loss (and the safety
  verification helpers catch algorithms that do split).
"""

from __future__ import annotations

import os
import pickle
import random

import pytest

from repro.analysis import ExperimentSpec, effective_runner, run_experiment
from repro.analysis.runners import flooding_runner, irrevocable_runner
from repro.core import (
    DELIVER,
    DROP,
    FaultAdversary,
    Metrics,
    MetricsCollector,
    ProtocolNode,
    SynchronousSimulator,
    TraceRecorder,
    active_fault_factory,
    build_nodes,
    fault_scope,
)
from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.dynamics import (
    ADVERSARIES,
    AdversarySpec,
    AsynchronyAdversary,
    CrashStopAdversary,
    LinkChurnAdversary,
    MessageDelayAdversary,
    MessageLossAdversary,
    adversary_grid,
    make_adversary,
    parse_adversary_params,
    robustness_specs,
    run_with_adversary,
)
from repro.election.base import safety_violations, summarize_safety
from repro.graphs import (
    EffectiveTopologyView,
    complete,
    cycle,
    grid_2d,
    hypercube,
    path,
    star,
    torus_2d,
)
from repro.parallel import expand_run_tasks
from repro.workloads import DYNAMIC_SCENARIOS, dynamic_scenario

WORKER_COUNTS = sorted({2, 4} | {int(os.environ.get("REPRO_TEST_WORKERS", 2))})


class Ping(Message):
    pass


class ChatterNode(ProtocolNode):
    """Sends one message through every port each round; counts receptions."""

    def __init__(self, num_ports: int, rng: random.Random) -> None:
        super().__init__(num_ports, rng)
        self.received = 0
        self.stepped = 0

    def step(self, round_index, inbox):
        self.stepped += 1
        self.received += len(inbox)
        return {port: Ping() for port in self.ports()}

    def result(self):
        return {"received": self.received, "stepped": self.stepped}


def _chatter_simulator(topology, adversary=None, trace=None):
    nodes = build_nodes(topology, lambda i, p, rng: ChatterNode(p, rng), seed=0)
    return SynchronousSimulator(topology, nodes, adversary=adversary, trace=trace)


def _comparable(cells):
    rows = []
    for cell in cells:
        row = cell.as_dict()
        row.pop("mean_wall_clock_seconds")
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# core hook
# --------------------------------------------------------------------------- #


class TestFaultHook:
    def test_null_adversary_changes_nothing(self):
        plain = _chatter_simulator(cycle(8)).run(10)
        nulled = _chatter_simulator(cycle(8), adversary=FaultAdversary()).run(10)
        assert [n.result() for n in nulled.nodes] == [n.result() for n in plain.nodes]
        assert nulled.metrics.as_dict() == plain.metrics.as_dict()
        assert nulled.metrics.dropped_messages == 0

    def test_drop_everything(self):
        class DropAll(FaultAdversary):
            def on_message(self, *args):
                return DROP

        result = _chatter_simulator(cycle(8), adversary=DropAll()).run(5)
        assert all(node.received == 0 for node in result.nodes)
        # Senders still paid for every message (2 per node per round).
        assert result.metrics.messages == 8 * 2 * 5
        assert result.metrics.dropped_messages == 8 * 2 * 5

    def test_delay_shifts_arrival(self):
        class DelayTwo(FaultAdversary):
            def on_message(self, *args):
                return 2

        plain = _chatter_simulator(cycle(8)).run(10)
        delayed = _chatter_simulator(cycle(8), adversary=DelayTwo()).run(10)
        assert delayed.metrics.delayed_messages == plain.metrics.messages
        # Two rounds of traffic are still in flight at the end.
        received = sum(node.received for node in delayed.nodes)
        assert received == sum(node.received for node in plain.nodes) - 2 * 16

    def test_inactive_nodes_are_not_stepped(self):
        class FreezeNodeZero(FaultAdversary):
            def node_active(self, round_index, node):
                return node != 0

        result = _chatter_simulator(cycle(8), adversary=FreezeNodeZero()).run(5)
        assert result.nodes[0].stepped == 0
        assert all(node.stepped == 5 for node in result.nodes[1:])

    def test_fault_scope_installs_ambient_factory(self):
        assert active_fault_factory() is None
        adversary = FaultAdversary()
        with fault_scope(lambda: adversary):
            assert active_fault_factory() is not None
            simulator = _chatter_simulator(cycle(4))
            assert simulator.adversary is adversary
        assert active_fault_factory() is None
        assert _chatter_simulator(cycle(4)).adversary is None

    def test_explicit_adversary_wins_over_ambient(self):
        explicit = FaultAdversary()
        with fault_scope(FaultAdversary):
            simulator = _chatter_simulator(cycle(4), adversary=explicit)
        assert simulator.adversary is explicit


# --------------------------------------------------------------------------- #
# concrete models
# --------------------------------------------------------------------------- #


class TestMessageLoss:
    def test_deterministic_per_seed(self):
        results = [
            _chatter_simulator(
                torus_2d(4, 4), adversary=MessageLossAdversary(p=0.2, seed=7)
            ).run(10)
            for _ in range(2)
        ]
        assert results[0].metrics.as_dict() == results[1].metrics.as_dict()
        assert results[0].metrics.dropped_messages > 0

    def test_different_seeds_differ(self):
        a = _chatter_simulator(
            torus_2d(4, 4), adversary=MessageLossAdversary(p=0.2, seed=1)
        ).run(10)
        b = _chatter_simulator(
            torus_2d(4, 4), adversary=MessageLossAdversary(p=0.2, seed=2)
        ).run(10)
        assert [n.received for n in a.nodes] != [n.received for n in b.nodes]

    def test_p_zero_is_baseline(self):
        plain = _chatter_simulator(cycle(8)).run(10)
        lossless = _chatter_simulator(
            cycle(8), adversary=MessageLossAdversary(p=0.0, seed=3)
        ).run(10)
        assert [n.received for n in lossless.nodes] == [
            n.received for n in plain.nodes
        ]
        assert lossless.metrics.dropped_messages == 0

    def test_p_one_drops_all(self):
        result = _chatter_simulator(
            cycle(8), adversary=MessageLossAdversary(p=1.0, seed=3)
        ).run(5)
        assert all(node.received == 0 for node in result.nodes)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageLossAdversary(p=1.5)


class TestMessageDelay:
    def test_delayed_messages_arrive_late_not_never(self):
        adversary = MessageDelayAdversary(p=0.5, max_delay=3, seed=11)
        result = _chatter_simulator(complete(5), adversary=adversary).run(30)
        metrics = result.metrics
        assert metrics.delayed_messages > 0
        received = sum(node.received for node in result.nodes)
        # Everything sent is either delivered, still in flight at the end
        # (bounded by max_delay rounds of traffic), or was dropped in a
        # delay collision.
        assert received + metrics.dropped_messages <= metrics.messages
        assert metrics.messages - received - metrics.dropped_messages <= 3 * 20

    def test_collisions_count_as_dropped(self):
        # Chatter keeps every port busy every round, so a delayed message
        # always lands on an occupied port and must be dropped.
        adversary = MessageDelayAdversary(p=0.3, max_delay=2, seed=5)
        result = _chatter_simulator(cycle(6), adversary=adversary).run(20)
        assert result.metrics.dropped_messages > 0

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            MessageDelayAdversary(p=0.1, max_delay=0)


class TestAsynchronySkew:
    def test_schedule_is_persistent_and_deterministic(self):
        schedules = []
        for _ in range(2):
            adversary = AsynchronyAdversary(p=0.5, max_skew=3, seed=7)
            _chatter_simulator(torus_2d(4, 4), adversary=adversary).run(1)
            schedules.append(dict(adversary._skew))
        assert schedules[0] == schedules[1]
        assert schedules[0]  # p=0.5 over 32 links: some skewed
        assert all(1 <= skew <= 3 for skew in schedules[0].values())

    def test_same_link_always_same_lateness(self):
        # The model's point: skew is per *link*, not per message — every
        # delayed arrival on one edge carries the identical lateness,
        # which no i.i.d. draw of MessageDelayAdversary guarantees.
        trace = TraceRecorder()
        adversary = AsynchronyAdversary(p=0.6, max_skew=4, seed=3)
        _chatter_simulator(cycle(8), adversary=adversary, trace=trace).run(10)
        delays_per_link = {}
        for event in trace.of_kind("message-delayed"):
            link = (event.node, event.detail["receiver"])
            delays_per_link.setdefault(link, set()).add(event.detail["delay"])
        assert delays_per_link
        assert all(len(delays) == 1 for delays in delays_per_link.values())

    def test_skewed_links_pipeline_instead_of_dropping(self):
        # With every link skewed by exactly one round the traffic still
        # flows, one round behind: no drops, and exactly one round's
        # worth of messages is still in flight at the end.
        plain = _chatter_simulator(cycle(8)).run(10)
        adversary = AsynchronyAdversary(p=1.0, max_skew=1, seed=5)
        skewed = _chatter_simulator(cycle(8), adversary=adversary).run(10)
        assert skewed.metrics.dropped_messages == 0
        assert skewed.metrics.delayed_messages == skewed.metrics.messages
        received = sum(node.received for node in skewed.nodes)
        assert received == sum(node.received for node in plain.nodes) - 16

    def test_p_zero_is_baseline(self):
        plain = _chatter_simulator(cycle(8)).run(10)
        unskewed = _chatter_simulator(
            cycle(8), adversary=AsynchronyAdversary(p=0.0, seed=3)
        ).run(10)
        assert [n.received for n in unskewed.nodes] == [
            n.received for n in plain.nodes
        ]
        assert unskewed.metrics.delayed_messages == 0

    def test_link_skew_accessor_and_metrics(self):
        adversary = AsynchronyAdversary(p=1.0, max_skew=2, seed=1)
        result = _chatter_simulator(cycle(6), adversary=adversary).run(3)
        assert result.metrics.events["fault.skewed-links"] == 6
        assert all(
            adversary.link_skew(u, v) >= 1 for u, v in adversary.topology.edges()
        )
        assert AsynchronyAdversary(p=0.0, seed=1).link_skew(0, 1) == 0

    def test_skew_events_traced_once(self):
        trace = TraceRecorder()
        adversary = AsynchronyAdversary(p=1.0, max_skew=3, seed=2)
        _chatter_simulator(cycle(6), adversary=adversary, trace=trace).run(5)
        events = trace.of_kind("link-skew")
        assert len(events) == 6  # once per skewed link, not per round
        assert all(1 <= event.detail["skew"] <= 3 for event in events)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            AsynchronyAdversary(p=1.5)
        with pytest.raises(ConfigurationError):
            AsynchronyAdversary(p=0.5, max_skew=0)

    def test_registered_and_composable(self):
        assert "skew" in ADVERSARIES
        spec = AdversarySpec.create("skew", p=0.25, max_skew=5)
        adversary = make_adversary(spec, seed=9)
        assert isinstance(adversary, AsynchronyAdversary)
        assert adversary.max_skew == 5
        composed = make_adversary(
            AdversarySpec.create(
                "composed", models="skew+loss", **{"skew.p": 0.3, "loss.p": 0.05}
            ),
            seed=9,
        )
        assert [part.name for part in composed.parts] == ["skew", "loss"]


class TestLinkChurn:
    def test_deterministic_schedule(self):
        runs = [
            _chatter_simulator(
                torus_2d(4, 4),
                adversary=LinkChurnAdversary(p_down=0.2, p_up=0.5, seed=9),
            ).run(15)
            for _ in range(2)
        ]
        assert runs[0].metrics.as_dict() == runs[1].metrics.as_dict()
        assert runs[0].metrics.events.get("fault.link-down-rounds", 0) > 0

    def test_down_links_drop_messages(self):
        adversary = LinkChurnAdversary(p_down=1.0, p_up=0.0, seed=1)
        result = _chatter_simulator(cycle(8), adversary=adversary).run(5)
        # Every link goes down in round 0 and never recovers.
        assert all(node.received == 0 for node in result.nodes)
        assert result.metrics.events["fault.disconnected-rounds"] == 5

    def test_effective_view_tracks_down_edges(self):
        adversary = LinkChurnAdversary(p_down=0.3, p_up=0.3, seed=2)
        simulator = _chatter_simulator(cycle(8), adversary=adversary)
        simulator.run(5)
        view = adversary.effective_view()
        assert isinstance(view, EffectiveTopologyView)
        assert view.num_edges == 8 - len(view.down_edges)
        for edge in view.down_edges:
            assert not view.is_up(*edge)

    def test_no_churn_is_baseline(self):
        plain = _chatter_simulator(cycle(8)).run(10)
        stable = _chatter_simulator(
            cycle(8), adversary=LinkChurnAdversary(p_down=0.0, p_up=1.0, seed=4)
        ).run(10)
        assert [n.received for n in stable.nodes] == [n.received for n in plain.nodes]


class TestCrashStop:
    def test_crash_schedule_is_deterministic(self):
        schedules = []
        for _ in range(2):
            adversary = CrashStopAdversary(p=0.5, horizon=10, seed=21)
            _chatter_simulator(cycle(8), adversary=adversary).run(1)
            schedules.append(adversary._crash_round)
        assert schedules[0] == schedules[1]
        assert any(r is not None for r in schedules[0])

    def test_crashed_nodes_stop_stepping_and_receiving(self):
        adversary = CrashStopAdversary(p=1.0, horizon=1, seed=3)
        result = _chatter_simulator(cycle(8), adversary=adversary).run(5)
        # Everyone crashes at round 1: exactly one round of participation.
        assert all(node.stepped == 1 for node in result.nodes)
        assert result.metrics.events["fault.node-crash"] == 8
        assert adversary.crashed_nodes(5) == list(range(8))

    def test_messages_to_crashed_nodes_dropped(self):
        adversary = CrashStopAdversary(p=1.0, horizon=1, seed=3)
        result = _chatter_simulator(cycle(8), adversary=adversary).run(5)
        # Round 0 traffic would arrive in round 1, when every node is down.
        assert all(node.received == 0 for node in result.nodes)
        assert result.metrics.dropped_messages == 16

    def test_p_zero_crashes_nobody(self):
        adversary = CrashStopAdversary(p=0.0, horizon=8, seed=3)
        result = _chatter_simulator(cycle(8), adversary=adversary).run(5)
        assert all(node.stepped == 5 for node in result.nodes)
        assert adversary.crashed_nodes(100) == []


# --------------------------------------------------------------------------- #
# specs, registry, grids
# --------------------------------------------------------------------------- #


class TestAdversarySpec:
    def test_registry_covers_all_models(self):
        assert {"loss", "delay", "churn", "crash"} <= set(ADVERSARIES)

    def test_create_validates_name_and_params(self):
        with pytest.raises(ConfigurationError):
            AdversarySpec.create("gremlin", p=0.5)
        with pytest.raises(ConfigurationError):
            AdversarySpec.create("loss", probability=0.5)  # bad kwarg
        with pytest.raises(ConfigurationError):
            AdversarySpec.create("loss", p=2.0)  # out of range

    def test_token_is_stable_and_order_insensitive(self):
        a = AdversarySpec.create("delay", p=0.1, max_delay=3)
        b = AdversarySpec.create("delay", max_delay=3, p=0.1)
        assert a == b
        assert a.token() == b.token() == "delay(max_delay=3,p=0.1)"

    def test_spec_is_picklable_and_hashable(self):
        spec = AdversarySpec.create("churn", p_down=0.1, p_up=0.5)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert spec in {spec}

    def test_make_adversary_binds_seed(self):
        spec = AdversarySpec.create("loss", p=0.25)
        adversary = make_adversary(spec, seed=42)
        assert isinstance(adversary, MessageLossAdversary)
        assert adversary.p == 0.25
        assert adversary.seed == 42

    def test_parse_adversary_params(self):
        parsed = parse_adversary_params(["p=0.05", "max_delay=3"])
        assert parsed == {"p": 0.05, "max_delay": 3}
        assert isinstance(parsed["max_delay"], int)
        with pytest.raises(ConfigurationError):
            parse_adversary_params(["p"])
        with pytest.raises(ConfigurationError):
            parse_adversary_params(["p=high"])

    def test_adversary_grid(self):
        specs = adversary_grid("loss", "p", [0.01, 0.05, 0.1])
        assert [dict(spec.params)["p"] for spec in specs] == [0.01, 0.05, 0.1]

    def test_dynamic_scenarios_are_well_formed(self):
        for name in DYNAMIC_SCENARIOS:
            ladder = dynamic_scenario(name)
            assert ladder[0] is None  # baseline rung first
            assert all(
                rung is None or rung.name in ADVERSARIES for rung in ladder
            )
        with pytest.raises(ConfigurationError):
            dynamic_scenario("sunny-day")

    def test_robustness_specs_names_are_unique(self):
        specs = robustness_specs(
            ["flooding", "uniform"],
            [cycle(8)],
            dynamic_scenario("lossy"),
            seeds=(0,),
        )
        names = [spec.name for spec in specs]
        assert len(set(names)) == len(names)
        assert "flooding" in names
        assert any(name.startswith("flooding@loss(") for name in names)


# --------------------------------------------------------------------------- #
# determinism through the experiment engine
# --------------------------------------------------------------------------- #

ADVERSARY_GRID = [
    AdversarySpec.create("loss", p=0.1),
    AdversarySpec.create("delay", p=0.2, max_delay=3),
    AdversarySpec.create("skew", p=0.4, max_skew=3),
    AdversarySpec.create("churn", p_down=0.1, p_up=0.5),
    AdversarySpec.create("crash", p=0.2, horizon=4),
    AdversarySpec.create(
        "composed", models="loss+delay", **{"loss.p": 0.1, "delay.p": 0.2}
    ),
    AdversarySpec.create(
        "composed", models="skew+delay", **{"skew.p": 0.3, "delay.p": 0.1}
    ),
]


def _adversarial_spec(adversary, name="flooding-under-faults"):
    return ExperimentSpec(
        name=name,
        runner=flooding_runner,
        topologies=[cycle(8), star(8), grid_2d(3, 3)],
        seeds=(0, 1, 2),
        collect_profile=False,
        adversary=adversary,
    )


class TestAdversarialSweepEquivalence:
    @pytest.mark.parametrize("adversary", ADVERSARY_GRID, ids=lambda s: s.token())
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_serial_and_parallel_identical(self, adversary, workers):
        spec = _adversarial_spec(adversary)
        serial = run_experiment(spec)
        parallel = run_experiment(spec, workers=workers)
        assert _comparable(parallel.cells) == _comparable(serial.cells)

    def test_adversarial_runs_are_repeatable(self):
        spec = AdversarySpec.create("loss", p=0.2)
        a = run_with_adversary(flooding_runner, torus_2d(4, 4), 3, spec)
        b = run_with_adversary(flooding_runner, torus_2d(4, 4), 3, spec)
        assert a.as_dict() == b.as_dict()
        assert a.parameters["adversary"] == spec.as_dict()

    def test_effective_runner_is_picklable(self):
        runner = effective_runner(_adversarial_spec(ADVERSARY_GRID[0]))
        clone = pickle.loads(pickle.dumps(runner))
        assert clone(cycle(8), 0).as_dict() == runner(cycle(8), 0).as_dict()

    def test_adversary_changes_results(self):
        baseline = run_experiment(_adversarial_spec(None, name="plain"))
        perturbed = run_experiment(_adversarial_spec(ADVERSARY_GRID[0]))
        assert _comparable(perturbed.cells) != _comparable(baseline.cells)
        assert all(cell.mean_dropped_messages > 0 for cell in perturbed.cells)

    def test_task_keys_include_adversary(self):
        plain_keys = {t.key for t in expand_run_tasks(_adversarial_spec(None))}
        loss_keys = {
            t.key for t in expand_run_tasks(_adversarial_spec(ADVERSARY_GRID[0]))
        }
        assert plain_keys.isdisjoint(loss_keys)
        assert all("loss(p=0.1)" in key for key in loss_keys)

    def test_checkpointed_adversarial_sweep_matches(self, tmp_path):
        spec = _adversarial_spec(ADVERSARY_GRID[0])
        plain = run_experiment(spec)
        checkpointed = run_experiment(
            spec, workers=2, checkpoint=tmp_path / "sweep.json"
        )
        assert _comparable(checkpointed.cells) == _comparable(plain.cells)
        # Replaying from the checkpoint reproduces the same cells, fault
        # counters included.
        replayed = run_experiment(spec, checkpoint=tmp_path / "sweep.json")
        assert _comparable(replayed.cells) == _comparable(plain.cells)

    def test_skew_sweep_bit_equivalent_across_all_backends(self, tmp_path):
        # The asynchrony adversary's full backend matrix in one place:
        # serial, pool (fork default), pool with the spawn start method,
        # and a 2-way sharded split merged and replayed — all cells
        # bit-identical (wall-clock aside).
        from repro.parallel import (
            manifest_path,
            merge_shard_checkpoints,
            run_experiments,
        )

        spec = _adversarial_spec(
            AdversarySpec.create("skew", p=0.4, max_skew=3),
            name="flooding-under-skew",
        )
        serial = run_experiment(spec)
        pooled = run_experiment(spec, workers=2)
        assert _comparable(pooled.cells) == _comparable(serial.cells)
        spawned = run_experiment(spec, workers=2, start_method="spawn")
        assert _comparable(spawned.cells) == _comparable(serial.cells)

        checkpoint = tmp_path / "ck" / "sweep.json"
        for shard_index in (0, 1):
            run_experiments([spec], checkpoint=checkpoint, shard=(shard_index, 2))
        merge_shard_checkpoints(manifest_path(checkpoint), checkpoint)
        replayed = run_experiment(spec, checkpoint=checkpoint)
        assert _comparable(replayed.cells) == _comparable(serial.cells)

    def test_checkpoint_not_replayed_across_adversaries(self, tmp_path):
        checkpoint = tmp_path / "sweep.json"
        run_experiment(_adversarial_spec(ADVERSARY_GRID[0]), checkpoint=checkpoint)
        direct = run_experiment(_adversarial_spec(ADVERSARY_GRID[1]))
        resumed = run_experiment(
            _adversarial_spec(ADVERSARY_GRID[1]), checkpoint=checkpoint
        )
        assert _comparable(resumed.cells) == _comparable(direct.cells)


# --------------------------------------------------------------------------- #
# safety under faults
# --------------------------------------------------------------------------- #

SAFETY_TOPOLOGIES = [
    cycle(8),
    star(8),
    grid_2d(3, 3),
    complete(6),
    hypercube(3),
    torus_2d(4, 4),
]


class TestSafetyUnderFaults:
    @pytest.mark.parametrize("p", [0.01, 0.02, 0.05])
    def test_irrevocable_never_elects_two_leaders_under_benign_loss(self, p):
        spec = AdversarySpec.create("loss", p=p)
        runs = [
            run_with_adversary(irrevocable_runner, topology, seed, spec)
            for topology in SAFETY_TOPOLOGIES
            for seed in range(5)
        ]
        assert safety_violations(runs) == []
        summary = summarize_safety(runs)
        assert summary["safety_rate"] == 1.0
        assert summary["runs"] == len(SAFETY_TOPOLOGIES) * 5

    def test_safety_helpers_catch_split_elections(self):
        # Flooding max-ID is *not* safe under loss: with the pinned seed
        # below the largest candidate's announcements die and a second
        # candidate also keeps its flag up.  The helpers must report it.
        spec = AdversarySpec.create("loss", p=0.05)
        run = run_with_adversary(flooding_runner, path(8), 3, spec)
        assert run.outcome.num_leaders == 2
        assert not run.outcome.safe
        summary = summarize_safety([run])
        assert summary["safe_runs"] == 0
        assert summary["violations"][0]["num_leaders"] == 2
        assert summary["violations"][0]["adversary"] == spec.as_dict()

    def test_safe_flag_on_outcomes(self):
        run = flooding_runner(cycle(8), 0)
        assert run.outcome.safe
        assert summarize_safety([run])["safety_rate"] == 1.0


# --------------------------------------------------------------------------- #
# fault observability: metrics counters and trace events
# --------------------------------------------------------------------------- #


class TestFaultObservability:
    def test_dropped_and_delayed_in_metrics_dict(self):
        collector = MetricsCollector()
        collector.record_dropped(3)
        collector.record_delayed(2)
        snap = collector.snapshot()
        assert snap.dropped_messages == 3
        assert snap.delayed_messages == 2
        assert snap.as_dict()["dropped_messages"] == 3
        assert snap.as_dict()["delayed_messages"] == 2
        with pytest.raises(ValueError):
            collector.record_dropped(-1)

    def test_fault_counters_merge(self):
        a = MetricsCollector()
        a.record_dropped(1)
        b = MetricsCollector()
        b.record_dropped(2)
        b.record_delayed(5)
        a.merge(b)
        assert a.dropped_messages == 3
        assert a.delayed_messages == 5

    def test_metrics_roundtrip_defaults(self):
        # Records written before the fault counters existed load as zero.
        assert Metrics(rounds=1, messages=2, bits=3).dropped_messages == 0

    def test_drop_events_traced(self):
        trace = TraceRecorder()
        simulator = _chatter_simulator(
            cycle(8), adversary=MessageLossAdversary(p=0.5, seed=1), trace=trace
        )
        result = simulator.run(5)
        dropped = trace.of_kind("message-dropped")
        assert len(dropped) == result.metrics.dropped_messages
        assert all("receiver" in event.detail for event in dropped)

    def test_delay_events_traced(self):
        trace = TraceRecorder()
        simulator = _chatter_simulator(
            cycle(8), adversary=MessageDelayAdversary(p=0.5, max_delay=2, seed=1),
            trace=trace,
        )
        result = simulator.run(5)
        delayed = trace.of_kind("message-delayed")
        assert len(delayed) == result.metrics.delayed_messages
        assert all(event.detail["delay"] >= 1 for event in delayed)

    def test_churn_and_crash_events_traced(self):
        trace = TraceRecorder()
        _chatter_simulator(
            cycle(8),
            adversary=LinkChurnAdversary(p_down=0.5, p_up=0.5, seed=1),
            trace=trace,
        ).run(5)
        assert trace.of_kind("link-down")

        trace = TraceRecorder()
        _chatter_simulator(
            cycle(8), adversary=CrashStopAdversary(p=1.0, horizon=2, seed=1),
            trace=trace,
        ).run(5)
        assert len(trace.of_kind("node-crash")) == 8


# --------------------------------------------------------------------------- #
# effective topology views
# --------------------------------------------------------------------------- #


class TestEffectiveTopologyView:
    def test_full_view_matches_base(self):
        topology = torus_2d(4, 4)
        view = EffectiveTopologyView(topology)
        assert view.num_edges == topology.num_edges
        assert view.is_connected()
        assert view.neighbors(0) == topology.neighbors(0)

    def test_removing_edges_updates_degrees_and_connectivity(self):
        topology = cycle(6)
        view = EffectiveTopologyView(topology, [(0, 1), (3, 4)])
        assert view.num_edges == 4
        assert view.degree(0) == 1
        assert not view.is_connected()
        components = sorted(view.connected_components())
        assert components == [[0, 4, 5], [1, 2, 3]]

    def test_unknown_down_edge_rejected(self):
        from repro.core.errors import TopologyError

        with pytest.raises(TopologyError):
            EffectiveTopologyView(cycle(6), [(0, 3)])

    def test_as_topology_materialises_subgraph(self):
        view = EffectiveTopologyView(cycle(6), [(0, 1)])
        materialised = view.as_topology()
        assert materialised.num_edges == 5
        assert materialised.num_nodes == 6
        assert not materialised.has_edge(0, 1)

    def test_disconnected_base_reported_even_with_no_down_edges(self):
        snapshot = EffectiveTopologyView(cycle(6), [(0, 1), (3, 4)]).as_topology()
        assert not EffectiveTopologyView(snapshot).is_connected()


# --------------------------------------------------------------------------- #
# composed adversaries: loss + delay + churn (+ crash) in one run
# --------------------------------------------------------------------------- #


class TestComposedAdversary:
    def test_registered_and_created_via_spec(self):
        from repro.dynamics import ComposedAdversary

        assert "composed" in ADVERSARIES
        spec = AdversarySpec.create(
            "composed", models="loss+delay", **{"loss.p": 0.05}
        )
        adversary = make_adversary(spec, seed=3)
        assert isinstance(adversary, ComposedAdversary)
        assert [part.name for part in adversary.parts] == ["loss", "delay"]
        description = adversary.describe()
        assert description["models"] == "loss+delay"
        assert description["parts"][0]["p"] == 0.05

    def test_cli_spelling(self):
        from repro.dynamics import spec_from_cli

        spec = spec_from_cli(
            "composed:loss+delay", {"loss.p": 0.05, "delay.max_delay": 2}
        )
        assert spec.name == "composed"
        assert dict(spec.params)["models"] == "loss+delay"
        with pytest.raises(ConfigurationError, match="composed"):
            spec_from_cli("loss:delay", {})
        # Plain names still pass through unchanged.
        assert spec_from_cli("loss", {"p": 0.1}).name == "loss"

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="models"):
            AdversarySpec.create("composed")
        with pytest.raises(ConfigurationError, match="twice"):
            AdversarySpec.create("composed", models="loss+loss")
        with pytest.raises(ConfigurationError, match="cannot include"):
            AdversarySpec.create("composed", models="composed+loss")
        with pytest.raises(ConfigurationError, match="cannot include"):
            AdversarySpec.create("composed", models="gremlin")
        with pytest.raises(ConfigurationError, match="expected <model>.<param>"):
            AdversarySpec.create("composed", models="loss+delay", p=0.5)
        with pytest.raises(ConfigurationError, match="loss"):
            AdversarySpec.create("composed", models="loss", **{"loss.nope": 1})

    def test_composed_spec_helper(self):
        from repro.dynamics import composed_spec

        spec = composed_spec(
            AdversarySpec.create("loss", p=0.1),
            AdversarySpec.create("delay", p=0.2, max_delay=3),
        )
        assert spec == AdversarySpec.create(
            "composed",
            models="loss+delay",
            **{"loss.p": 0.1, "delay.p": 0.2, "delay.max_delay": 3},
        )
        with pytest.raises(ConfigurationError):
            composed_spec()

    def test_noop_parts_change_nothing(self):
        spec = AdversarySpec.create(
            "composed", models="loss+delay", **{"loss.p": 0.0, "delay.p": 0.0}
        )
        plain = flooding_runner(cycle(8), 3)
        perturbed = run_with_adversary(flooding_runner, cycle(8), 3, spec)
        assert perturbed.outcome.as_dict() == plain.outcome.as_dict()
        assert perturbed.metrics.dropped_messages == 0
        assert perturbed.metrics.delayed_messages == 0

    def test_all_parts_perturb(self):
        spec = AdversarySpec.create(
            "composed",
            models="loss+delay",
            **{"loss.p": 0.2, "delay.p": 0.3, "delay.max_delay": 2},
        )
        result = run_with_adversary(flooding_runner, torus_2d(4, 4), 1, spec)
        assert result.metrics.dropped_messages > 0
        assert result.metrics.delayed_messages > 0

    def test_crash_part_deactivates_nodes(self):
        from repro.dynamics import make_adversary

        spec = AdversarySpec.create(
            "composed", models="loss+crash", **{"loss.p": 0.0, "crash.p": 1.0, "crash.horizon": 1}
        )
        adversary = make_adversary(spec, seed=0)
        simulator = _chatter_simulator(cycle(8), adversary=adversary)
        simulator.run(3)
        assert all(not adversary.node_active(2, node) for node in range(8))

    def test_rng_streams_are_separated_per_part(self):
        # The loss part of a composition must not replay the standalone
        # loss model's stream: otherwise composing adversaries would
        # correlate their schedules with single-model baselines.
        loss_alone = run_with_adversary(
            flooding_runner, torus_2d(4, 4), 7, AdversarySpec.create("loss", p=0.3)
        )
        composed = run_with_adversary(
            flooding_runner,
            torus_2d(4, 4),
            7,
            AdversarySpec.create(
                "composed", models="loss+delay", **{"loss.p": 0.3, "delay.p": 0.0}
            ),
        )
        assert (
            composed.metrics.dropped_messages != loss_alone.metrics.dropped_messages
            or composed.outcome.as_dict() != loss_alone.outcome.as_dict()
            or composed.metrics.messages != loss_alone.metrics.messages
        )

    def test_repeatable_and_token_stable(self):
        spec = AdversarySpec.create(
            "composed", models="loss+churn", **{"loss.p": 0.1, "churn.p_down": 0.05}
        )
        a = run_with_adversary(flooding_runner, grid_2d(3, 3), 5, spec)
        b = run_with_adversary(flooding_runner, grid_2d(3, 3), 5, spec)
        assert a.as_dict() == b.as_dict()
        assert "models='loss+churn'" in spec.token()
        # Parameter order never changes the token (and thus task keys).
        assert spec.token() == AdversarySpec.create(
            "composed", **{"churn.p_down": 0.05, "loss.p": 0.1}, models="loss+churn"
        ).token()

    def test_stormy_scenario_is_composed(self):
        ladder = dynamic_scenario("stormy")
        assert ladder[0] is None
        assert all(spec.name == "composed" for spec in ladder[1:])
        assert "stormy" in DYNAMIC_SCENARIOS

    def test_skewed_scenario_dials_up_link_coverage(self):
        ladder = dynamic_scenario("skewed")
        assert ladder[0] is None
        assert [spec.name for spec in ladder[1:]] == ["skew"] * 3
        coverages = [dict(spec.params)["p"] for spec in ladder[1:]]
        assert coverages == sorted(coverages)

    def test_asynchronous_scenario_composes_skew_with_jitter(self):
        ladder = dynamic_scenario("asynchronous")
        assert ladder[0] is None
        for rung in ladder[1:]:
            assert rung.name == "composed"
            assert "skew" in dict(rung.params)["models"]
            assert "delay" in dict(rung.params)["models"]


# --------------------------------------------------------------------------- #
# message conservation and delayed-message accounting
# --------------------------------------------------------------------------- #


class TestMessageConservationUnderFaults:
    """sent == delivered + dropped + pending, whatever the adversary does."""

    @pytest.mark.parametrize("adversary", ADVERSARY_GRID, ids=lambda s: s.token())
    def test_identity_on_every_adversarial_grid_entry(self, adversary):
        simulator = _chatter_simulator(
            torus_2d(4, 4), adversary=make_adversary(adversary, 7)
        )
        simulator.run(10)
        metrics = simulator.metrics
        assert metrics.sent_messages == (
            metrics.delivered_messages
            + metrics.dropped_messages
            + simulator.pending_delayed()
        )

    def test_pending_delayed_exposed_mid_run(self):
        adversary = MessageDelayAdversary(p=0.6, max_delay=5, seed=3)
        simulator = _chatter_simulator(torus_2d(4, 4), adversary=adversary)
        simulator.run(2)
        metrics = simulator.metrics
        assert simulator.pending_delayed() > 0
        assert metrics.sent_messages == (
            metrics.delivered_messages
            + metrics.dropped_messages
            + simulator.pending_delayed()
        )

    def test_delayed_messages_drain_across_run_calls(self):
        # Messages delayed past the end of one run() call must arrive in
        # the next, not leak: a single round-0 burst, delayed with
        # certainty, fully resolves once enough further rounds execute.
        class BurstNode(ProtocolNode):
            def step(self, round_index, inbox):
                if round_index == 0:
                    return {port: Ping() for port in self.ports()}
                return {}

        topology = cycle(8)
        nodes = build_nodes(topology, lambda i, p, rng: BurstNode(p, rng), seed=0)
        adversary = MessageDelayAdversary(p=1.0, max_delay=4, seed=5)
        simulator = SynchronousSimulator(topology, nodes, adversary=adversary)
        simulator.run(2)
        assert simulator.pending_delayed() > 0
        simulator.run(8)
        assert simulator.pending_delayed() == 0
        metrics = simulator.metrics
        assert metrics.sent_messages == 16
        assert metrics.delivered_messages + metrics.dropped_messages == 16

    def test_identity_under_composed_skew_delay(self):
        spec = AdversarySpec.create(
            "composed", models="skew+delay", **{"skew.p": 0.3, "delay.p": 0.2}
        )
        simulator = _chatter_simulator(
            torus_2d(4, 4), adversary=make_adversary(spec, 11)
        )
        simulator.run(6)
        metrics = simulator.metrics
        assert metrics.delayed_messages > 0
        assert metrics.sent_messages == (
            metrics.delivered_messages
            + metrics.dropped_messages
            + simulator.pending_delayed()
        )


# --------------------------------------------------------------------------- #
# crash-stop termination
# --------------------------------------------------------------------------- #


class TestCrashStopTermination:
    """A run whose every node crashed must stop, not spin to max_rounds."""

    def test_all_crashed_terminates_run_early(self):
        adversary = CrashStopAdversary(p=1.0, horizon=1, seed=3)
        result = _chatter_simulator(cycle(8), adversary=adversary).run(5)
        # Round 0 runs normally; round 1 executes the crashes (so their
        # fault events are recorded) and then the run terminates instead
        # of stepping a fully-dead network for three more rounds.
        assert result.rounds_executed == 2
        assert result.metrics.events["fault.node-crash"] == 8

    def test_no_crashes_still_runs_to_max_rounds(self):
        adversary = CrashStopAdversary(p=0.0, horizon=8, seed=3)
        result = _chatter_simulator(cycle(8), adversary=adversary).run(5)
        assert result.rounds_executed == 5

    def test_survivors_keep_the_run_alive(self):
        adversary = CrashStopAdversary(p=0.5, horizon=2, seed=21)
        result = _chatter_simulator(cycle(8), adversary=adversary).run(6)
        crashed = adversary.crashed_nodes(6)
        assert 0 < len(crashed) < 8
        assert result.rounds_executed == 6
