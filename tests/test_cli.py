"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import ELECTION_RUNNERS, build_parser, main, parse_topology
from repro.core.errors import ReproError


class TestParseTopology:
    def test_simple_family(self):
        topology = parse_topology("cycle:12")
        assert topology.num_nodes == 12

    def test_multi_argument_family(self):
        topology = parse_topology("torus_2d:4:5")
        assert topology.num_nodes == 20

    def test_random_family_uses_seed(self):
        a = parse_topology("random_regular:16:4", seed=3)
        b = parse_topology("random_regular:16:4", seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_unknown_family(self):
        with pytest.raises(ReproError):
            parse_topology("moebius:12")

    def test_bad_arguments(self):
        with pytest.raises(ReproError):
            parse_topology("cycle:3:4:5:6")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_elect_arguments(self):
        args = build_parser().parse_args(
            ["elect", "--algorithm", "flooding", "--topology", "cycle:8", "--seed", "5"]
        )
        assert args.algorithm == "flooding"
        assert args.seed == 5

    def test_all_election_runners_are_exposed(self):
        assert {"irrevocable", "revocable", "flooding", "gilbert", "uniform"} <= set(
            ELECTION_RUNNERS
        )


class TestCommands:
    def test_analyze(self, capsys):
        assert main(["analyze", "--topology", "cycle:10"]) == 0
        out = capsys.readouterr().out
        assert "expansion profile" in out
        assert "mixing_time" in out

    def test_elect_flooding(self, capsys):
        code = main(
            ["elect", "--algorithm", "flooding", "--topology", "cycle:12", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "unique leader" in out

    def test_elect_irrevocable_with_explicit_extension(self, capsys):
        code = main(
            [
                "elect",
                "--algorithm",
                "irrevocable",
                "--topology",
                "cycle:10",
                "--seed",
                "4",
                "--explicit",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "explicit extension" in out

    def test_elect_unknown_topology_returns_error_code(self, capsys):
        code = main(["elect", "--algorithm", "flooding", "--topology", "moebius:3"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_elect_trace_under_adversary_exports_fault_events(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        main(
            [
                "elect",
                "--algorithm",
                "flooding",
                "--topology",
                "cycle:8",
                "--seed",
                "1",
                "--adversary",
                "loss",
                "--adversary-param",
                "p=0.3",
                "--trace",
                str(trace),
            ]
        )
        out = capsys.readouterr().out
        assert "adversary            : loss(p=0.3)" in out
        assert "trace events" in out
        lines = [
            json.loads(line)
            for line in trace.read_text(encoding="utf-8").splitlines()
        ]
        assert lines[0]["kind"] == "trace"
        assert lines[0]["events"] == len(lines) - 1 > 0
        assert any(line["event"] == "message-dropped" for line in lines[1:])

    def test_elect_trace_without_adversary_exports_empty_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "elect",
                "--algorithm",
                "flooding",
                "--topology",
                "cycle:8",
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        assert "trace events         : 0" in capsys.readouterr().out
        assert trace.exists()

    def test_elect_adversary_param_requires_adversary(self, capsys):
        code = main(
            [
                "elect",
                "--algorithm",
                "flooding",
                "--topology",
                "cycle:8",
                "--adversary-param",
                "p=0.3",
            ]
        )
        assert code == 2
        assert "--adversary-param requires --adversary" in capsys.readouterr().err

    def test_compare(self, capsys):
        code = main(
            [
                "compare",
                "--topology",
                "cycle:10",
                "--seeds",
                "1",
                "--algorithms",
                "flooding",
                "uniform",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "comparison on cycle(n=10)" in out
        assert "flooding" in out and "uniform" in out

    def test_sweep_serial(self, capsys):
        code = main(
            [
                "sweep",
                "--suite",
                "tiny",
                "--algorithms",
                "flooding",
                "--seeds",
                "2",
                "--no-profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep over suite 'tiny'" in out
        assert "flooding-max-id" in out

    def test_sweep_parallel_with_checkpoint_matches_serial(self, capsys, tmp_path):
        checkpoint = tmp_path / "sweep.json"
        args = [
            "sweep",
            "--suite",
            "tiny",
            "--algorithms",
            "flooding",
            "--seeds",
            "2",
            "--no-profile",
        ]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(args + ["--workers", "2", "--checkpoint", str(checkpoint)]) == 0
        )
        parallel_out = capsys.readouterr().out
        assert checkpoint.exists()

        def rows_without_wall_clock(text):
            return [line.rsplit("|", 1)[0] for line in text.splitlines()[2:]]

        assert rows_without_wall_clock(parallel_out) == rows_without_wall_clock(
            serial_out
        )

    def test_sweep_unknown_suite_returns_error_code(self, capsys):
        code = main(["sweep", "--suite", "nope", "--algorithms", "flooding"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_rejects_non_positive_timeouts(self, capsys):
        base = ["sweep", "--suite", "tiny", "--algorithms", "flooding"]
        for flag, name in (
            ("--lease-timeout", "lease_timeout"),
            ("--task-timeout", "task_timeout"),
        ):
            for bad in ("0", "-2.5", "nan"):
                assert main(base + [flag, bad]) == 2
                assert name in capsys.readouterr().err

    def test_sweep_derive_seeds(self, capsys):
        code = main(
            [
                "sweep",
                "--suite",
                "tiny",
                "--algorithms",
                "uniform",
                "--seeds",
                "2",
                "--derive-seeds",
                "--base-seed",
                "11",
                "--no-profile",
            ]
        )
        assert code == 0
        assert "uniform-id" in capsys.readouterr().out

    def test_impossibility(self, capsys):
        code = main(["impossibility", "--n", "4", "--witnesses", "2", "--trials", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pumping-wheel demonstration" in out


class TestSweepDynamics:
    BASE = ["sweep", "--suite", "tiny", "--algorithms", "flooding", "--seeds", "2", "--no-profile"]

    def test_sweep_with_adversary_reports_safety(self, capsys):
        code = main(self.BASE + ["--adversary", "loss", "--adversary-param", "p=0.02"])
        out = capsys.readouterr().out
        assert "safety under faults" in out
        assert "mean_dropped_messages" in out
        assert code in (0, 1)  # 1 only on a safety violation

    def test_sweep_adversary_deterministic_across_workers(self, capsys):
        args = self.BASE + ["--adversary", "loss", "--adversary-param", "p=0.05"]
        main(args)
        serial_out = capsys.readouterr().out
        main(args + ["--workers", "2"])
        parallel_out = capsys.readouterr().out

        def rows_without_wall_clock(text):
            return [line.rsplit("|", 1)[0] for line in text.splitlines()[2:]]

        assert rows_without_wall_clock(parallel_out) == rows_without_wall_clock(
            serial_out
        )

    def test_sweep_scenario(self, capsys):
        code = main(self.BASE + ["--scenario", "lossy"])
        out = capsys.readouterr().out
        assert "flooding@loss(p=0.01)" in out
        assert "safety under faults" in out
        assert "robustness curves" in out
        assert code in (0, 1)

    def test_sweep_skewed_scenario_prints_curves(self, capsys):
        code = main(self.BASE + ["--scenario", "skewed"])
        out = capsys.readouterr().out
        assert "flooding@skew(max_skew=3,p=0.1)" in out
        assert "robustness curves" in out
        # The curve table has the baseline rung and every skew rung.
        curve_lines = [
            line for line in out.splitlines() if line.startswith("flooding-max-id")
        ]
        assert len(curve_lines) == 4
        assert code in (0, 1)

    def test_sweep_progress_reports_completed_over_total(self, capsys):
        code = main(self.BASE + ["--progress"])
        captured = capsys.readouterr()
        assert code == 0
        # tiny suite x 2 seeds = 10 runs; the final line always lands.
        assert "progress: 10/10 runs (100.0%)" in captured.err

    def test_sweep_progress_counts_the_shard_slice(self, capsys, tmp_path):
        code = main(
            self.BASE
            + [
                "--progress",
                "--checkpoint",
                str(tmp_path / "sweep.json"),
                "--shard",
                "0/2",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "progress[shard 0/2]: 5/5 runs (100.0%)" in captured.err

    def test_sweep_rejects_bad_workers(self, capsys):
        code = main(self.BASE + ["--workers", "0"])
        assert code == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_sweep_rejects_unknown_adversary(self, capsys):
        code = main(self.BASE + ["--adversary", "gremlin"])
        assert code == 2
        assert "unknown adversary" in capsys.readouterr().err

    def test_sweep_rejects_bad_adversary_param(self, capsys):
        code = main(
            self.BASE + ["--adversary", "loss", "--adversary-param", "p=lots"]
        )
        assert code == 2
        assert "adversary-param" in capsys.readouterr().err

    def test_sweep_rejects_param_without_adversary(self, capsys):
        code = main(self.BASE + ["--adversary-param", "p=0.1"])
        assert code == 2
        assert "requires --adversary" in capsys.readouterr().err

    def test_sweep_rejects_compact_without_checkpoint(self, capsys):
        code = main(self.BASE + ["--checkpoint-compact"])
        assert code == 2
        assert "requires --checkpoint" in capsys.readouterr().err

    def test_sweep_rejects_adversary_and_scenario_together(self, capsys):
        code = main(
            self.BASE + ["--adversary", "loss", "--scenario", "lossy"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_sweep_composed_adversary(self, capsys):
        code = main(
            self.BASE
            + [
                "--adversary",
                "composed:loss+delay",
                "--adversary-param",
                "loss.p=0.02",
                "--adversary-param",
                "delay.p=0.1",
            ]
        )
        out = capsys.readouterr().out
        assert "composed(" in out
        assert "safety under faults" in out
        assert code in (0, 1)

    def test_sweep_rejects_composed_suffix_on_plain_adversary(self, capsys):
        code = main(self.BASE + ["--adversary", "loss:delay"])
        assert code == 2
        assert "composed" in capsys.readouterr().err

    def test_sweep_checkpoint_compact(self, capsys, tmp_path):
        import json

        checkpoint = tmp_path / "ck.json"
        code = main(
            self.BASE + ["--checkpoint", str(checkpoint), "--checkpoint-compact"]
        )
        assert code == 0
        from repro.parallel import JsonlCheckpointStore

        runs = JsonlCheckpointStore(checkpoint).load()
        assert runs
        assert all("node_results" not in record for record in runs.values())
        capsys.readouterr()

    def test_sweep_creates_missing_checkpoint_directories(self, capsys, tmp_path):
        checkpoint = tmp_path / "deeply" / "nested" / "ck.json"
        assert main(self.BASE + ["--checkpoint", str(checkpoint)]) == 0
        assert checkpoint.exists()
        capsys.readouterr()


class TestSweepSharding:
    BASE = [
        "sweep",
        "--suite",
        "tiny",
        "--algorithms",
        "flooding",
        "--seeds",
        "2",
        "--no-profile",
    ]

    def test_shard_requires_checkpoint(self, capsys):
        code = main(self.BASE + ["--shard", "0/2"])
        assert code == 2
        assert "--shard requires --checkpoint" in capsys.readouterr().err

    @pytest.mark.parametrize("shard", ["2/2", "3/2", "-1/2", "1/0", "x/y", "1"])
    def test_shard_rejects_bad_specs(self, capsys, tmp_path, shard):
        # --shard=... spelling: argparse would otherwise eat "-1/2" as an option.
        code = main(
            self.BASE
            + ["--checkpoint", str(tmp_path / "ck.json"), f"--shard={shard}"]
        )
        assert code == 2
        assert "shard" in capsys.readouterr().err

    def test_sharded_sweep_merge_replay_matches_unsharded(self, capsys, tmp_path):
        assert main(self.BASE) == 0
        unsharded_out = capsys.readouterr().out

        checkpoint = tmp_path / "sweep.json"
        sharded = self.BASE + ["--checkpoint", str(checkpoint)]
        assert main(sharded + ["--shard", "0/2"]) == 0
        shard_out = capsys.readouterr().out
        assert "shard 0/2" in shard_out
        assert main(sharded + ["--shard", "1/2"]) == 0
        capsys.readouterr()

        manifest = tmp_path / "sweep.manifest.json"
        assert manifest.exists()
        assert main(["merge", "--manifest", str(manifest)]) == 0
        merge_out = capsys.readouterr().out
        assert "shard merge" in merge_out
        assert "tasks_missing" in merge_out

        # Replaying the merged checkpoint reproduces the unsharded sweep
        # (wall-clock column aside).
        assert main(sharded) == 0
        merged_out = capsys.readouterr().out

        def rows_without_wall_clock(text):
            return [line.rsplit("|", 1)[0] for line in text.splitlines()[1:]]

        assert rows_without_wall_clock(merged_out) == rows_without_wall_clock(
            unsharded_out
        )

    def test_empty_slice_shard_job_exits_zero(self, capsys, tmp_path):
        # 5 tiny-suite topologies x 1 seed = 5 tasks split 8 ways: shards
        # 5..7 run nothing — which is success, not failure, for a job
        # scheduler watching exit codes.
        base = [
            "sweep",
            "--suite",
            "tiny",
            "--algorithms",
            "flooding",
            "--seeds",
            "1",
            "--no-profile",
            "--checkpoint",
            str(tmp_path / "ck.json"),
        ]
        for index in range(8):
            assert main(base + ["--shard", f"{index}/8"]) == 0
        capsys.readouterr()
        assert main(["merge", "--manifest", str(tmp_path / "ck.manifest.json")]) == 0
        out = capsys.readouterr().out
        summary = {
            key.strip(): value.strip()
            for key, _, value in (
                line.partition(":") for line in out.splitlines() if ":" in line
            )
        }
        assert summary["missing_shards"] == "0"
        assert summary["tasks_missing"] == "0"
        assert summary["tasks_merged"] == "5"

    def test_merge_missing_manifest_reports_error(self, capsys, tmp_path):
        code = main(["merge", "--manifest", str(tmp_path / "nope.manifest.json")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_merge_requires_derivable_output(self, capsys, tmp_path):
        path = tmp_path / "index.json"  # no ".manifest" in the name
        path.write_text("{}")
        code = main(["merge", "--manifest", str(path)])
        assert code == 2
        assert "--output" in capsys.readouterr().err
