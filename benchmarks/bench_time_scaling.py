"""Experiment ``fig-time-scaling``: round complexity vs mixing time.

Theorem 1's time bound is ``O(t_mix·log² n)``.  The benchmark runs the
protocol on two graph families at opposite ends of the mixing spectrum —
4-regular expanders (``t_mix = O(log n)``-ish) and cycles
(``t_mix = Θ̃(n²)``) — and reports measured rounds next to the bound
``t_mix·log² n``, including the ratio between them, which should stay
within a constant band if the implementation tracks the theorem.
"""

from __future__ import annotations

import pytest

from repro.analysis import ratio_spread, theory_ratio_series
from repro.election import IrrevocableConfig, run_irrevocable_election
from repro.workloads import scaling_family

from _harness import profile_for, record_report, rows_table

EXPERIMENT_ID = "fig-time-scaling"
EXPANDER_SIZES = (32, 64, 128)
CYCLE_SIZES = (8, 16, 32)
SEED = 1


def _run_family(family: str, sizes):
    rows = []
    for topology in scaling_family(family, sizes, seed=31):
        profile = profile_for(topology)
        config = IrrevocableConfig(
            n=topology.num_nodes,
            t_mix=profile.mixing_time,
            conductance=profile.conductance,
        )
        result = run_irrevocable_election(topology, seed=SEED, config=config)
        import math

        log_n = max(1.0, math.log(topology.num_nodes))
        rows.append(
            {
                "family": family,
                "n": topology.num_nodes,
                "t_mix": profile.mixing_time,
                "rounds": result.rounds_executed,
                "bound t_mix*log^2 n": profile.mixing_time * log_n ** 2,
                "rounds / bound": result.rounds_executed
                / (profile.mixing_time * log_n ** 2),
                "unique_leader": result.success,
            }
        )
    return rows


def _run_all():
    return _run_family("random_regular", EXPANDER_SIZES) + _run_family(
        "cycle", CYCLE_SIZES
    )


@pytest.mark.benchmark(group=EXPERIMENT_ID)
def test_time_scaling(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    record_report(
        EXPERIMENT_ID,
        rows_table(rows, "Rounds vs the O(t_mix log^2 n) bound (Theorem 1)"),
    )

    # --- shape checks ---------------------------------------------------- #
    # The measured rounds must track the bound up to a constant: the ratio
    # series should not drift by more than a small factor across sizes
    # within each family.
    for family, sizes in (("random_regular", EXPANDER_SIZES), ("cycle", CYCLE_SIZES)):
        family_rows = [row for row in rows if row["family"] == family]
        series = theory_ratio_series(
            [row["t_mix"] * max(1.0, __import__("math").log(row["n"])) ** 2 for row in family_rows],
            [row["rounds"] for row in family_rows],
            lambda bound: bound,
        )
        assert ratio_spread(series) < 4.0, family
    # Cycles mix far more slowly, so they must cost far more rounds even at
    # smaller n — the qualitative dependence on t_mix.
    expander_64 = next(r for r in rows if r["family"] == "random_regular" and r["n"] == 64)
    cycle_32 = next(r for r in rows if r["family"] == "cycle" and r["n"] == 32)
    assert cycle_32["rounds"] > expander_64["rounds"]
    assert all(row["unique_leader"] for row in rows)
