"""Experiment ``fig-time-scaling``: round complexity vs mixing time.

Theorem 1's time bound is ``O(t_mix·log² n)``.  The benchmark runs the
protocol on two graph families at opposite ends of the mixing spectrum —
4-regular expanders (``t_mix = O(log n)``-ish) and cycles
(``t_mix = Θ̃(n²)``) — and reports measured rounds next to the bound
``t_mix·log² n``, including the ratio between them, which should stay
within a constant band if the implementation tracks the theorem.

The file also carries ``bench-backend-speedup``: the same election
workload timed under both simulator cores (``backend="round"`` vs
``backend="event"``).  Slow-mixing cycles are the quiescence-heavy case
the event core exists for — most nodes idle through most of the long walk
and convergecast phases — so this is where its speedup is measured and
its bit-for-bit equivalence to the round core is re-asserted at bench
scale.  ``REPRO_BENCH_SMOKE=1`` switches the comparison to a seconds-long
configuration with no speedup threshold (CI wiring check); smoke results
are recorded under a separate experiment id.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis import ratio_spread, theory_ratio_series
from repro.core import backend_scope
from repro.election import IrrevocableConfig, run_irrevocable_election
from repro.workloads import scaling_family

from _harness import profile_for, record_bench_json, record_report, rows_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

EXPERIMENT_ID = "fig-time-scaling"
EXPANDER_SIZES = (32, 64, 128)
CYCLE_SIZES = (8, 16, 32)
SEED = 1

BACKEND_EXPERIMENT_ID = "bench-backend-speedup" + ("-smoke" if SMOKE else "")
BACKEND_CYCLE_SIZES = (8, 16) if SMOKE else CYCLE_SIZES
BACKEND_EXPANDER_SIZES = (32,) if SMOKE else (32, 64)


def _run_family(family: str, sizes):
    rows = []
    for topology in scaling_family(family, sizes, seed=31):
        profile = profile_for(topology)
        config = IrrevocableConfig(
            n=topology.num_nodes,
            t_mix=profile.mixing_time,
            conductance=profile.conductance,
        )
        result = run_irrevocable_election(topology, seed=SEED, config=config)
        import math

        log_n = max(1.0, math.log(topology.num_nodes))
        rows.append(
            {
                "family": family,
                "n": topology.num_nodes,
                "t_mix": profile.mixing_time,
                "rounds": result.rounds_executed,
                "bound t_mix*log^2 n": profile.mixing_time * log_n ** 2,
                "rounds / bound": result.rounds_executed
                / (profile.mixing_time * log_n ** 2),
                "unique_leader": result.success,
            }
        )
    return rows


def _run_all():
    return _run_family("random_regular", EXPANDER_SIZES) + _run_family(
        "cycle", CYCLE_SIZES
    )


@pytest.mark.benchmark(group=EXPERIMENT_ID)
def test_time_scaling(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    record_report(
        EXPERIMENT_ID,
        rows_table(rows, "Rounds vs the O(t_mix log^2 n) bound (Theorem 1)"),
    )

    # --- shape checks ---------------------------------------------------- #
    # The measured rounds must track the bound up to a constant: the ratio
    # series should not drift by more than a small factor across sizes
    # within each family.
    for family, sizes in (("random_regular", EXPANDER_SIZES), ("cycle", CYCLE_SIZES)):
        family_rows = [row for row in rows if row["family"] == family]
        series = theory_ratio_series(
            [row["t_mix"] * max(1.0, __import__("math").log(row["n"])) ** 2 for row in family_rows],
            [row["rounds"] for row in family_rows],
            lambda bound: bound,
        )
        assert ratio_spread(series) < 4.0, family
    # Cycles mix far more slowly, so they must cost far more rounds even at
    # smaller n — the qualitative dependence on t_mix.
    expander_64 = next(r for r in rows if r["family"] == "random_regular" and r["n"] == 64)
    cycle_32 = next(r for r in rows if r["family"] == "cycle" and r["n"] == 32)
    assert cycle_32["rounds"] > expander_64["rounds"]
    assert all(row["unique_leader"] for row in rows)


# --------------------------------------------------------------------------- #
# bench-backend-speedup: event-driven core vs round-robin core
# --------------------------------------------------------------------------- #


def _backend_workload():
    """The (topology, config) list both cores are timed over."""
    workload = []
    for family, sizes in (
        ("cycle", BACKEND_CYCLE_SIZES),
        ("random_regular", BACKEND_EXPANDER_SIZES),
    ):
        for topology in scaling_family(family, sizes, seed=31):
            profile = profile_for(topology)
            config = IrrevocableConfig(
                n=topology.num_nodes,
                t_mix=profile.mixing_time,
                conductance=profile.conductance,
            )
            workload.append((family, topology, config))
    return workload


def _timed_backend(backend, workload):
    """Run the workload under one core; return (fingerprints, seconds)."""
    # repro: disable=REP102 — backend speedup is a wall-clock measurement
    started = time.perf_counter()
    fingerprints = []
    with backend_scope(backend):
        for family, topology, config in workload:
            result = run_irrevocable_election(topology, seed=SEED, config=config)
            fingerprints.append((family, topology.num_nodes, result.as_dict()))
    return fingerprints, time.perf_counter() - started  # repro: disable=REP102 — measurand


@pytest.mark.benchmark(group=BACKEND_EXPERIMENT_ID)
def test_event_backend_speedup(benchmark):
    # Build the workload (and pay the cached expansion profiles) before
    # timing, so neither core is charged for mixing-time computation.
    workload = _backend_workload()

    def _compare():
        round_fps, round_seconds = _timed_backend("round", workload)
        event_fps, event_seconds = _timed_backend("event", workload)
        return round_fps, round_seconds, event_fps, event_seconds

    round_fps, round_seconds, event_fps, event_seconds = benchmark.pedantic(
        _compare, rounds=1, iterations=1
    )

    speedup = round_seconds / event_seconds if event_seconds > 0 else float("inf")
    rows = [
        {"family": family, "n": n, "rounds": record["rounds"]}
        for family, n, record in event_fps
    ]
    record_report(
        BACKEND_EXPERIMENT_ID,
        rows_table(rows, "Workload of the round-vs-event core comparison"),
        f"round core: {round_seconds:.3f}s  event core: {event_seconds:.3f}s  "
        f"speedup: {speedup:.2f}x",
    )
    record_bench_json(
        BACKEND_EXPERIMENT_ID,
        {
            "cycle_sizes": list(BACKEND_CYCLE_SIZES),
            "expander_sizes": list(BACKEND_EXPANDER_SIZES),
            "seed": SEED,
            "round_seconds": round_seconds,
            "event_seconds": event_seconds,
            "speedup_event_vs_round": speedup,
            "smoke": SMOKE,
        },
    )

    # --- shape checks ----------------------------------------------------- #
    # Equivalence is non-negotiable in either mode: the event core must
    # reproduce every election outcome and metric bit for bit.
    assert event_fps == round_fps

    if not SMOKE:
        # On the quiescence-heavy workload the event core must actually
        # pay for itself; smoke mode only checks the wiring.
        assert speedup >= 2.0, f"event core speedup {speedup:.2f}x below 2x"
