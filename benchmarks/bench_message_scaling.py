"""Experiment ``fig-msg-scaling``: message complexity vs network size.

Theorem 1 claims ``Õ(√(n·t_mix)/Φ)`` messages against the ``Õ(t_mix·√n)``
of Gilbert et al. [10] — an improvement by ``Õ(√(t_mix·Φ))``, largest on
well-connected graphs.  The paper states this as a bound rather than a
plot; this benchmark produces the corresponding *figure-style* series:
measured messages vs ``n`` on a 4-regular expander family for both
protocols, the fitted power-law exponents, and the per-size improvement
ratio.

Shape checks: on expanders (``t_mix``, ``Φ`` roughly constant) both
algorithms must scale clearly sublinearly in ``m·D``-style flooding costs,
the fitted exponent of this work must not exceed the baseline's by more
than noise, and this work must use fewer messages at every measured size.
"""

from __future__ import annotations

import pytest

from repro.analysis import fit_power_law, render_series
from repro.baselines import GilbertConfig, run_gilbert_election
from repro.election import IrrevocableConfig, run_irrevocable_election
from repro.workloads import scaling_family

from _harness import profile_for, record_report, rows_table

EXPERIMENT_ID = "fig-msg-scaling"
SIZES = (32, 64, 128)
SEEDS = (0, 1)


def _run_series():
    rows = []
    for topology in scaling_family("random_regular", SIZES, seed=23):
        profile = profile_for(topology)
        ours_config = IrrevocableConfig(
            n=topology.num_nodes,
            t_mix=profile.mixing_time,
            conductance=profile.conductance,
        )
        gilbert_config = GilbertConfig(
            n=topology.num_nodes, t_mix=profile.mixing_time
        )
        ours_msgs, gilbert_msgs, ours_ok, gilbert_ok = [], [], 0, 0
        for seed in SEEDS:
            ours = run_irrevocable_election(topology, seed=seed, config=ours_config)
            gilbert = run_gilbert_election(topology, seed=seed, config=gilbert_config)
            ours_msgs.append(ours.messages)
            gilbert_msgs.append(gilbert.messages)
            ours_ok += ours.success
            gilbert_ok += gilbert.success
        rows.append(
            {
                "n": topology.num_nodes,
                "t_mix": profile.mixing_time,
                "conductance": profile.conductance,
                "this_work_messages": sum(ours_msgs) / len(ours_msgs),
                "gilbert_messages": sum(gilbert_msgs) / len(gilbert_msgs),
                "improvement_ratio": (sum(gilbert_msgs) / max(1, sum(ours_msgs))),
                "this_work_success": ours_ok / len(SEEDS),
                "gilbert_success": gilbert_ok / len(SEEDS),
            }
        )
    return rows


@pytest.mark.benchmark(group=EXPERIMENT_ID)
def test_message_scaling(benchmark):
    rows = benchmark.pedantic(_run_series, rounds=1, iterations=1)

    sizes = [row["n"] for row in rows]
    ours = [row["this_work_messages"] for row in rows]
    gilbert = [row["gilbert_messages"] for row in rows]
    ours_fit = fit_power_law(sizes, ours)
    gilbert_fit = fit_power_law(sizes, gilbert)

    record_report(
        EXPERIMENT_ID,
        rows_table(rows, "Messages vs n on random 4-regular expanders"),
        render_series(
            [(row["n"], row["improvement_ratio"]) for row in rows],
            x_label="n",
            y_label="gilbert / this-work message ratio",
            title="Improvement ratio (paper: Õ(sqrt(t_mix·Φ)))",
        ),
        rows_table(
            [
                {"series": "this work", **ours_fit.as_dict()},
                {"series": "gilbert", **gilbert_fit.as_dict()},
            ],
            "Fitted power laws (messages ~ n^exponent)",
        ),
    )

    # --- shape checks ---------------------------------------------------- #
    for row in rows:
        assert row["this_work_messages"] < row["gilbert_messages"], row
        assert row["this_work_success"] >= 0.5
        assert row["gilbert_success"] >= 0.5
    # Both scale polynomially with a modest exponent on expanders; the
    # measured exponent of this work should not be meaningfully worse than
    # the baseline's.
    assert ours_fit.exponent < 2.0
    assert ours_fit.exponent <= gilbert_fit.exponent + 0.35
