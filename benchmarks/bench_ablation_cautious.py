"""Experiment ``ablation-cautious``: why "cautious" broadcast (Lemma 1).

The paper's central message-saving device is that candidates do *not* flood
the network: cautious broadcast grows a territory of only ``Θ̃(x·t_mix·Φ)``
nodes, paying ``Õ(x·t_mix)`` messages, whereas an uncontrolled single-source
flood always pays ``Θ(m)`` messages to inform everyone.  This ablation runs
both primitives from the same source on the same graphs and reports
messages and informed-node counts, checking that

* cautious broadcast keeps its territory within a constant factor of the
  configured cap, and
* its message cost is far below the flood's whenever the cap is small
  relative to ``n`` — the regime the full protocol operates in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

import pytest

from repro.core import Message, ProtocolNode, run_protocol
from repro.election import CautiousBroadcastConfig, CautiousBroadcastNode
from repro.graphs import random_regular, torus_2d

from _harness import profile_for, record_report, rows_table

EXPERIMENT_ID = "ablation-cautious"
SEED = 3

TOPOLOGIES = [
    random_regular(128, 4, seed=41),
    torus_2d(10, 10),
]


@dataclass(frozen=True)
class FloodToken(Message):
    """Single-source flood announcement used by the ablation baseline."""

    hops: int


class SingleSourceFloodNode(ProtocolNode):
    """Uncontrolled broadcast: forward the announcement once over every port."""

    def __init__(self, num_ports: int, rng: random.Random, *, is_source: bool) -> None:
        super().__init__(num_ports, rng)
        self.informed = is_source
        self._sent = False
        self._halted = False

    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, round_index: int, inbox) -> Dict[int, Message]:
        if inbox:
            self.informed = True
        if self.informed and not self._sent:
            self._sent = True
            return {port: FloodToken(hops=round_index) for port in self.ports()}
        if self._sent:
            self._halted = True
        return {}

    def result(self):
        return {"informed": self.informed}


def _run_flood(topology, seed):
    return run_protocol(
        topology,
        lambda i, p, r: SingleSourceFloodNode(p, r, is_source=(i == 0)),
        max_rounds=topology.num_nodes,
        seed=seed,
    )


def _run_cautious(topology, config, seed):
    return run_protocol(
        topology,
        lambda i, p, r: CautiousBroadcastNode(
            p, r, config=config, is_source=(i == 0), source_id=99
        ),
        max_rounds=config.protocol_rounds + 1,
        seed=seed,
    )


def _run_all():
    rows = []
    for topology in TOPOLOGIES:
        profile = profile_for(topology)
        cap = max(4.0, topology.num_nodes ** 0.5)
        config = CautiousBroadcastConfig(
            protocol_rounds=max(32, 4 * profile.mixing_time),
            territory_cap=cap,
        )
        cautious = _run_cautious(topology, config, SEED)
        flood = _run_flood(topology, SEED)
        territory = sum(result["joined"] for result in cautious.results())
        informed = sum(result["informed"] for result in flood.results())
        rows.append(
            {
                "topology": topology.name,
                "n": topology.num_nodes,
                "m": topology.num_edges,
                "territory cap": cap,
                "cautious territory": territory,
                "cautious messages": cautious.metrics.messages,
                "flood informed": informed,
                "flood messages": flood.metrics.messages,
                "message ratio (flood/cautious)": flood.metrics.messages
                / max(1, cautious.metrics.messages),
            }
        )
    return rows


@pytest.mark.benchmark(group=EXPERIMENT_ID)
def test_ablation_cautious_broadcast(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    record_report(
        EXPERIMENT_ID,
        rows_table(rows, "Cautious broadcast vs uncontrolled flood (single source)"),
    )

    for row in rows:
        # The flood informs everyone and pays Θ(m) messages.
        assert row["flood informed"] == row["n"]
        assert row["flood messages"] >= row["m"]
        # Cautious broadcast stays near its cap (Lemma 1's doubling control)
        # and undercuts the flood by a large factor.
        assert row["cautious territory"] <= 4 * row["territory cap"]
        assert row["cautious territory"] >= 2
        assert row["message ratio (flood/cautious)"] > 2.0
