"""Experiment ``bench-robustness``: success/safety-vs-``p`` curves under faults.

The paper claims its protocols keep safety (never two leaders) at low
message cost; the repro's fault models ask what actually happens when the
execution model degrades.  This benchmark tracks that as *robustness
curves*: for each of the paper's protocols (``irrevocable``,
``revocable``, ``flooding``, ``gilbert``) and each adversary ladder —
i.i.d. message loss (``lossy``), link churn (``flaky-links``) and the
persistent per-link round skew of the asynchrony adversary (``skewed``)
— the success rate, safety rate and mean cost at every rung of the
dial.  The same curves are reproducible from the CLI::

    repro-le sweep --suite tiny --algorithms irrevocable --scenario skewed

Two guarantees are asserted on every run:

* **bit-equivalence** — the curves folded from a 2-worker pool and from
  a 2-way sharded split are byte-identical to the serially folded ones
  (the streaming curve sink uses exact accumulators, so scheduling can
  never leak into the committed trajectory);
* **coverage** — every (protocol, scenario) pair yields a curve whose
  points cover the ladder's full ``p`` grid in strictly increasing
  order, baseline (``p = 0``) first.

Setting ``REPRO_BENCH_SMOKE=1`` switches to a seconds-long smoke
configuration (single seed, reduced revocable suite) that CI runs on
every push; smoke results are recorded under a separate experiment id so
they never clobber the committed trajectory.  The ``revocable`` protocol
is intrinsically expensive (its tiny-suite cells cost seconds each), so
it always runs on a reduced topology set; the BENCH JSON records which.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.robustness import RobustnessCurveSink, classify_adversary, curve_rows, curves_as_dicts
from repro.dynamics import robustness_specs
from repro.graphs import complete, cycle, star
from repro.parallel import run_experiments
from repro.workloads import dynamic_scenario, tiny_suite

from _harness import record_bench_json, record_report, rows_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

EXPERIMENT_ID = "bench-robustness" + ("-smoke" if SMOKE else "")
#: The paper's protocols under test (registry names).
PROTOCOLS = ("irrevocable", "revocable", "flooding", "gilbert")
#: One ladder per failure mode: loss, churn, and the asynchrony adversary.
SCENARIOS = ("lossy", "flaky-links", "skewed")
SEEDS = (0,) if SMOKE else (0, 1, 2)


def _topologies_for(protocol: str):
    """The topology suite one protocol sweeps.

    ``revocable`` runs on the smallest graphs only — its per-run cost is
    seconds even at n=6, and the curves need many (rung × seed) runs.
    """
    if protocol == "revocable":
        return [complete(4), cycle(5)] if SMOKE else [complete(4), cycle(5), star(5)]
    return tiny_suite()


def _ladder_specs(ladder):
    """One experiment spec per (protocol × rung) of an adversary ladder."""
    specs = []
    for protocol in PROTOCOLS:
        specs.extend(
            robustness_specs(
                [protocol],
                _topologies_for(protocol),
                ladder,
                seeds=SEEDS,
                collect_profile=False,
            )
        )
    return specs


def _ladder_grid(scenario: str):
    """The dial values a scenario's curves must cover, baseline included."""
    return sorted({classify_adversary(rung)[1] for rung in dynamic_scenario(scenario)})


def _assert_coverage(scenario: str, curves) -> None:
    grid = _ladder_grid(scenario)
    assert len(curves) == len(PROTOCOLS), (
        f"{scenario}: expected one curve per protocol, got "
        f"{[(c.protocol, c.adversary) for c in curves]}"
    )
    for curve in curves:
        ps = [point.p for point in curve.points]
        assert ps == grid, (
            f"{scenario}/{curve.protocol}: curve covers p grid {ps}, "
            f"ladder dials {grid}"
        )
        assert all(point.runs > 0 for point in curve.points)
        # The unperturbed baseline calibrates the curve: every protocol
        # must elect a unique leader on every reliable run.
        assert curve.points[0].p == 0.0
        assert curve.points[0].success_rate == 1.0, (
            f"{scenario}/{curve.protocol}: baseline success rate "
            f"{curve.points[0].success_rate}"
        )


@pytest.mark.benchmark(group=EXPERIMENT_ID)
def test_robustness_curves(benchmark, tmp_path):
    def measure():
        # Every ladder shares the unperturbed baseline rung (the p=0
        # calibration point), and `revocable` baseline runs cost seconds
        # each: execute the baseline sweep once and fold it into every
        # scenario's sink instead of re-running it per ladder.
        sinks = {scenario: RobustnessCurveSink() for scenario in SCENARIOS}
        run_experiments(
            _ladder_specs([None]), workers=1, sinks=list(sinks.values())
        )
        for scenario in SCENARIOS:
            rungs = [r for r in dynamic_scenario(scenario) if r is not None]
            run_experiments(
                _ladder_specs(rungs), workers=1, sinks=[sinks[scenario]]
            )
        return {scenario: sinks[scenario].curves() for scenario in SCENARIOS}

    # repro: disable=REP102 — benchmark wall clock is the measurand
    started = time.perf_counter()
    curves_by_scenario = benchmark.pedantic(measure, rounds=1, iterations=1)
    wall_clock_seconds = time.perf_counter() - started  # repro: disable=REP102 — measurand

    # --- backend bit-equivalence ------------------------------------------ #
    # The acceptance bar for the whole subsystem: parallel and sharded
    # executions of a robustness grid must fold to byte-identical curves.
    # Checked on the skewed ladder with the two cheap extremes of the
    # protocol spectrum (the equivalence is about the fold, not the cost).
    equivalence_specs = lambda: robustness_specs(  # noqa: E731 - rebuilt per run
        ["flooding", "irrevocable"],
        [complete(4), cycle(5)],
        dynamic_scenario("skewed"),
        seeds=SEEDS,
        collect_profile=False,
    )
    serial_sink = RobustnessCurveSink()
    run_experiments(equivalence_specs(), workers=1, sinks=[serial_sink])
    parallel_sink = RobustnessCurveSink()
    run_experiments(equivalence_specs(), workers=2, sinks=[parallel_sink])
    sharded_sink = RobustnessCurveSink()
    for shard_index in (0, 1):
        run_experiments(
            equivalence_specs(),
            checkpoint=tmp_path / "bench-shards" / "sweep.json",
            shard=(shard_index, 2),
            sinks=[sharded_sink],
        )
    serial_curves = curves_as_dicts(serial_sink.curves())
    assert curves_as_dicts(parallel_sink.curves()) == serial_curves, (
        "parallel curve fold diverged from serial"
    )
    assert curves_as_dicts(sharded_sink.curves()) == serial_curves, (
        "sharded curve fold diverged from serial"
    )

    # --- coverage + report + BENCH JSON ----------------------------------- #
    sections = []
    for scenario in SCENARIOS:
        curves = curves_by_scenario[scenario]
        _assert_coverage(scenario, curves)
        sections.append(
            rows_table(
                curve_rows(curves),
                f"robustness curves under scenario {scenario!r} "
                f"({len(SEEDS)} seed(s) per cell)",
            )
        )
    record_report(EXPERIMENT_ID, *sections)
    record_bench_json(
        EXPERIMENT_ID,
        {
            "smoke": SMOKE,
            "protocols": list(PROTOCOLS),
            "scenarios": list(SCENARIOS),
            "seeds": len(SEEDS),
            "suite": "tiny",
            "revocable_topologies": [t.name for t in _topologies_for("revocable")],
            "wall_clock_seconds": wall_clock_seconds,
            "equivalence": "serial==parallel==sharded",
            "curves": [
                {"scenario": scenario, **record}
                for scenario in SCENARIOS
                for record in curves_as_dicts(curves_by_scenario[scenario])
            ],
        },
    )
