"""Experiment ``bench-parallel-sweep``: serial vs parallel sweep wall-clock.

The parallel engine exists so that the paper's crossover claims can be
checked on grids far larger than the serial driver can finish.  This
benchmark tracks the thing that justifies it: wall-clock for the same
``mixed_suite`` sweep (flooding + the Theorem 1 protocol, two seeds each)
executed serially and through a 4-worker pool, with per-run sharding over
the suite's deliberately skewed topology costs.

Two guarantees are asserted, one always and one hardware-permitting:

* the parallel cells are identical to the serial cells (wall-clock
  readings aside) — determinism is non-negotiable;
* on machines with >= 4 usable cores, the pool must deliver at least a 2x
  speedup.  On smaller runners the measured ratio is still recorded in the
  BENCH JSON so the perf trajectory keeps its history, but the threshold
  is not enforced (there is nothing to parallelise onto).

Setting ``REPRO_BENCH_SMOKE=1`` switches to a seconds-long smoke
configuration (tiny suite, one algorithm, one seed, no speedup threshold)
that CI runs on every push to catch wiring breakage without paying for a
real measurement; smoke results are recorded under a separate experiment
id so they never clobber the committed perf trajectory.
"""

from __future__ import annotations

import os
import resource
import tempfile
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.analysis import ExperimentSpec
from repro.analysis.runners import flooding_runner
from repro.graphs import complete, cycle, star
from repro.obs import TelemetrySink, read_telemetry, summarize_telemetry
from repro.parallel import run_experiments
from repro.workloads import mixed_suite, sweep_specs, tiny_suite

from _harness import record_bench_json, record_report, rows_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

EXPERIMENT_ID = "bench-parallel-sweep" + ("-smoke" if SMOKE else "")
ALGORITHMS = ("flooding",) if SMOKE else ("flooding", "irrevocable")
SEEDS = (0,) if SMOKE else (0, 1)
WORKERS = 4


def _build_specs():
    suite = tiny_suite() if SMOKE else mixed_suite()
    return sweep_specs(ALGORITHMS, suite, seeds=SEEDS, collect_profile=False)


def _run_both():
    # repro: disable=REP102 — wall-clock speedup is the measurand here
    started = time.perf_counter()
    serial = run_experiments(_build_specs(), workers=1)
    serial_seconds = time.perf_counter() - started  # repro: disable=REP102 — measurand

    # repro: disable=REP102 — wall-clock speedup is the measurand here
    started = time.perf_counter()
    parallel = run_experiments(_build_specs(), workers=WORKERS)
    parallel_seconds = time.perf_counter() - started  # repro: disable=REP102 — measurand

    # Third leg: the identical pooled sweep with telemetry streaming to
    # JSONL.  Its wall-clock against the bare pooled run is the telemetry
    # overhead the <3% budget is enforced on (profiling excluded — that is
    # a different instrument with honest cProfile overhead).
    with tempfile.TemporaryDirectory() as tmp:
        sink = TelemetrySink(Path(tmp) / "telemetry.jsonl")
        # repro: disable=REP102 — telemetry overhead budget is a wall-clock bound
        started = time.perf_counter()
        instrumented = run_experiments(
            _build_specs(), workers=WORKERS, telemetry=sink
        )
        telemetry_seconds = time.perf_counter() - started  # repro: disable=REP102 — measurand
        telemetry_summary = summarize_telemetry(read_telemetry(sink.path))
    return (
        serial,
        serial_seconds,
        parallel,
        parallel_seconds,
        instrumented,
        telemetry_seconds,
        telemetry_summary,
    )


def _comparable(cells):
    rows = []
    for cell in cells:
        row = cell.as_dict()
        row.pop("mean_wall_clock_seconds")
        rows.append(row)
    return rows


@pytest.mark.benchmark(group=EXPERIMENT_ID)
def test_parallel_sweep(benchmark):
    (
        serial,
        serial_seconds,
        parallel,
        parallel_seconds,
        instrumented,
        telemetry_seconds,
        telemetry_summary,
    ) = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    telemetry_overhead = (
        telemetry_seconds / parallel_seconds - 1.0 if parallel_seconds else 0.0
    )
    # Affinity-aware count: cgroup/taskset-restricted runners report the
    # cores this process can actually use, not the host's.
    cpu_count = len(os.sched_getaffinity(0))
    cells = sum(len(result.cells) for result in serial)
    runs = cells * len(SEEDS)

    rows = [
        {"backend": "serial", "workers": 1, "wall_clock_seconds": serial_seconds},
        {
            "backend": "parallel",
            "workers": WORKERS,
            "wall_clock_seconds": parallel_seconds,
        },
        {
            "backend": "parallel+telemetry",
            "workers": WORKERS,
            "wall_clock_seconds": telemetry_seconds,
        },
    ]
    record_report(
        EXPERIMENT_ID,
        rows_table(
            rows,
            f"mixed_suite sweep ({runs} runs, {cells} cells): serial vs "
            f"{WORKERS}-worker pool (cpu_count={cpu_count})",
        ),
    )
    record_bench_json(
        EXPERIMENT_ID,
        {
            "suite": "mixed",
            "algorithms": list(ALGORITHMS),
            "runs": runs,
            "cells": cells,
            "workers": WORKERS,
            "cpu_count": cpu_count,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "telemetry_seconds": telemetry_seconds,
            "telemetry_overhead": telemetry_overhead,
            "telemetry_runs_measured": telemetry_summary["runs"],
            "smoke": SMOKE,
        },
    )

    # --- shape checks ----------------------------------------------------- #
    # Determinism first: the pool must not change a single aggregate.
    for serial_result, parallel_result in zip(serial, parallel):
        assert _comparable(parallel_result.cells) == _comparable(serial_result.cells)
    # Telemetry observes without perturbing: same cells again, and every
    # executed run produced a task record.
    for serial_result, telemetry_result in zip(serial, instrumented):
        assert _comparable(telemetry_result.cells) == _comparable(serial_result.cells)
    assert telemetry_summary["runs"] == runs

    if SMOKE:
        # Smoke mode checks the wiring (specs build, both backends run,
        # determinism holds) — the workload is far too small for the
        # speedup threshold to be meaningful.
        print(f"smoke mode: speedup threshold not enforced ({speedup:.2f}x)")
    elif cpu_count >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup with {WORKERS} workers on {cpu_count} "
            f"cores, measured {speedup:.2f}x "
            f"({serial_seconds:.1f}s -> {parallel_seconds:.1f}s)"
        )
    else:
        print(
            f"only {cpu_count} usable core(s): speedup threshold not "
            f"enforced (measured {speedup:.2f}x)"
        )

    if SMOKE:
        print(
            "smoke mode: telemetry overhead budget not enforced "
            f"({telemetry_overhead:+.1%})"
        )
    else:
        # The budget the telemetry layer is sold on: streaming per-task
        # records must cost under 3% of the pooled sweep's wall-clock.
        assert telemetry_overhead < 0.03, (
            f"telemetry overhead {telemetry_overhead:+.1%} over budget "
            f"({parallel_seconds:.1f}s -> {telemetry_seconds:.1f}s)"
        )


# --------------------------------------------------------------------------- #
# elastic engine: adaptive dispatch + append-only checkpoint store
# --------------------------------------------------------------------------- #

ELASTIC_EXPERIMENT_ID = "bench-elastic-sweep" + ("-smoke" if SMOKE else "")
#: Cheap-task fan-out of the heterogeneous grid (per topology).
CHEAP_SEEDS = 8 if SMOKE else 150
#: Run count of the checkpoint-I/O grid (one record per run; the rewrite
#: store's flush cost grows with every one of them).
CHECKPOINT_RUNS = 12 if SMOKE else 150
#: Pool size of the dispatch legs, matched to the hardware: a pool wider
#: than the usable cores measures process thrash, not dispatch.
DISPATCH_WORKERS = (
    WORKERS if len(os.sched_getaffinity(0)) >= WORKERS else 2
)
#: Each dispatch leg is the min of this many runs — the dispatch engines
#: differ by tens of milliseconds, which one scheduler hiccup can bury.
DISPATCH_ROUNDS = 1 if SMOKE else 3


def _hetero_specs():
    """A deliberately skewed grid: hundreds of sub-millisecond runs plus a
    few runs three orders of magnitude heavier.

    This is the shape that breaks ``imap_unordered(chunksize=1)`` — one
    IPC round-trip per cheap task — and would equally break a large
    static chunksize (an unlucky chunk of expensive tasks becomes the
    straggler).  The adaptive scheduler must beat the static engine here
    by batching the cheap cells and shipping the expensive ones alone.
    """
    return [
        ExperimentSpec(
            name="cheap",
            runner=flooding_runner,
            topologies=[cycle(6), star(6), cycle(8)],
            seeds=tuple(range(CHEAP_SEEDS)),
            collect_profile=False,
        ),
        ExperimentSpec(
            name="expensive",
            runner=flooding_runner,
            topologies=[complete(40)],
            seeds=(0, 1, 2, 3),
            collect_profile=False,
        ),
    ]


def _checkpoint_leg(fmt: str, tmp: Path):
    """One checkpointed sweep with per-add flushes; returns the telemetry
    summary whose ``checkpoint_io_share`` is the figure of merit."""
    sink = TelemetrySink(tmp / f"telemetry-{fmt}.jsonl")
    specs = [
        ExperimentSpec(
            name="checkpointed",
            runner=flooding_runner,
            topologies=[cycle(24)],
            seeds=tuple(range(CHECKPOINT_RUNS)),
            collect_profile=False,
        )
    ]
    results = run_experiments(
        specs,
        workers=1,
        checkpoint=tmp / f"checkpoint-{fmt}.json",
        checkpoint_format=fmt,
        checkpoint_flush_interval=0.0,
        telemetry=sink,
    )
    return results, summarize_telemetry(read_telemetry(sink.path))


def _dispatch_leg(dispatch: str):
    results = None
    best = float("inf")
    for _ in range(DISPATCH_ROUNDS):
        # repro: disable=REP102 — dispatch comparison times real wall clock
        started = time.perf_counter()
        results = run_experiments(
            _hetero_specs(), workers=DISPATCH_WORKERS, dispatch=dispatch
        )
        best = min(best, time.perf_counter() - started)  # repro: disable=REP102 — measurand
    return results, best


def _run_elastic():
    static, static_seconds = _dispatch_leg("static")
    adaptive, adaptive_seconds = _dispatch_leg("adaptive")
    with tempfile.TemporaryDirectory() as tmp:
        json_results, json_summary = _checkpoint_leg("json", Path(tmp))
        jsonl_results, jsonl_summary = _checkpoint_leg("jsonl", Path(tmp))
    return (
        static,
        static_seconds,
        adaptive,
        adaptive_seconds,
        json_results,
        json_summary,
        jsonl_results,
        jsonl_summary,
    )


@pytest.mark.benchmark(group=ELASTIC_EXPERIMENT_ID)
def test_elastic_sweep(benchmark):
    """Adaptive dispatch vs chunksize=1, and JSONL vs rewrite checkpointing.

    Two figures of merit, both recorded in the BENCH JSON:

    * ``dispatch_speedup`` — wall-clock of the static engine over the
      adaptive scheduler on the heterogeneous grid, best of
      ``DISPATCH_ROUNDS`` per leg at a pool size matched to the
      hardware (>= 1.3x enforced);
    * ``checkpoint_io_share_reduction`` — the telemetry-measured share of
      wall-clock spent in checkpoint writes, rewrite store over JSONL
      store, at flush-every-run (>= 5x enforced; the rewrite store's
      flush is O(records so far), the JSONL store's is O(1)).
    """
    (
        static,
        static_seconds,
        adaptive,
        adaptive_seconds,
        json_results,
        json_summary,
        jsonl_results,
        jsonl_summary,
    ) = benchmark.pedantic(_run_elastic, rounds=1, iterations=1)

    dispatch_speedup = (
        static_seconds / adaptive_seconds if adaptive_seconds else 0.0
    )
    json_share = json_summary["checkpoint_io_share"]
    jsonl_share = jsonl_summary["checkpoint_io_share"]
    io_reduction = json_share / jsonl_share if jsonl_share else float("inf")
    cpu_count = len(os.sched_getaffinity(0))
    hetero_runs = 3 * CHEAP_SEEDS + 4

    record_report(
        ELASTIC_EXPERIMENT_ID,
        rows_table(
            [
                {
                    "leg": "dispatch-static",
                    "wall_clock_seconds": static_seconds,
                },
                {
                    "leg": "dispatch-adaptive",
                    "wall_clock_seconds": adaptive_seconds,
                },
                {"leg": "checkpoint-json", "io_share": json_share},
                {"leg": "checkpoint-jsonl", "io_share": jsonl_share},
            ],
            f"elastic engine: heterogeneous grid ({hetero_runs} runs, "
            f"{DISPATCH_WORKERS} workers, cpu_count={cpu_count}) and per-run "
            f"checkpointing ({CHECKPOINT_RUNS} runs)",
        ),
    )
    record_bench_json(
        ELASTIC_EXPERIMENT_ID,
        {
            "hetero_runs": hetero_runs,
            "workers": DISPATCH_WORKERS,
            "cpu_count": cpu_count,
            "static_seconds": static_seconds,
            "adaptive_seconds": adaptive_seconds,
            "dispatch_speedup": dispatch_speedup,
            "checkpoint_runs": CHECKPOINT_RUNS,
            "checkpoint_io_share_json": json_share,
            "checkpoint_io_share_jsonl": jsonl_share,
            "checkpoint_io_share_reduction": io_reduction,
            "smoke": SMOKE,
        },
    )

    # Determinism before speed: all four legs agree cell for cell.
    for static_result, adaptive_result in zip(static, adaptive):
        assert _comparable(adaptive_result.cells) == _comparable(
            static_result.cells
        )
    for json_result, jsonl_result in zip(json_results, jsonl_results):
        assert _comparable(jsonl_result.cells) == _comparable(json_result.cells)

    if SMOKE:
        print(
            f"smoke mode: thresholds not enforced (dispatch {dispatch_speedup:.2f}x, "
            f"checkpoint I/O share {json_share:.4f} -> {jsonl_share:.4f})"
        )
        return
    assert dispatch_speedup >= 1.3, (
        f"expected >=1.3x from adaptive dispatch on the heterogeneous "
        f"grid, measured {dispatch_speedup:.2f}x "
        f"({static_seconds:.1f}s -> {adaptive_seconds:.1f}s)"
    )
    assert io_reduction >= 5.0, (
        f"expected the JSONL store to cut the checkpoint I/O share >=5x at "
        f"flush-every-run, measured {io_reduction:.1f}x "
        f"({json_share:.4f} -> {jsonl_share:.4f})"
    )


# --------------------------------------------------------------------------- #
# streaming-aggregation memory benchmark
# --------------------------------------------------------------------------- #

MEMORY_EXPERIMENT_ID = "bench-sweep-memory" + ("-smoke" if SMOKE else "")
MEMORY_TOPOLOGY_SIZE = 32 if SMOKE else 64
MEMORY_RUNS_SMALL = 8 if SMOKE else 32
#: The growth factor between the two grids; sublinearity is asserted
#: against it (4x the runs must cost far less than 4x the peak).
MEMORY_SCALE = 4


def _aggregate_sweep(num_seeds: int, *, keep_results: bool = False) -> int:
    """Run a one-topology flooding grid of ``num_seeds`` runs; return the
    peak traced allocation in bytes."""
    specs = sweep_specs(
        ("flooding",),
        [cycle(MEMORY_TOPOLOGY_SIZE)],
        seeds=tuple(range(num_seeds)),
        collect_profile=False,
    )
    tracemalloc.start()
    try:
        run_experiments(specs, workers=1, keep_results=keep_results)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


@pytest.mark.benchmark(group=MEMORY_EXPERIMENT_ID)
def test_streaming_memory(benchmark):
    """The streaming result path keeps aggregate-only sweeps at O(cells) memory.

    Peak allocation is measured (via ``tracemalloc``, which is
    deterministic, unlike RSS) for the same single-cell grid at 1x and 4x
    the run count: with per-run streaming the 4x grid must cost well under
    2x the peak — the old engine retained every
    ``LeaderElectionResult`` (O(runs × nodes)) and scaled linearly.  The
    opt-in ``keep_results`` sink is measured alongside as the contrast,
    and the process-level peak RSS lands in the BENCH JSON so the memory
    trajectory is tracked over time.
    """
    runs_large = MEMORY_RUNS_SMALL * MEMORY_SCALE
    peak_small, peak_large, peak_keep = benchmark.pedantic(
        lambda: (
            _aggregate_sweep(MEMORY_RUNS_SMALL),
            _aggregate_sweep(runs_large),
            _aggregate_sweep(runs_large, keep_results=True),
        ),
        rounds=1,
        iterations=1,
    )
    growth = peak_large / peak_small
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    record_bench_json(
        MEMORY_EXPERIMENT_ID,
        {
            "topology_nodes": MEMORY_TOPOLOGY_SIZE,
            "runs_small": MEMORY_RUNS_SMALL,
            "runs_large": runs_large,
            "peak_bytes_small": peak_small,
            "peak_bytes_large": peak_large,
            "peak_bytes_keep_results": peak_keep,
            "aggregate_peak_growth": growth,
            "peak_rss_kb": peak_rss_kb,
            "smoke": SMOKE,
        },
    )

    # 4x the runs, well under 2x the peak: aggregate-only memory is
    # sublinear in the number of runs (it is dominated by a single run's
    # transient state, not by the grid size).
    assert growth < 2.0, (
        f"aggregate-only peak grew {growth:.2f}x for {MEMORY_SCALE}x runs "
        f"({peak_small} -> {peak_large} bytes): the streaming pipeline is "
        f"retaining per-run state"
    )
    # The opt-in retention sink is the contrast: keeping every result of
    # the large grid must cost visibly more than streaming it.
    assert peak_keep > peak_large, (
        f"keep_results peak ({peak_keep}) not above streaming peak "
        f"({peak_large}); the retention sink is not retaining"
    )
