"""Experiment ``table1-known-n``: the known-``n`` rows of Table 1.

The paper's Table 1 compares, for known network size, the message and time
complexity of (i) this work's Theorem 1 protocol, (ii) Gilbert et al. [10],
and (iii) the Kutten et al. [16]-style flooding bound.  This benchmark
regenerates the comparison empirically on a small suite spanning the
well-connected and poorly-connected regimes, and checks the qualitative
shape the table claims:

* the Theorem 1 protocol uses fewer messages than the Gilbert et al.
  baseline on every topology (its improvement factor ``Õ(√(t_mix·Φ))``);
* flooding wins on time (``O(D)``) but pays ``Θ(m)``-style messages that the
  walk-based protocols undercut only on well-connected graphs — the regime
  split the paper highlights;
* every algorithm elects a unique leader (w.h.p. → empirically, on all
  measured runs).
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    ExperimentSpec,
    predicted_rows,
    render_comparison_table,
    run_experiment,
)
from repro.baselines import run_flooding_election, run_gilbert_election, run_uniform_id_election
from repro.election import IrrevocableConfig, run_irrevocable_election
from repro.graphs import cycle, random_regular, torus_2d

from _harness import profiles_for, record_report, rows_table

EXPERIMENT_ID = "table1-known-n"
SEEDS = (0, 1)

TOPOLOGIES = [
    random_regular(64, 4, seed=17),
    torus_2d(8, 8),
    cycle(32),
]

ALGORITHMS = {
    "this-work-thm1": lambda topology, seed: run_irrevocable_election(
        topology, seed=seed, config=_config_cache(topology)
    ),
    "gilbert-podc18": lambda topology, seed: run_gilbert_election(topology, seed=seed),
    "flooding-kutten": lambda topology, seed: run_flooding_election(topology, seed=seed),
    "uniform-id": lambda topology, seed: run_uniform_id_election(topology, seed=seed),
}

_CONFIGS = {}


def _config_cache(topology):
    config = _CONFIGS.get(topology.name)
    if config is None:
        profile = profiles_for([topology])[topology.name]
        config = IrrevocableConfig(
            n=topology.num_nodes,
            t_mix=profile.mixing_time,
            conductance=profile.conductance,
        )
        _CONFIGS[topology.name] = config
    return config


def _run_all():
    profiles = profiles_for(TOPOLOGIES)
    results = {}
    for name, runner in ALGORITHMS.items():
        spec = ExperimentSpec(
            name=name, runner=runner, topologies=TOPOLOGIES, seeds=SEEDS
        )
        results[name] = run_experiment(spec, profiles=profiles)
    return results


@pytest.mark.benchmark(group=EXPERIMENT_ID)
def test_table1_known_n(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows_by_algorithm = {name: result.as_rows() for name, result in results.items()}
    message_table = render_comparison_table(
        rows_by_algorithm,
        key_column="topology",
        value_column="mean_messages",
        title="Table 1 (known n) — measured messages",
    )
    round_table = render_comparison_table(
        rows_by_algorithm,
        key_column="topology",
        value_column="mean_rounds",
        title="Table 1 (known n) — measured rounds",
    )
    success_table = render_comparison_table(
        rows_by_algorithm,
        key_column="topology",
        value_column="success_rate",
        title="Table 1 (known n) — unique-leader rate",
    )
    profile_rows = [profile.as_dict() for profile in profiles_for(TOPOLOGIES).values()]
    theory_rows = predicted_rows(profiles_for(TOPOLOGIES))
    record_report(
        EXPERIMENT_ID,
        rows_table(profile_rows, "Topology suite"),
        message_table,
        round_table,
        success_table,
        rows_table(
            theory_rows,
            "Paper bounds evaluated at the measured graph parameters "
            "(constants = 1; compare ratios, not absolute values)",
        ),
    )

    # --- shape checks ---------------------------------------------------- #
    ours = results["this-work-thm1"]
    gilbert = results["gilbert-podc18"]
    flooding = results["flooding-kutten"]

    for cell in ours.cells:
        assert cell.success_rate >= 0.5, cell.topology_name
        other = gilbert.cell_for(cell.topology_name)
        assert cell.mean_messages < other.mean_messages, (
            f"Theorem 1 should beat Gilbert et al. on messages "
            f"({cell.topology_name})"
        )
        fast = flooding.cell_for(cell.topology_name)
        assert fast.mean_rounds < cell.mean_rounds, (
            f"flooding should win on time ({cell.topology_name})"
        )
    assert gilbert.overall_success_rate() >= 0.5
    assert flooding.overall_success_rate() >= 0.5
