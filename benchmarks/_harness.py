"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one of the paper's evaluation artefacts
(Table 1 or a figure-style scaling/illustration; see DESIGN.md §2).  The
helpers here take care of the bookkeeping that is common to all of them:

* caching expansion profiles (mixing time, conductance, ...) per topology so
  the different algorithms under comparison are parameterised identically;
* recording the rendered report of each experiment both to stdout and to
  ``benchmarks/results/<experiment>.txt`` so that ``pytest benchmarks/
  --benchmark-only`` leaves the regenerated tables on disk for
  EXPERIMENTS.md regardless of output capturing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

from repro.analysis import render_table
from repro.graphs import ExpansionProfile, Topology, expansion_profile

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_PROFILE_CACHE: Dict[str, ExpansionProfile] = {}


def profile_for(topology: Topology) -> ExpansionProfile:
    """Expansion profile of ``topology``, cached across benchmarks."""
    profile = _PROFILE_CACHE.get(topology.name)
    if profile is None:
        profile = expansion_profile(topology)
        _PROFILE_CACHE[topology.name] = profile
    return profile


def profiles_for(topologies: Iterable[Topology]) -> Dict[str, ExpansionProfile]:
    return {topology.name: profile_for(topology) for topology in topologies}


def record_report(experiment_id: str, *sections: str) -> Path:
    """Print a report and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n\n".join(section for section in sections if section)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {experiment_id} ===\n{text}\n")
    return path


def rows_table(rows: List[dict], title: str, columns=None) -> str:
    """Thin wrapper over :func:`repro.analysis.render_table`."""
    return render_table(rows, title=title, columns=columns)


def record_bench_json(experiment_id: str, payload: Dict[str, object]) -> Path:
    """Persist a machine-readable benchmark record and print a BENCH line.

    The record lands in ``benchmarks/results/<experiment>.json`` and a
    single ``BENCH {...}`` line goes to stdout, so perf trajectories can be
    collected from CI logs with a grep.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    record = {"experiment": experiment_id, **payload}
    path = RESULTS_DIR / f"{experiment_id}.json"
    path.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n", encoding="utf-8")
    print(f"BENCH {json.dumps(record, sort_keys=True)}")
    return path
