"""Experiment ``fig12-impossibility``: the pumping-wheel construction.

Figures 1–2 of the paper illustrate the witness construction behind
Theorem 2: without knowing ``n``, any algorithm that stops within ``T(n)``
rounds can be fooled by a long cycle containing many ``2T``-separated
witnesses, two segments of which then stop with their own leaders.  The
benchmark runs a natural bounded-time protocol on its design cycle ``C_n``
(where it is correct) and on pumping wheels with a growing number of
witnesses, reporting the multi-leader failure rate — which must be high on
the wheel and grow (weakly) with the number of witnesses — together with
the astronomically large witness count the paper's union bound would
require for a worst-case adversarial protocol.
"""

from __future__ import annotations

import pytest

from repro.impossibility import demonstrate_impossibility, paper_witness_count

from _harness import record_report, rows_table

EXPERIMENT_ID = "fig12-impossibility"
N = 6
WITNESS_COUNTS = (1, 2, 4, 8)
SEEDS = tuple(range(12))


def _run_all():
    rows = []
    for witnesses in WITNESS_COUNTS:
        report = demonstrate_impossibility(N, num_witnesses=witnesses, seeds=SEEDS)
        rows.append(
            {
                "witnesses": witnesses,
                "wheel size N": report.wheel_size,
                "base success rate (C_n)": report.base_success_rate,
                "wheel failure rate": report.wheel_failure_rate,
                "mean leaders on wheel": report.mean_wheel_leaders,
            }
        )
    return rows


@pytest.mark.benchmark(group=EXPERIMENT_ID)
def test_impossibility_pumping_wheel(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    record_report(
        EXPERIMENT_ID,
        rows_table(
            rows,
            f"Bounded-time unknown-n election on C_{N} vs pumping wheels "
            f"(Theorem 2, Figures 1-2)",
        ),
        f"paper union-bound witness count for n={N}, c=0.9: "
        f"{paper_witness_count(N, 2 * N, 0.9):.3e}",
    )

    # --- shape checks ---------------------------------------------------- #
    # Correct on the cycle it was designed for...
    assert all(row["base success rate (C_n)"] >= 0.8 for row in rows)
    # ...but broken on every pumping wheel, with multiple leaders.
    assert all(row["wheel failure rate"] >= 0.8 for row in rows)
    assert all(row["mean leaders on wheel"] > 1.5 for row in rows)
    # More witnesses cannot decrease the number of elected leaders.
    leaders = [row["mean leaders on wheel"] for row in rows]
    assert leaders == sorted(leaders)
