"""Experiment ``ablation-revocable-params``: Theorem 3 vs the blind fallback.

Theorem 3 shows that knowing the isoperimetric number ``i(G)`` tightens the
revocable election from ``Õ(n^{4(2+ε)})`` (Corollary 1, which falls back to
the universal bound ``i(G) ≥ 2/n``) to ``Õ(n^{4(1+ε)}/i(G)²)``.  Our scaled
schedule exposes the same knob through the diffusion convergence rate: the
*informed* schedule uses the graph's true algebraic connectivity, the
*blind* schedule only the worst-case ``Θ(1/n²)`` bound any graph satisfies.
This ablation runs both on the same tiny graphs and reports the cost gap,
which must be large and must leave correctness untouched.
"""

from __future__ import annotations

import pytest

from repro.election import ScaledSchedule, run_revocable_election
from repro.graphs import algebraic_connectivity, complete, star

from _harness import record_report, rows_table

EXPERIMENT_ID = "ablation-revocable-params"
SEED = 5

TOPOLOGIES = [complete(5), star(5)]


def _schedules_for(topology):
    informed = ScaledSchedule(
        epsilon=0.5,
        xi=0.1,
        convergence_rate=algebraic_connectivity(topology),
    )
    # What a node could assume without any graph knowledge: the universal
    # lower bound on algebraic connectivity, Θ(1/n²) (attained by the path).
    blind_rate = 8.0 / topology.num_nodes ** 2
    blind = ScaledSchedule(epsilon=0.5, xi=0.1, convergence_rate=blind_rate)
    return informed, blind


def _run_all():
    rows = []
    for topology in TOPOLOGIES:
        informed, blind = _schedules_for(topology)
        informed_result = run_revocable_election(topology, seed=SEED, schedule=informed)
        blind_result = run_revocable_election(topology, seed=SEED, schedule=blind)
        rows.append(
            {
                "topology": topology.name,
                "n": topology.num_nodes,
                "informed rounds": informed_result.rounds_executed,
                "blind rounds": blind_result.rounds_executed,
                "informed messages": informed_result.messages,
                "blind messages": blind_result.messages,
                "round ratio (blind/informed)": blind_result.rounds_executed
                / max(1, informed_result.rounds_executed),
                "informed unique leader": informed_result.success,
                "blind unique leader": blind_result.success,
            }
        )
    return rows


@pytest.mark.benchmark(group=EXPERIMENT_ID)
def test_ablation_revocable_schedules(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    record_report(
        EXPERIMENT_ID,
        rows_table(
            rows,
            "Revocable election: expansion-informed schedule (Thm 3) vs blind fallback (Cor 1)",
        ),
    )

    for row in rows:
        assert row["informed unique leader"]
        assert row["blind unique leader"]
        # Knowing the graph's expansion buys a large constant-factor-to-
        # polynomial reduction in both time and messages.
        assert row["round ratio (blind/informed)"] > 2.0
        assert row["blind messages"] > row["informed messages"]
