"""Experiment ``table1-unknown-n``: the unknown-``n`` rows of Table 1.

For unknown network size the paper contributes (i) the impossibility of
*irrevocable* election (covered by ``fig12-impossibility``) and (ii) the
blind *revocable* protocol with polynomial ``Õ(n^{4(1+ε)}/i(G)²)`` time and
``·m`` messages (Theorem 3 / Corollary 1).  This benchmark runs the
revocable protocol end to end on the tiny suite (its cost is intrinsically
enormous), verifies it elects a unique, agreed leader, and reports

* measured simulated rounds and messages,
* the round count under the paper's bit-by-bit accounting,
* the cost the *paper schedule* (Corollary 1) would have incurred, to make
  the polynomial blow-up of the unknown-``n`` setting concrete next to the
  known-``n`` numbers of ``table1-known-n``.
"""

from __future__ import annotations

import pytest

from repro.election import PaperSchedule, default_scaled_schedule, run_revocable_election
from repro.workloads import tiny_suite

from _harness import profile_for, record_report, rows_table

EXPERIMENT_ID = "table1-unknown-n"
SEEDS = (0, 1)


def _run_all():
    rows = []
    for topology in tiny_suite():
        schedule = default_scaled_schedule(topology)
        paper = PaperSchedule(epsilon=1.0, xi=0.1)
        paper_rounds = paper.total_rounds_through(
            paper.final_estimate(topology.num_nodes)
        )
        for seed in SEEDS:
            result = run_revocable_election(topology, seed=seed, schedule=schedule)
            profile = profile_for(topology)
            rows.append(
                {
                    "topology": topology.name,
                    "n": topology.num_nodes,
                    "m": topology.num_edges,
                    "i(G)": profile.isoperimetric_number,
                    "seed": seed,
                    "unique_leader": result.success,
                    "agreement": result.outcome.agreement,
                    "rounds": result.rounds_executed,
                    "messages": result.messages,
                    "paper_bit_rounds": result.parameters["paper_bit_rounds"],
                    "corollary1_rounds": paper_rounds,
                }
            )
    return rows


@pytest.mark.benchmark(group=EXPERIMENT_ID)
def test_table1_unknown_n(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    record_report(
        EXPERIMENT_ID,
        rows_table(rows, "Table 1 (unknown n) — Revocable Leader Election, measured"),
    )

    # --- shape checks ---------------------------------------------------- #
    success = sum(row["unique_leader"] and row["agreement"] for row in rows)
    assert success >= 0.8 * len(rows)

    for row in rows:
        # Message complexity tracks rounds x links (every round floods all
        # links), the structure behind the O(... * m) entries of Table 1.
        assert row["messages"] <= 2 * row["m"] * row["rounds"]
        # The bit-by-bit CONGEST accounting can only be larger than the
        # simulated word-per-round count.
        assert row["paper_bit_rounds"] >= row["rounds"]
        # The blind Corollary 1 schedule is orders of magnitude above what
        # the (i(G)-informed, Theorem 3-style) scaled schedule needed.
        assert row["corollary1_rounds"] > 10 * row["rounds"]
