#!/usr/bin/env python3
"""Unknown-size swarm: revocable election without any network knowledge.

A small robot swarm boots with no identifiers, no size estimate, and no
topology information — the setting of Section 5 of the paper.  Theorem 2
says the robots can never *stop* with a guaranteed leader, but the blind
revocable protocol (Section 5.2) elects one whose identity stabilises: the
example runs the protocol, shows the estimates at which nodes committed to
identifiers, which certificates circulated, and that the final flag is
unique and agreed by the whole swarm.

Usage::

    python examples/unknown_size_swarm.py [n] [seed]
"""

from __future__ import annotations

import sys

from repro.analysis import render_kv, render_table
from repro.election import default_scaled_schedule, run_revocable_election
from repro.graphs import complete, expansion_profile


def main(n: int = 5, seed: int = 3) -> int:
    swarm = complete(n)
    profile = expansion_profile(swarm)
    print(render_kv(profile.as_dict(), title=f"== swarm topology: {swarm.name} =="))
    print()

    schedule = default_scaled_schedule(swarm)
    print(
        render_table(
            schedule.describe([2, 4, 8, 16]),
            title="== parameter schedule (per size estimate k) ==",
        )
    )
    print()

    result = run_revocable_election(swarm, seed=seed, schedule=schedule)

    rows = []
    for index, node in enumerate(result.node_results):
        rows.append(
            {
                "node": index,
                "chose id": node["node_id"],
                "at estimate K": node["own_estimate"],
                "believes leader": node["leader_certificate"],
                "flag raised": node["leader"],
            }
        )
    print(render_table(rows, title="== per-robot view after stabilisation =="))
    print()

    print(
        render_kv(
            {
                "unique leader": result.success,
                "all robots agree on the certificate": result.outcome.agreement,
                "simulated rounds": result.rounds_executed,
                "messages": result.messages,
                "paper-accounting bit-rounds": result.parameters["paper_bit_rounds"],
                "final size estimate": result.parameters["final_estimate"],
            },
            title="== outcome ==",
        )
    )
    print()
    print(
        "note: the robots themselves never learn the election is over —"
        " that is exactly the impossibility of Theorem 2; what the protocol"
        " guarantees is that the flag configuration you see above no longer"
        " changes."
    )
    return 0 if result.success and result.outcome.agreement else 1


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
