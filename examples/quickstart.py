#!/usr/bin/env python3
"""Quickstart: elect a leader in an anonymous expander network.

Runs the paper's known-``n`` protocol (Section 4) on a random 4-regular
graph, verifies that exactly one node raised its flag, and prints the
measured cost next to the flooding baseline so the message-complexity
advantage on well-connected graphs is visible immediately.

Usage::

    python examples/quickstart.py [n] [seed]
"""

from __future__ import annotations

import sys

from repro import api
from repro.analysis import render_kv, render_table
from repro.graphs import expansion_profile, random_regular


def main(n: int = 64, seed: int = 42) -> int:
    topology = random_regular(n, 4, seed=seed)
    profile = expansion_profile(topology)
    print(render_kv(profile.as_dict(), title=f"== topology: {topology.name} =="))
    print()

    ours = api.run("irrevocable", topology, seed=seed)
    flooding = api.run("flooding", topology, seed=seed)

    rows = []
    for result in (ours, flooding):
        rows.append(
            {
                "algorithm": result.algorithm,
                "unique leader": result.success,
                "candidates": len(result.outcome.candidate_indices),
                "messages": result.messages,
                "bits": result.bits,
                "rounds": result.rounds_executed,
            }
        )
    print(render_table(rows, title="== election outcomes =="))
    print()

    leader = ours.outcome.leader_indices[0] if ours.success else None
    print(f"leader (node index, known only to the observer): {leader}")
    print(
        "phase breakdown (messages): "
        + ", ".join(
            f"{name}={phase.messages}" for name, phase in ours.metrics.phases.items()
        )
    )
    return 0 if ours.success else 1


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
