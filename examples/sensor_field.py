#!/usr/bin/env python3
"""Ad-hoc sensor field: leader election for coordinator selection.

The paper's motivation is massive ad-hoc / IoT deployments of
indistinguishable cheap devices.  This example models a sensor field as a
2-D torus (each sensor talks to its four geographic neighbours), where a
single coordinator must be elected to schedule duty cycles.  The number of
deployed sensors is known from the deployment plan, so the Section 4
protocol applies; energy is the scarce resource, so we compare the number
of radio messages (the paper's message complexity) against the flooding
and Gilbert et al. baselines from Table 1.

Usage::

    python examples/sensor_field.py [side] [seed]
"""

from __future__ import annotations

import sys

from repro import api
from repro.analysis import render_comparison_table, render_kv
from repro.graphs import expansion_profile, torus_2d


def main(side: int = 8, seed: int = 7) -> int:
    field = torus_2d(side, side)
    profile = expansion_profile(field)
    print(render_kv(profile.as_dict(), title=f"== sensor field: {field.name} =="))
    print()

    runs = {
        "this work (Thm 1)": api.run("irrevocable", field, seed=seed),
        "Gilbert et al. [10]": api.run("gilbert", field, seed=seed),
        "flooding [16]": api.run("flooding", field, seed=seed),
    }

    cells = {
        label: [
            {
                "metric": "messages",
                "value": result.messages,
            },
            {
                "metric": "bits",
                "value": result.bits,
            },
            {
                "metric": "rounds",
                "value": result.rounds_executed,
            },
            {
                "metric": "unique leader",
                "value": result.success,
            },
        ]
        for label, result in runs.items()
    }
    print(
        render_comparison_table(
            cells,
            key_column="metric",
            value_column="value",
            title="== coordinator election cost (lower is better) ==",
        )
    )
    print()

    ours = runs["this work (Thm 1)"]
    territories = {}
    for node_result in ours.node_results:
        for source in node_result.get("joined_territories", []):
            territories[source] = territories.get(source, 0) + 1
    print("candidate territories (source id -> nodes informed):")
    for source, size in sorted(territories.items()):
        print(f"  {source:>12} -> {size}")
    print()
    print(
        "energy verdict: the Theorem 1 protocol used "
        f"{ours.messages:,} messages vs {runs['flooding [16]'].messages:,} (flooding) "
        f"and {runs['Gilbert et al. [10]'].messages:,} (Gilbert-style walks)."
    )
    return 0 if ours.success else 1


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
