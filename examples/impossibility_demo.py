#!/usr/bin/env python3
"""Impossibility demo: why bounded-time election needs the network size.

Theorem 2 (Section 5.1) proves that no algorithm can solve Irrevocable
Leader Election in bounded time without knowing ``n``.  This example makes
the phenomenon tangible: a perfectly reasonable bounded-time protocol —
"assume the ring has at most ``n`` nodes, flood the maximum random ID for
``2n`` rounds, then stop" — is run first on the ring it was designed for
(where it elects exactly one leader), and then on pumping wheels built from
the paper's witness construction (Figure 1).  On the wheel the protocol
stops before information can travel between witnesses, so several distant
segments each crown their own leader.

Usage::

    python examples/impossibility_demo.py [n] [max_witnesses]
"""

from __future__ import annotations

import sys

from repro.analysis import render_kv, render_table
from repro.impossibility import WitnessLayout, demonstrate_impossibility, paper_witness_count


def main(n: int = 6, max_witnesses: int = 8) -> int:
    layout = WitnessLayout(n=n, horizon=2 * n)
    print(
        render_kv(
            {
                "ring size the protocol was designed for": n,
                "its time bound T(n)": layout.horizon,
                "witness length (Figure 1)": layout.witness_length,
                "witness separation": layout.separation,
                "witnesses needed by the paper's union bound": paper_witness_count(
                    n, layout.horizon, 0.9
                ),
            },
            title="== construction parameters ==",
        )
    )
    print()

    rows = []
    witnesses = 1
    while witnesses <= max_witnesses:
        report = demonstrate_impossibility(
            n, num_witnesses=witnesses, seeds=range(10)
        )
        rows.append(
            {
                "witnesses": witnesses,
                "wheel size N": report.wheel_size,
                "success on C_n": f"{report.base_success_rate:.0%}",
                "failure on wheel": f"{report.wheel_failure_rate:.0%}",
                "mean leaders on wheel": round(report.mean_wheel_leaders, 1),
            }
        )
        witnesses *= 2
    print(
        render_table(
            rows,
            title="== bounded-time protocol: correct on C_n, broken on the wheel ==",
        )
    )
    print()
    print(
        "every row uses the same protocol and the same per-seed randomness;"
        " only the (unknown to the nodes) network grew.  This is the"
        " behaviour Theorem 2 proves is unavoidable, and why the paper"
        " introduces *revocable* leader election for unknown-size networks."
    )
    return 0


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
