"""Parameter schedules for the blind (revocable) election of Section 5.2.

Algorithm 6 is parameterised by four functions of the running network-size
estimate ``k``:

* ``r(k)`` — rounds of the potential-diffusion phase,
* ``f(k)`` — repetitions of the certification phase,
* ``p(k)`` — probability of a node colouring itself white,
* ``τ(k)`` — the potential threshold that flags ``k`` as too small,

plus the number of dissemination rounds (``k^{1+ε}``) and the ID range
(``k^{4(1+ε)}·log⁴(4k)``).  :class:`PaperSchedule` implements the exact
functions from Theorem 3 (when the isoperimetric number is known) and
Corollary 1 (blind fallback ``i(G) ≥ 2/n``); its round counts are
astronomically large on purpose — the paper's complexity is
``Õ(n^{4(2+ε)})`` — so it is used for *cost accounting* and for unit tests
of the individual functions.  :class:`ScaledSchedule` keeps the same
structural form but lets the experiment scale the constants so that
end-to-end runs finish; every such substitution is reported by the
benchmark harness (see DESIGN.md §3.4).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..core.errors import ConfigurationError

__all__ = [
    "ParameterSchedule",
    "PaperSchedule",
    "ScaledSchedule",
    "ZETA",
]

#: The constant ζ = (1 - 1/sqrt(2))² / (2·sqrt(2)) from Lemmas 6–8.
ZETA = (1.0 - 1.0 / math.sqrt(2.0)) ** 2 / (2.0 * math.sqrt(2.0))


class ParameterSchedule(ABC):
    """Interface shared by the paper schedule and scaled variants."""

    def __init__(self, *, epsilon: float = 1.0, xi: float = 0.1) -> None:
        if not (0.0 < epsilon <= 1.0):
            raise ConfigurationError(f"epsilon must be in (0, 1], got {epsilon}")
        if not (0.0 < xi < 1.0):
            raise ConfigurationError(f"xi must be in (0, 1), got {xi}")
        self.epsilon = epsilon
        self.xi = xi

    # ------------------------------------------------------------------ #
    # the paper's parameter functions
    # ------------------------------------------------------------------ #
    def estimate_power(self, k: int) -> float:
        """``k^{1+ε}`` — the quantity every other parameter is built from."""
        return float(k) ** (1.0 + self.epsilon)

    @abstractmethod
    def diffusion_rounds(self, k: int) -> int:
        """``r(k)``: rounds of potential diffusion per certification run."""

    @abstractmethod
    def certification_repeats(self, k: int) -> int:
        """``f(k)``: how many times the certification phase repeats."""

    def white_probability(self, k: int) -> float:
        """``p(k) = ln 2 / k^{1+ε}``."""
        return min(1.0, math.log(2.0) / self.estimate_power(k))

    def potential_threshold(self, k: int) -> float:
        """``τ(k) = 1 - 1/(k^{1+ε} - 1)``."""
        power = self.estimate_power(k)
        if power <= 1.0:
            return 0.0
        return 1.0 - 1.0 / (power - 1.0)

    def dissemination_rounds(self, k: int) -> int:
        """``k^{1+ε}`` rounds of flooding of the full status."""
        return max(1, math.ceil(self.estimate_power(k)))

    def id_range(self, k: int) -> int:
        """IDs are drawn from ``{1 .. k^{4(1+ε)}·log⁴(4k)}``."""
        power = float(k) ** (4.0 * (1.0 + self.epsilon))
        log_term = math.log2(4.0 * k) ** 4
        return max(2, math.ceil(power * log_term))

    # ------------------------------------------------------------------ #
    # round bookkeeping used by the simulation driver
    # ------------------------------------------------------------------ #
    def rounds_per_certification(self, k: int) -> int:
        """Simulated rounds of one ``Avg`` call: diffusion + dissemination."""
        return self.diffusion_rounds(k) + self.dissemination_rounds(k)

    def rounds_for_estimate(self, k: int) -> int:
        """Simulated rounds of the full outer iteration for estimate ``k``."""
        return self.certification_repeats(k) * self.rounds_per_certification(k)

    def estimates(self, k_max: int) -> Iterator[int]:
        """The estimates the protocol iterates through: 2, 4, ..., k_max."""
        k = 2
        while k <= k_max:
            yield k
            k *= 2

    def final_estimate(self, n: int) -> int:
        """Smallest power-of-two estimate with ``k^{1+ε} > 4n``.

        By Theorem 3 every node has chosen its ID once the estimate passes
        ``4n``; the driver (which, unlike the nodes, knows ``n``) uses this
        to decide how long to simulate.
        """
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        k = 2
        while self.estimate_power(k) <= 4.0 * n:
            k *= 2
        return k

    def total_rounds_through(self, k_max: int) -> int:
        """Simulated rounds needed to complete all estimates up to ``k_max``."""
        return sum(self.rounds_for_estimate(k) for k in self.estimates(k_max))

    def paper_bit_rounds_for_estimate(self, k: int) -> int:
        """Round count under the paper's bit-by-bit CONGEST accounting.

        The paper transmits potentials one bit per round; after ``j``
        diffusion iterations a potential needs ``j·log(2k^{1+ε})`` bits, so
        iteration ``j`` of the diffusion costs that many rounds (proof of
        Theorem 3).  We report this analytically instead of simulating the
        individual bit rounds.
        """
        r_k = self.diffusion_rounds(k)
        bits_per_iteration = math.log2(2.0 * self.estimate_power(k))
        diffusion_rounds = math.ceil(bits_per_iteration * r_k * (r_k + 1) / 2.0)
        return self.certification_repeats(k) * (
            diffusion_rounds + self.dissemination_rounds(k)
        )

    def describe(self, k_values: Optional[List[int]] = None) -> List[Dict[str, object]]:
        """Tabulate the schedule for a few estimates (used in reports)."""
        rows = []
        for k in k_values or [2, 4, 8, 16]:
            rows.append(
                {
                    "k": k,
                    "r(k)": self.diffusion_rounds(k),
                    "f(k)": self.certification_repeats(k),
                    "p(k)": self.white_probability(k),
                    "tau(k)": self.potential_threshold(k),
                    "dissemination": self.dissemination_rounds(k),
                    "id_range": self.id_range(k),
                    "rounds": self.rounds_for_estimate(k),
                }
            )
        return rows


class PaperSchedule(ParameterSchedule):
    """The exact parameter functions of Theorem 3 / Corollary 1.

    With ``isoperimetric_number`` given, ``r(k)`` follows Theorem 3:
    ``(8·k^{2(1+ε)}/i(G)²)·log(k^{2(1+ε)}) + k^{1+ε}·log(2k)``.  Without it
    the blind fallback ``i(G) ≥ 2/n`` of Corollary 1 is used (with ``n``
    replaced by the estimate ``k``, which is what the protocol can do):
    ``2·k^{2(2+ε)}·log(k^{2(1+ε)}) + k^{1+ε}·log(2k)``.
    """

    def __init__(
        self,
        *,
        epsilon: float = 1.0,
        xi: float = 0.1,
        isoperimetric_number: Optional[float] = None,
    ) -> None:
        super().__init__(epsilon=epsilon, xi=xi)
        if isoperimetric_number is not None and isoperimetric_number <= 0:
            raise ConfigurationError(
                f"isoperimetric_number must be positive, got {isoperimetric_number}"
            )
        self.isoperimetric_number = isoperimetric_number

    def diffusion_rounds(self, k: int) -> int:
        power = self.estimate_power(k)
        log_term = math.log2(power ** 2)
        tail = power * math.log2(2.0 * k)
        if self.isoperimetric_number is not None:
            head = 8.0 * power ** 2 / self.isoperimetric_number ** 2 * log_term
        else:
            head = 2.0 * (float(k) ** (2.0 * (2.0 + self.epsilon))) * log_term
        return max(1, math.ceil(head + tail))

    def certification_repeats(self, k: int) -> int:
        power = self.estimate_power(k)
        value = (4.0 * math.sqrt(2.0) / (math.sqrt(2.0) - 1.0) ** 2) * math.log(
            power / self.xi
        )
        return max(1, math.ceil(value))


@dataclass(frozen=True)
class _ScaledCoefficients:
    """Multipliers applied by :class:`ScaledSchedule` to the paper functions."""

    diffusion_scale: float = 2.0
    certification_scale: float = 0.1
    certification_min: int = 5
    id_exponent: float = 4.0


class ScaledSchedule(ParameterSchedule):
    """Paper-shaped schedule with feasible constants for finite experiments.

    The paper's ``r(k)`` uses the worst-case Cheeger bound on the diffusion
    chain's spectral gap, which makes even ``n = 8`` runs take millions of
    rounds.  The scaled schedule keeps every structural ingredient of the
    paper schedule — the share ``1/(2k^{1+ε})``, the threshold ``τ(k)``,
    the white probability ``p(k)``, logarithmic repetition counts, and a
    polynomial ID range — but sizes the diffusion phase from the *exact*
    convergence requirement of Lemma 4: with per-neighbour share ``s`` the
    diffusion matrix is ``I − s·L``, whose spectral gap is
    ``s·λ₂(L)`` (``λ₂`` = algebraic connectivity), so

    ``r(k) = ceil(diffusion_scale · (2k^{1+ε}/λ₂) · ln(k^{2(1+ε)})) + k^{1+ε}``.

    Providing ``λ₂`` plays the same role as providing ``i(G)`` in
    Theorem 3: a single scalar piece of knowledge about the graph that
    tightens the schedule.  The substitution is recorded in DESIGN.md §3
    and reported by the benchmarks.
    """

    def __init__(
        self,
        *,
        epsilon: float = 0.5,
        xi: float = 0.1,
        convergence_rate: float = 1.0,
        diffusion_scale: float = 2.0,
        certification_scale: float = 0.1,
        certification_min: int = 5,
        id_exponent: float = 4.0,
    ) -> None:
        super().__init__(epsilon=epsilon, xi=xi)
        if convergence_rate <= 0:
            raise ConfigurationError(
                f"convergence_rate must be positive, got {convergence_rate}"
            )
        if diffusion_scale <= 0 or certification_scale <= 0:
            raise ConfigurationError("scale factors must be positive")
        if certification_min < 1:
            raise ConfigurationError(
                f"certification_min must be >= 1, got {certification_min}"
            )
        self.convergence_rate = convergence_rate
        self.coefficients = _ScaledCoefficients(
            diffusion_scale=diffusion_scale,
            certification_scale=certification_scale,
            certification_min=certification_min,
            id_exponent=id_exponent,
        )

    def diffusion_rounds(self, k: int) -> int:
        power = self.estimate_power(k)
        log_term = math.log(max(2.0, power ** 2))
        head = (
            self.coefficients.diffusion_scale
            * (2.0 * power / self.convergence_rate)
            * log_term
        )
        return max(1, math.ceil(head + power))

    def certification_repeats(self, k: int) -> int:
        power = self.estimate_power(k)
        value = (
            self.coefficients.certification_scale
            * (4.0 * math.sqrt(2.0) / (math.sqrt(2.0) - 1.0) ** 2)
            * math.log(power / self.xi)
        )
        return max(self.coefficients.certification_min, math.ceil(value))

    def id_range(self, k: int) -> int:
        power = float(k) ** (self.coefficients.id_exponent * (1.0 + self.epsilon))
        log_term = math.log2(4.0 * k) ** 4
        return max(2, math.ceil(power * log_term))
