"""Shared result types and verification helpers for election protocols.

Every election protocol in the library (the paper's two protocols and the
baselines) produces, per node, a result mapping that contains at least a
``"leader"`` boolean flag — the flag variable of Definitions 1 and 2.  The
helpers here turn the per-node results of a simulation into an
:class:`ElectionOutcome` and verify the correctness conditions:

* *uniqueness*: exactly one node raised its flag;
* *agreement* (explicit elections only): every node knows the elected
  leader's identifier/certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.metrics import Metrics
from ..core.simulator import SimulationResult

__all__ = [
    "ElectionOutcome",
    "LeaderElectionResult",
    "SafetyTally",
    "outcome_from_results",
    "election_result_from_simulation",
    "safety_violations",
    "summarize_safety",
]


@dataclass(frozen=True)
class ElectionOutcome:
    """What the election produced, extracted from per-node results."""

    num_leaders: int
    leader_indices: List[int]
    candidate_indices: List[int]
    unique_leader: bool
    #: For explicit elections: True when every node reports the same leader
    #: identifier; ``None`` for implicit elections that do not disseminate it.
    agreement: Optional[bool] = None

    @property
    def elected(self) -> bool:
        """True when exactly one leader was elected."""
        return self.unique_leader

    @property
    def safe(self) -> bool:
        """Safety half of Definitions 1 and 2: *never more than one* leader.

        Under fault injection (:mod:`repro.dynamics`) liveness may be lost
        — the election can fail to elect anybody — but an algorithm whose
        runs stay ``safe`` never splits the network between two leaders.
        """
        return self.num_leaders <= 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_leaders": self.num_leaders,
            "leader_indices": list(self.leader_indices),
            "candidate_indices": list(self.candidate_indices),
            "unique_leader": self.unique_leader,
            "agreement": self.agreement,
        }


@dataclass
class LeaderElectionResult:
    """Outcome + cost of one protocol execution on one topology."""

    algorithm: str
    topology_name: str
    num_nodes: int
    num_edges: int
    outcome: ElectionOutcome
    metrics: Metrics
    rounds_executed: int
    seed: Optional[int] = None
    parameters: Dict[str, object] = field(default_factory=dict)
    node_results: List[Dict[str, object]] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.outcome.unique_leader

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def bits(self) -> int:
        return self.metrics.bits

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "topology": self.topology_name,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "success": self.success,
            "rounds": self.rounds_executed,
            "messages": self.messages,
            "bits": self.bits,
            "seed": self.seed,
            "outcome": self.outcome.as_dict(),
            "parameters": dict(self.parameters),
        }


def outcome_from_results(
    node_results: Sequence[Dict[str, object]],
    *,
    agreement_key: Optional[str] = None,
) -> ElectionOutcome:
    """Derive an :class:`ElectionOutcome` from per-node result mappings.

    ``agreement_key`` names the per-node field holding the node's view of
    the elected leader (e.g. ``"leader_certificate"``); when given, the
    outcome reports whether all nodes agree on a non-``None`` value.
    """
    leaders = [
        index for index, result in enumerate(node_results) if result.get("leader")
    ]
    candidates = [
        index for index, result in enumerate(node_results) if result.get("candidate")
    ]
    agreement: Optional[bool] = None
    if agreement_key is not None:
        views = [result.get(agreement_key) for result in node_results]
        agreement = len(views) > 0 and views[0] is not None and all(
            view == views[0] for view in views
        )
    return ElectionOutcome(
        num_leaders=len(leaders),
        leader_indices=leaders,
        candidate_indices=candidates,
        unique_leader=len(leaders) == 1,
        agreement=agreement,
    )


def safety_violations(
    results: Iterable[LeaderElectionResult],
) -> List[LeaderElectionResult]:
    """The runs that violated safety (more than one leader raised its flag).

    The robustness sweeps use this as their headline verdict: dialling a
    fault model up typically costs liveness (success rate drops) long
    before it costs safety, and a non-empty return value pinpoints the
    exact (topology, seed, adversary) runs where an algorithm split the
    network.
    """
    return [result for result in results if not result.outcome.safe]


@dataclass
class SafetyTally:
    """Incremental safety/liveness bookkeeping over a stream of runs.

    The experiment pipeline folds every completed run into per-cell
    tallies instead of retaining the run list (see
    :mod:`repro.analysis.streaming`), so safety verdicts over arbitrarily
    large sweeps cost O(violations) memory, not O(runs).  Tallies merge
    associatively — fold order (serial, pool completion order, shard
    merge) never changes the summary.
    """

    runs: int = 0
    safe_runs: int = 0
    elected_runs: int = 0
    violations: List[Dict[str, object]] = field(default_factory=list)

    def add(self, result: LeaderElectionResult) -> None:
        """Fold one run into the tally."""
        self.runs += 1
        if result.outcome.safe:
            self.safe_runs += 1
        else:
            self.violations.append(
                {
                    "algorithm": result.algorithm,
                    "topology": result.topology_name,
                    "seed": result.seed,
                    "num_leaders": result.outcome.num_leaders,
                    "adversary": result.parameters.get("adversary"),
                }
            )
        if result.outcome.unique_leader:
            self.elected_runs += 1

    def merge(self, other: "SafetyTally") -> None:
        """Fold another tally (e.g. another cell's or shard's) into this one."""
        self.runs += other.runs
        self.safe_runs += other.safe_runs
        self.elected_runs += other.elected_runs
        self.violations.extend(other.violations)

    def summary(self) -> Dict[str, object]:
        """The aggregate verdict dict (the shape ``summarize_safety`` returns).

        Violations are sorted by (algorithm, topology, seed) so the
        summary is deterministic regardless of the order runs completed
        in — a parallel pool feeds the tally in scheduling order.
        """
        return {
            "runs": self.runs,
            "safe_runs": self.safe_runs,
            "elected_runs": self.elected_runs,
            "safety_rate": 1.0 if not self.runs else self.safe_runs / self.runs,
            "success_rate": 0.0 if not self.runs else self.elected_runs / self.runs,
            "violations": sorted(
                self.violations,
                key=lambda v: (
                    str(v["algorithm"]),
                    str(v["topology"]),
                    str(v["seed"]),
                    str(v["num_leaders"]),
                ),
            ),
        }


def summarize_safety(
    results: Sequence[LeaderElectionResult],
) -> Dict[str, object]:
    """Aggregate safety/liveness verdicts over a batch of runs."""
    tally = SafetyTally()
    for result in results:
        tally.add(result)
    return tally.summary()


def election_result_from_simulation(
    algorithm: str,
    simulation: SimulationResult,
    *,
    seed: Optional[int] = None,
    parameters: Optional[Dict[str, object]] = None,
    agreement_key: Optional[str] = None,
) -> LeaderElectionResult:
    """Package a finished simulation as a :class:`LeaderElectionResult`."""
    node_results = simulation.results()
    outcome = outcome_from_results(node_results, agreement_key=agreement_key)
    return LeaderElectionResult(
        algorithm=algorithm,
        topology_name=simulation.topology.name,
        num_nodes=simulation.topology.num_nodes,
        num_edges=simulation.topology.num_edges,
        outcome=outcome,
        metrics=simulation.metrics,
        rounds_executed=simulation.total_rounds,
        seed=seed,
        parameters=dict(parameters or {}),
        node_results=list(node_results),
    )
