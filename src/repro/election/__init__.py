"""The paper's leader-election protocols (Sections 4 and 5.2)."""

from .base import (
    ElectionOutcome,
    LeaderElectionResult,
    SafetyTally,
    election_result_from_simulation,
    outcome_from_results,
    safety_violations,
    summarize_safety,
)
from .cautious_broadcast import (
    ActivateMessage,
    CautiousBroadcastConfig,
    CautiousBroadcastManager,
    CautiousBroadcastNode,
    CautiousBroadcastState,
    DeactivateMessage,
    OfferMessage,
    SizeMessage,
    StopMessage,
)
from .certificates import Certificate, best_certificate
from .convergecast import (
    ConvergecastConfig,
    ConvergecastMessage,
    ConvergecastNode,
    ConvergecastState,
)
from .diffusion import (
    DiffusionAveragingNode,
    DiffusionMessage,
    DisseminationMessage,
    convergence_rounds_estimate,
    diffusion_share,
    expected_average,
)
from .explicit import (
    AnnouncementNode,
    ExplicitElectionResult,
    LeaderAnnouncement,
    SpanningTree,
    extend_to_explicit,
)
from .ids import (
    ID_SPACE_EXPONENT,
    IdentityDraw,
    candidate_count_upper_bound,
    candidate_probability,
    draw_candidate,
    draw_identity,
    draw_node_id,
    expected_candidates,
    id_collision_probability_bound,
    id_space_size,
)
from .irrevocable import (
    IrrevocableConfig,
    IrrevocableLeaderElectionNode,
    run_irrevocable_election,
)
from .random_walk_probe import (
    RandomWalkProbeConfig,
    RandomWalkProbeNode,
    RandomWalkProbeState,
    WalkMessage,
)
from .revocable import (
    RevocableLeaderElectionNode,
    default_scaled_schedule,
    run_revocable_election,
)
from .schedules import ParameterSchedule, PaperSchedule, ScaledSchedule

__all__ = [
    # results
    "ElectionOutcome",
    "LeaderElectionResult",
    "outcome_from_results",
    "election_result_from_simulation",
    "safety_violations",
    "SafetyTally",
    "summarize_safety",
    # identities
    "ID_SPACE_EXPONENT",
    "IdentityDraw",
    "id_space_size",
    "draw_node_id",
    "draw_candidate",
    "draw_identity",
    "candidate_probability",
    "candidate_count_upper_bound",
    "expected_candidates",
    "id_collision_probability_bound",
    # cautious broadcast
    "CautiousBroadcastConfig",
    "CautiousBroadcastState",
    "CautiousBroadcastNode",
    "CautiousBroadcastManager",
    "OfferMessage",
    "SizeMessage",
    "ActivateMessage",
    "DeactivateMessage",
    "StopMessage",
    # random walks and convergecast
    "RandomWalkProbeConfig",
    "RandomWalkProbeState",
    "RandomWalkProbeNode",
    "WalkMessage",
    "ConvergecastConfig",
    "ConvergecastState",
    "ConvergecastNode",
    "ConvergecastMessage",
    # irrevocable election
    "IrrevocableConfig",
    "IrrevocableLeaderElectionNode",
    "run_irrevocable_election",
    # explicit extension
    "LeaderAnnouncement",
    "AnnouncementNode",
    "SpanningTree",
    "ExplicitElectionResult",
    "extend_to_explicit",
    # revocable election
    "Certificate",
    "best_certificate",
    "DiffusionMessage",
    "DisseminationMessage",
    "DiffusionAveragingNode",
    "diffusion_share",
    "expected_average",
    "convergence_rounds_estimate",
    "ParameterSchedule",
    "PaperSchedule",
    "ScaledSchedule",
    "RevocableLeaderElectionNode",
    "default_scaled_schedule",
    "run_revocable_election",
]
