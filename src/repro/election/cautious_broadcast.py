"""Cautious broadcast (Section 4, Algorithms 2–4).

A candidate grows a spanning tree of a bounded *territory* around itself:

* every tree node keeps a *confirmed* count of the nodes in its subtree and
  reports it to its parent whenever the count crosses the next power of two;
* growth (offering the source ID to a fresh random neighbour) is only
  allowed while a node's confirmed count is below its current threshold and
  the node is *active*; crossing a threshold doubles it, pauses the node and
  deactivates its children until the parent re-activates them;
* once the threshold reaches the territory cap ``x·t_mix·Φ`` the whole tree
  is stopped.

This "cautious" pacing is what bounds the number of messages to
``Õ(x·t_mix)`` while still informing ``Ω̃(x·t_mix·Φ)`` nodes w.h.p.
(Lemma 1).  The module provides

* :class:`CautiousBroadcastState` — the per-node, per-candidate state
  machine (exactly one candidate's broadcast);
* :class:`CautiousBroadcastNode` — a standalone protocol node running a
  single broadcast, used by unit tests and by the ablation benchmark;
* :class:`CautiousBroadcastManager` — the multiplexer that lets one node
  participate in many parallel broadcasts, serving at most one of them per
  round (the paper's super-round scheme), used by the composite
  irrevocable-election node.

Deviation from the literal pseudocode (documented in DESIGN.md): subtree
sizes are reported to the parent when they cross the node's current
threshold rather than in every round; this matches the prose description
and the message-complexity argument in Lemma 1 (a link carries O(1)
messages per threshold change), whereas the literal per-round reporting of
Algorithm 4 line 24 would inflate messages by a ``Θ(t_mix log n)`` factor.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core.errors import ConfigurationError, ProtocolError
from ..core.messages import Message
from ..core.node import Inbox, Outbox, ProtocolNode

__all__ = [
    "OfferMessage",
    "SizeMessage",
    "ActivateMessage",
    "DeactivateMessage",
    "StopMessage",
    "CautiousBroadcastConfig",
    "CautiousBroadcastState",
    "CautiousBroadcastNode",
    "CautiousBroadcastManager",
]

# --------------------------------------------------------------------------- #
# messages
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class OfferMessage(Message):
    """The source ID offered to a prospective child ("some ID")."""

    source_id: int


@dataclass(frozen=True)
class SizeMessage(Message):
    """Confirmed subtree size reported by a child to its parent."""

    source_id: int
    size: int


@dataclass(frozen=True)
class ActivateMessage(Message):
    """Re-activation prompt from a parent to a child."""

    source_id: int


@dataclass(frozen=True)
class DeactivateMessage(Message):
    """Deactivation prompt from a parent to a child."""

    source_id: int


@dataclass(frozen=True)
class StopMessage(Message):
    """Territory cap reached: stop the broadcast in the whole tree."""

    source_id: int


# --------------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CautiousBroadcastConfig:
    """Parameters of one cautious-broadcast execution.

    ``protocol_rounds`` is the per-instance round budget ``c·t_mix·log n``;
    ``territory_cap`` is the threshold ``x·t_mix·Φ`` at which the broadcast
    stops growing.
    """

    protocol_rounds: int
    territory_cap: float

    def __post_init__(self) -> None:
        if self.protocol_rounds < 1:
            raise ConfigurationError(
                f"protocol_rounds must be >= 1, got {self.protocol_rounds}"
            )
        if self.territory_cap < 1:
            raise ConfigurationError(
                f"territory_cap must be >= 1, got {self.territory_cap}"
            )

    @staticmethod
    def from_parameters(
        *,
        n: int,
        t_mix: int,
        conductance: float,
        walks_per_candidate: int,
        c: float = 2.0,
    ) -> "CautiousBroadcastConfig":
        """Build the config from the quantities the paper parameterises on."""
        if n < 1 or t_mix < 1 or conductance <= 0:
            raise ConfigurationError(
                f"invalid parameters n={n}, t_mix={t_mix}, conductance={conductance}"
            )
        log_n = max(1.0, math.log(n))
        rounds = max(1, math.ceil(c * t_mix * log_n))
        cap = max(2.0, walks_per_candidate * t_mix * conductance)
        return CautiousBroadcastConfig(protocol_rounds=rounds, territory_cap=cap)


# --------------------------------------------------------------------------- #
# per-instance state machine
# --------------------------------------------------------------------------- #

ACTIVE = "active"
PASSIVE = "passive"
STOPPED = "stop"


class CautiousBroadcastState:
    """State of one node in one candidate's cautious broadcast."""

    def __init__(
        self,
        *,
        num_ports: int,
        config: CautiousBroadcastConfig,
        source_id: int,
        is_source: bool,
    ) -> None:
        self.config = config
        self.source_id = source_id
        self.is_source = is_source
        self.joined = is_source
        self.parent_port: Optional[int] = None
        self.children: Set[int] = set()
        self.child_size: Dict[int, int] = {}
        self.child_active: Dict[int, bool] = {}
        self.avail: Set[int] = set(range(1, num_ports + 1))
        self.status = ACTIVE if is_source else PASSIVE
        self.threshold = 1
        self.rounds_executed = 0
        self.stop_notified = False
        self._size_reported = 0  # last size value sent to the parent

    # -------------------------------------------------------------- #
    # receptions (Algorithm 3)
    # -------------------------------------------------------------- #
    def handle_message(self, port: int, message: Message) -> None:
        """Process one received message belonging to this instance."""
        # A port we heard from is no longer available for fresh offers.
        self.avail.discard(port)

        if isinstance(message, StopMessage):
            self.status = STOPPED
            return
        if isinstance(message, SizeMessage):
            # A size report means the child just crossed a threshold and
            # paused itself; it stays paused until this node re-activates it
            # from its growth branch (the "re-activation prompt").
            self.child_size[port] = message.size
            self.child_active[port] = False
            self.children.add(port)
            return
        if self.is_source:
            # The source ignores offers and activation prompts.
            return
        if isinstance(message, ActivateMessage):
            if self.status != STOPPED:
                self.status = ACTIVE
            return
        if isinstance(message, DeactivateMessage):
            if self.status != STOPPED:
                self.status = PASSIVE
            return
        if isinstance(message, OfferMessage):
            if not self.joined:
                self.joined = True
                self.parent_port = port
                self.status = ACTIVE
            return
        raise ProtocolError(
            f"unexpected cautious-broadcast message {type(message).__name__}"
        )

    # -------------------------------------------------------------- #
    # transmissions (Algorithm 4)
    # -------------------------------------------------------------- #
    def confirmed_subtree_size(self) -> int:
        """This node plus the confirmed sizes reported by its children."""
        return 1 + sum(self.child_size.values())

    @property
    def exhausted(self) -> bool:
        """Whether the per-instance round budget has been used up."""
        return self.rounds_executed >= self.config.protocol_rounds

    def prepare_transmissions(self, rng: random.Random) -> Outbox:
        """One protocol round of Algorithm 4 for this instance."""
        if not self.joined or self.exhausted:
            return {}
        self.rounds_executed += 1
        outbox: Outbox = {}

        if self.threshold >= self.config.territory_cap:
            self.status = STOPPED

        if self.status == STOPPED:
            if not self.stop_notified:
                for port in self.children:
                    outbox[port] = StopMessage(self.source_id)
                if not self.is_source and self.parent_port is not None:
                    outbox[self.parent_port] = StopMessage(self.source_id)
                self.stop_notified = True
            return outbox

        subtree = self.confirmed_subtree_size()

        if subtree < self.threshold and self.status == ACTIVE:
            # Growth mode: re-activate children, then probe one fresh port.
            for port in self.children:
                if not self.child_active.get(port, False):
                    outbox[port] = ActivateMessage(self.source_id)
                    self.child_active[port] = True
            fresh = self._pick_available_port(rng, exclude=set(outbox))
            if fresh is not None:
                outbox[fresh] = OfferMessage(self.source_id)
        elif subtree >= self.threshold:
            # The confirmed count crossed the threshold: report upward,
            # double the threshold, pause the subtree.
            if not self.is_source and self.parent_port is not None:
                outbox[self.parent_port] = SizeMessage(self.source_id, subtree)
                self._size_reported = subtree
            self.threshold *= 2
            if not self.is_source:
                self.status = PASSIVE
            for port in self.children:
                if self.child_active.get(port, False):
                    outbox.setdefault(port, DeactivateMessage(self.source_id))
                    self.child_active[port] = False
        return outbox

    def _pick_available_port(
        self, rng: random.Random, *, exclude: Set[int]
    ) -> Optional[int]:
        candidates = sorted(self.avail - exclude)
        if not candidates:
            return None
        port = rng.choice(candidates)
        self.avail.discard(port)
        return port

    def quiescent(self) -> bool:
        """Whether :meth:`prepare_transmissions` is a guaranteed no-op.

        True only when every future call — until a message is received —
        would return an empty outbox, draw nothing from the RNG and leave
        the instance's observable behaviour unchanged (``rounds_executed``
        may drift, but it only feeds ``exhausted``, which within a
        super-round schedule can flip no earlier than the instance's final
        in-phase step).  The event-driven simulator backend uses this to
        skip nodes whose instances have all gone quiet.
        """
        if not self.joined or self.exhausted:
            return True
        if self.threshold >= self.config.territory_cap and self.status != STOPPED:
            return False  # next step transitions to STOPPED and notifies
        if self.status == STOPPED:
            return self.stop_notified
        if self.confirmed_subtree_size() >= self.threshold:
            return False  # next step reports upward and doubles the threshold
        if self.status != ACTIVE:
            return True  # passive below threshold: nothing to do
        if any(not self.child_active.get(port, False) for port in self.children):
            return False  # next step re-activates children
        return not self.avail  # growth only possible with a fresh port left

    # -------------------------------------------------------------- #
    # inspection
    # -------------------------------------------------------------- #
    def summary(self) -> Dict[str, object]:
        return {
            "source_id": self.source_id,
            "is_source": self.is_source,
            "joined": self.joined,
            "parent_port": self.parent_port,
            "children": sorted(self.children),
            "status": self.status,
            "threshold": self.threshold,
            "confirmed_size": self.confirmed_subtree_size(),
            "rounds_executed": self.rounds_executed,
        }


# --------------------------------------------------------------------------- #
# standalone single-broadcast node
# --------------------------------------------------------------------------- #


class CautiousBroadcastNode(ProtocolNode):
    """A protocol node running exactly one cautious broadcast.

    Used on its own for unit tests and for the ablation benchmark that
    compares cautious broadcast against unrestricted flooding; the full
    election embeds the same state machine through
    :class:`CautiousBroadcastManager`.
    """

    def __init__(
        self,
        num_ports: int,
        rng: random.Random,
        *,
        config: CautiousBroadcastConfig,
        is_source: bool,
        source_id: int = 1,
    ) -> None:
        super().__init__(num_ports, rng)
        self.config = config
        self.state = CautiousBroadcastState(
            num_ports=num_ports,
            config=config,
            source_id=source_id,
            is_source=is_source,
        )
        self._halted = False

    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, round_index: int, inbox: Inbox) -> Outbox:
        for port, message in inbox.items():
            self.state.handle_message(port, message)
        if round_index >= self.config.protocol_rounds:
            self._halted = True
            return {}
        return self.state.prepare_transmissions(self.rng)

    def result(self) -> Dict[str, object]:
        summary = self.state.summary()
        summary["halted"] = self._halted
        return summary


# --------------------------------------------------------------------------- #
# multiplexer for parallel broadcasts (the super-round scheme)
# --------------------------------------------------------------------------- #


class CautiousBroadcastManager:
    """Multiplexes the parallel cautious broadcasts a node participates in.

    Each node assigns the executions it knows about to the slots of a
    super-round in discovery order, exactly one execution transmitting per
    round (the paper's scheme, Section 4).  Receptions are processed in any
    round because they are purely local.
    """

    def __init__(
        self,
        *,
        num_ports: int,
        config: CautiousBroadcastConfig,
        num_slots: int,
    ) -> None:
        if num_slots < 1:
            raise ConfigurationError(f"num_slots must be >= 1, got {num_slots}")
        self.num_ports = num_ports
        self.config = config
        self.num_slots = num_slots
        self._states: Dict[int, CautiousBroadcastState] = {}
        self._order: List[int] = []
        self.overflow_instances = 0

    # -------------------------------------------------------------- #
    def add_source_instance(self, source_id: int) -> CautiousBroadcastState:
        """Register this node as the source (candidate) of an instance."""
        state = CautiousBroadcastState(
            num_ports=self.num_ports,
            config=self.config,
            source_id=source_id,
            is_source=True,
        )
        self._register(source_id, state)
        return state

    def _register(self, source_id: int, state: CautiousBroadcastState) -> None:
        if source_id in self._states:
            raise ProtocolError(f"instance {source_id} registered twice")
        self._states[source_id] = state
        if len(self._order) < self.num_slots:
            self._order.append(source_id)
        else:
            # More parallel executions than slots: the paper shows this does
            # not happen w.h.p.; we keep counting so experiments can verify.
            self.overflow_instances += 1
            self._order.append(source_id)

    def _state_for(self, source_id: int) -> CautiousBroadcastState:
        state = self._states.get(source_id)
        if state is None:
            state = CautiousBroadcastState(
                num_ports=self.num_ports,
                config=self.config,
                source_id=source_id,
                is_source=False,
            )
            self._register(source_id, state)
        return state

    # -------------------------------------------------------------- #
    def handle_inbox(self, inbox: Inbox) -> None:
        """Route received broadcast messages to their instances."""
        for port, message in inbox.items():
            source_id = getattr(message, "source_id", None)
            if source_id is None:
                raise ProtocolError(
                    f"cautious-broadcast manager received foreign message "
                    f"{type(message).__name__}"
                )
            self._state_for(source_id).handle_message(port, message)

    def transmissions_for_slot(self, slot: int, rng: random.Random) -> Outbox:
        """Transmissions of the instance assigned to ``slot`` (may be empty)."""
        if slot < 0 or slot >= self.num_slots:
            raise ProtocolError(f"slot {slot} out of range 0..{self.num_slots - 1}")
        if slot >= len(self._order):
            return {}
        source_id = self._order[slot]
        return self._states[source_id].prepare_transmissions(rng)

    def quiescent(self) -> bool:
        """Whether every known instance is quiescent (slots are all no-ops)."""
        return all(state.quiescent() for state in self._states.values())

    # -------------------------------------------------------------- #
    # inspection used by the later election phases and by analysis
    # -------------------------------------------------------------- #
    def joined_instances(self) -> List[int]:
        """Source IDs of the territories this node belongs to."""
        return [sid for sid, state in self._states.items() if state.joined]

    def parent_ports(self) -> Set[int]:
        """Distinct parent ports over all joined (non-source) instances."""
        return {
            state.parent_port
            for state in self._states.values()
            if state.joined and not state.is_source and state.parent_port is not None
        }

    def instance_count(self) -> int:
        return len(self._states)

    def state(self, source_id: int) -> CautiousBroadcastState:
        return self._states[source_id]

    def summaries(self) -> List[Dict[str, object]]:
        return [state.summary() for state in self._states.values()]
