"""Random-walk probing of broadcast territories (Section 4, Algorithm 5).

After the candidates have grown their territories, each candidate issues
``x`` independent *lazy* random-walk tokens carrying its ID.  Tokens walk
for ``c·t_mix·log n`` rounds; every visited node remembers the largest walk
ID it has ever seen.  The CONGEST encoding follows the paper: all tokens a
node forwards through the same port in one round are merged into a single
message carrying the current maximum walk ID and the token count, and a
node never forwards more than one distinct ID per link per round (smaller
IDs are absorbed by larger ones).

:class:`RandomWalkProbeState` is the per-node state machine; the composite
irrevocable-election node drives it, and :class:`RandomWalkProbeNode` wraps
it as a standalone protocol for unit tests and analysis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import ConfigurationError
from ..core.messages import Message
from ..core.node import Inbox, Outbox, ProtocolNode

__all__ = [
    "WalkMessage",
    "RandomWalkProbeConfig",
    "RandomWalkProbeState",
    "RandomWalkProbeNode",
]


@dataclass(frozen=True)
class WalkMessage(Message):
    """Tokens forwarded through one port in one round.

    ``walk_id`` is the largest walk ID among the forwarded tokens (smaller
    IDs are substituted by larger ones, per the paper); ``count`` is the
    number of token copies taking this link.
    """

    walk_id: int
    count: int


@dataclass(frozen=True)
class RandomWalkProbeConfig:
    """Parameters of the probing phase."""

    walk_rounds: int
    walks_per_candidate: int

    def __post_init__(self) -> None:
        if self.walk_rounds < 1:
            raise ConfigurationError(
                f"walk_rounds must be >= 1, got {self.walk_rounds}"
            )
        if self.walks_per_candidate < 1:
            raise ConfigurationError(
                f"walks_per_candidate must be >= 1, got {self.walks_per_candidate}"
            )


class RandomWalkProbeState:
    """Per-node state of the walk phase.

    ``max_walk_id`` starts at the node's own ID for candidates (their
    tokens carry it) and at 0 for everyone else — a non-candidate's private
    ID never enters any walk, so it must not shadow the candidates'
    (see DESIGN.md, deviation 2).
    """

    def __init__(
        self,
        *,
        num_ports: int,
        config: RandomWalkProbeConfig,
        candidate: bool,
        node_id: int,
    ) -> None:
        self.config = config
        self.num_ports = num_ports
        self.candidate = candidate
        self.node_id = node_id
        self.max_walk_id = node_id if candidate else 0
        self.tokens = 0
        self.tokens_seen = 0
        self.rounds_executed = 0
        self._initial_scatter_done = False

    # -------------------------------------------------------------- #
    def initial_scatter(self, rng: random.Random) -> Dict[int, int]:
        """Distribute the candidate's ``x`` tokens to random ports.

        Non-candidates scatter nothing.  Returns per-port token counts.
        """
        self._initial_scatter_done = True
        counts: Dict[int, int] = {}
        if not self.candidate or self.num_ports == 0:
            return counts
        for _ in range(self.config.walks_per_candidate):
            port = rng.randint(1, self.num_ports)
            counts[port] = counts.get(port, 0) + 1
        return counts

    def absorb(self, inbox: Inbox) -> None:
        """Merge received tokens and walk IDs into the local state."""
        for message in inbox.values():
            if not isinstance(message, WalkMessage):
                continue
            self.tokens += message.count
            self.tokens_seen += message.count
            if message.walk_id > self.max_walk_id:
                self.max_walk_id = message.walk_id

    def move_tokens(self, rng: random.Random) -> Dict[int, int]:
        """Advance the lazy walk for every held token; return per-port counts."""
        counts: Dict[int, int] = {}
        if self.num_ports == 0:
            return counts
        staying = 0
        for _ in range(self.tokens):
            if rng.random() < 0.5:
                staying += 1
            else:
                port = rng.randint(1, self.num_ports)
                counts[port] = counts.get(port, 0) + 1
        self.tokens = staying
        return counts

    def step(self, rng: random.Random, inbox: Inbox) -> Outbox:
        """One walk round: absorb, move, and emit the per-port messages."""
        self.absorb(inbox)
        if not self._initial_scatter_done:
            counts = self.initial_scatter(rng)
        else:
            counts = self.move_tokens(rng)
        self.rounds_executed += 1
        return {
            port: WalkMessage(walk_id=self.max_walk_id, count=count)
            for port, count in counts.items()
            if count > 0
        }

    def quiescent(self) -> bool:
        """Whether :meth:`step` with an empty inbox is a guaranteed no-op.

        True once the initial scatter is done and the node holds no
        tokens: absorbing an empty inbox changes nothing, moving zero
        tokens draws no randomness and sends nothing.  Only
        ``rounds_executed`` would advance, which feeds no decision.  The
        event-driven backend uses this to park nodes no walk currently
        visits; an arriving token always wakes them.
        """
        return self._initial_scatter_done and self.tokens == 0

    def summary(self) -> Dict[str, object]:
        return {
            "candidate": self.candidate,
            "node_id": self.node_id,
            "max_walk_id": self.max_walk_id,
            "tokens_held": self.tokens,
            "tokens_seen": self.tokens_seen,
            "rounds_executed": self.rounds_executed,
        }


class RandomWalkProbeNode(ProtocolNode):
    """Standalone protocol node running only the walk phase."""

    def __init__(
        self,
        num_ports: int,
        rng: random.Random,
        *,
        config: RandomWalkProbeConfig,
        candidate: bool,
        node_id: int,
    ) -> None:
        super().__init__(num_ports, rng)
        self.config = config
        self.state = RandomWalkProbeState(
            num_ports=num_ports,
            config=config,
            candidate=candidate,
            node_id=node_id,
        )
        self._halted = False

    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, round_index: int, inbox: Inbox) -> Outbox:
        if round_index >= self.config.walk_rounds:
            self.state.absorb(inbox)
            self._halted = True
            return {}
        return self.state.step(self.rng, inbox)

    def result(self) -> Dict[str, object]:
        summary = self.state.summary()
        summary["halted"] = self._halted
        return summary
