"""From implicit to explicit election: leader announcement and BFS tree.

The paper (Section 3) notes that once an implicit leader election has
completed, standard extensions give the *explicit* version (every node
learns who the leader is), Broadcast, and tree construction, at an extra
``O(m)`` messages and ``O(D)`` time.  This module implements that
extension for any of the library's implicit protocols:

* the elected leader floods an announcement carrying its ID;
* the first port on which a node hears the announcement becomes its parent,
  which yields a BFS spanning tree rooted at the leader (the standard
  distributed BFS construction);
* each node records the leader ID, its parent port and its depth.

:func:`extend_to_explicit` takes the :class:`LeaderElectionResult` of an
implicit run, replays the announcement phase on the same topology, and
returns an :class:`ExplicitElectionResult` with the tree and the cost of
the extension, which tests verify is ``O(m)`` messages and ``≤ D + O(1)``
rounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import ConfigurationError
from ..core.messages import Message
from ..core.metrics import Metrics, MetricsCollector
from ..core.node import Inbox, Outbox, ProtocolNode
from ..core.simulator import SynchronousSimulator, build_nodes
from ..graphs.topology import Topology
from .base import LeaderElectionResult

__all__ = [
    "LeaderAnnouncement",
    "AnnouncementNode",
    "SpanningTree",
    "ExplicitElectionResult",
    "extend_to_explicit",
]


@dataclass(frozen=True)
class LeaderAnnouncement(Message):
    """Flooded by the leader; ``depth`` is the hop distance travelled."""

    leader_id: int
    depth: int


class AnnouncementNode(ProtocolNode):
    """One node of the announcement/BFS-tree phase."""

    def __init__(
        self,
        num_ports: int,
        rng: random.Random,
        *,
        is_leader: bool,
        leader_id: int,
        max_rounds: int,
    ) -> None:
        super().__init__(num_ports, rng)
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.is_leader = is_leader
        self.known_leader_id: Optional[int] = leader_id if is_leader else None
        self.parent_port: Optional[int] = None
        self.depth: Optional[int] = 0 if is_leader else None
        self.max_rounds = max_rounds
        self._announced = False
        self._halted = False

    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, round_index: int, inbox: Inbox) -> Outbox:
        for port in sorted(inbox):
            message = inbox[port]
            if not isinstance(message, LeaderAnnouncement):
                continue
            if self.known_leader_id is None:
                self.known_leader_id = message.leader_id
                self.parent_port = port
                self.depth = message.depth + 1

        if self._announced or round_index >= self.max_rounds:
            # Nothing left to do: the announcement was forwarded (or the
            # phase is over for an unreached node in a disconnected test).
            self._halted = True
            return {}

        if self.known_leader_id is not None:
            self._announced = True
            announcement = LeaderAnnouncement(
                leader_id=self.known_leader_id, depth=self.depth or 0
            )
            ports = [port for port in self.ports() if port != self.parent_port]
            return {port: announcement for port in ports}
        return {}

    def result(self) -> Dict[str, object]:
        return {
            "leader": self.is_leader,
            "candidate": self.is_leader,
            "known_leader_id": self.known_leader_id,
            "parent_port": self.parent_port,
            "depth": self.depth,
            "halted": self._halted,
        }


@dataclass
class SpanningTree:
    """A rooted spanning tree expressed over node indices (analysis view)."""

    root: int
    parent: Dict[int, Optional[int]] = field(default_factory=dict)
    depth: Dict[int, int] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    def children_of(self, node: int) -> List[int]:
        return [child for child, parent in self.parent.items() if parent == node]

    def is_spanning(self, topology: Topology) -> bool:
        """All nodes present, exactly one root, every edge is a graph edge."""
        if set(self.parent) != set(range(topology.num_nodes)):
            return False
        roots = [node for node, parent in self.parent.items() if parent is None]
        if roots != [self.root]:
            return False
        return all(
            topology.has_edge(node, parent)
            for node, parent in self.parent.items()
            if parent is not None
        )

    def max_depth(self) -> int:
        return max(self.depth.values()) if self.depth else 0


@dataclass
class ExplicitElectionResult:
    """Outcome of the explicit extension."""

    implicit: LeaderElectionResult
    leader_index: int
    leader_id: int
    tree: SpanningTree
    all_know_leader: bool
    metrics: Metrics
    rounds_executed: int

    @property
    def total_messages(self) -> int:
        """Messages of the implicit election plus the announcement phase."""
        return self.implicit.messages + self.metrics.messages

    @property
    def total_rounds(self) -> int:
        return self.implicit.rounds_executed + self.rounds_executed

    def as_dict(self) -> Dict[str, object]:
        return {
            "leader_index": self.leader_index,
            "leader_id": self.leader_id,
            "all_know_leader": self.all_know_leader,
            "tree_depth": self.tree.max_depth(),
            "announcement_messages": self.metrics.messages,
            "announcement_rounds": self.rounds_executed,
            "total_messages": self.total_messages,
            "total_rounds": self.total_rounds,
        }


def extend_to_explicit(
    topology: Topology,
    implicit: LeaderElectionResult,
    *,
    seed: Optional[int] = None,
    extra_rounds: int = 2,
) -> ExplicitElectionResult:
    """Run the announcement/BFS phase after an implicit election.

    Raises :class:`ConfigurationError` when the implicit election did not
    produce a unique leader (there is nothing meaningful to announce).
    """
    if not implicit.success:
        raise ConfigurationError(
            "explicit extension requires a successful implicit election"
        )
    if topology.num_nodes != implicit.num_nodes:
        raise ConfigurationError(
            "topology does not match the implicit election result"
        )
    leader_index = implicit.outcome.leader_indices[0]
    leader_record = (
        implicit.node_results[leader_index] if implicit.node_results else {}
    )
    leader_id = int(leader_record.get("node_id") or leader_index + 1)
    max_rounds = topology.diameter() + extra_rounds

    def factory(index: int, num_ports: int, rng: random.Random) -> ProtocolNode:
        return AnnouncementNode(
            num_ports,
            rng,
            is_leader=(index == leader_index),
            leader_id=leader_id,
            max_rounds=max_rounds,
        )

    metrics = MetricsCollector()
    nodes = build_nodes(topology, factory, seed=seed)
    simulator = SynchronousSimulator(topology, nodes, metrics=metrics)
    with metrics.phase("announcement"):
        simulation = simulator.run(max_rounds + 1)

    tree = SpanningTree(root=leader_index)
    all_know = True
    for index, record in enumerate(simulation.results()):
        if record["known_leader_id"] != leader_id:
            all_know = False
        parent_port = record["parent_port"]
        parent = (
            topology.neighbor_via(index, parent_port)
            if parent_port is not None
            else None
        )
        tree.parent[index] = parent
        tree.depth[index] = record["depth"] if record["depth"] is not None else -1

    return ExplicitElectionResult(
        implicit=implicit,
        leader_index=leader_index,
        leader_id=leader_id,
        tree=tree,
        all_know_leader=all_know,
        metrics=simulation.metrics,
        rounds_executed=simulation.rounds_executed,
    )
