"""Blind Leader Election with Certificates via Diffusion with Thresholds.

The revocable election of Section 5.2 (Algorithms 6–7, Theorem 3,
Corollary 1).  Nodes iterate over doubling network-size estimates
``k = 2, 4, 8, ...``; for each estimate they repeat a *certification*
phase ``f(k)`` times:

1. every node colours itself white with probability ``p(k)``;
2. a potential-diffusion phase of ``r(k)`` rounds averages potentials
   (black = 1, white = 0) and applies the low-``k`` detectors: too many
   neighbours, a neighbour already flagged low, or a final potential above
   ``τ(k)``;
3. a dissemination phase of ``k^{1+ε}`` rounds floods the colour/detector
   status and the strongest leadership certificate seen so far.

After the ``f(k)`` repetitions a node that has not yet chosen an ID, saw no
white node in more than half of the repetitions, and had at least one
repetition end in the *probing* state, draws an ID uniformly from
``{1..k^{4(1+ε)}·log⁴(4k)}`` and stamps it with the certificate ``K = k``.
The node with the strongest certificate (largest ``K``, then smallest ID)
is the leader; flags are revocable — a node lowers its flag whenever it
learns of a stronger certificate — which is exactly what Definition 2
permits and what Theorem 2 shows is unavoidable without knowing ``n``.

The protocol itself never terminates (nodes cannot know the election is
final); the driver :func:`run_revocable_election` — which, unlike the
nodes, knows ``n`` — simulates until the schedule's final estimate has been
processed and then reads off the outcome.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.generator_node import GeneratorNode
from ..core.metrics import MetricsCollector
from ..core.node import Inbox, Outbox, ProtocolNode
from ..core.simulator import SynchronousSimulator, build_nodes
from ..graphs.spectral import algebraic_connectivity
from ..graphs.topology import Topology
from .base import LeaderElectionResult, election_result_from_simulation
from .certificates import Certificate
from .diffusion import DiffusionMessage, DisseminationMessage, diffusion_share
from .schedules import ParameterSchedule, PaperSchedule, ScaledSchedule

__all__ = [
    "RevocableLeaderElectionNode",
    "run_revocable_election",
    "default_scaled_schedule",
    "ALGORITHM_NAME",
]

ALGORITHM_NAME = "kowalski-mosteiro-revocable"

PROBING = "probing"
LOW = "low"


class RevocableLeaderElectionNode(GeneratorNode):
    """One anonymous node running Algorithms 6–7.

    The node uses *no* information about the network: only its port count
    and its private randomness.  The parameter schedule is part of the
    algorithm (it is the same at every node), not knowledge about the
    graph — except for the optional isoperimetric number of Theorem 3,
    which callers opt into explicitly.
    """

    def __init__(
        self,
        num_ports: int,
        rng: random.Random,
        *,
        schedule: ParameterSchedule,
    ) -> None:
        super().__init__(num_ports, rng)
        self.schedule = schedule
        self.estimate = 1
        self.own_id: Optional[int] = None
        self.own_estimate: Optional[int] = None
        self.leader_certificate: Optional[Certificate] = None
        self.leader = False
        self.iterations_completed = 0
        self.decision_estimate: Optional[int] = None

    # ------------------------------------------------------------------ #
    # protocol body
    # ------------------------------------------------------------------ #
    def run(self):
        while True:
            self.estimate *= 2
            k = self.estimate
            repeats = self.schedule.certification_repeats(k)
            status: List[str] = []
            empty: List[bool] = []
            for _ in range(repeats):
                q, white_seen = yield from self._avg(k)
                status.append(q)
                empty.append(not white_seen)
            self._decision_phase(k, status, empty)
            self.iterations_completed += 1

    def _decision_phase(self, k: int, status: List[str], empty: List[bool]) -> None:
        """Algorithm 6, lines 14–17 (purely local, consumes no rounds)."""
        repeats = len(status)
        if (
            self.own_id is None
            and sum(empty) > repeats / 2.0
            and status.count(PROBING) > 0
        ):
            self.own_id = self.rng.randint(1, self.schedule.id_range(k))
            self.own_estimate = k
            self.decision_estimate = k
            own = Certificate(estimate=k, node_id=self.own_id)
            if own.beats(self.leader_certificate):
                self.leader_certificate = own
        self._refresh_leader_flag()

    def _refresh_leader_flag(self) -> None:
        self.leader = (
            self.own_id is not None
            and self.leader_certificate is not None
            and self.leader_certificate.estimate == self.own_estimate
            and self.leader_certificate.node_id == self.own_id
        )

    # ------------------------------------------------------------------ #
    # the Avg subroutine (Algorithm 7)
    # ------------------------------------------------------------------ #
    def _avg(self, k: int):
        """One certification repetition; returns ``(status, white_seen)``."""
        epsilon = self.schedule.epsilon
        share = diffusion_share(k, epsilon)
        degree_cap = float(k) ** (1.0 + epsilon)
        threshold = self.schedule.potential_threshold(k)

        white = self.rng.random() < self.schedule.white_probability(k)
        white_seen = white
        status = PROBING
        potential = 0.0 if white else 1.0

        # --- diffusion phase -------------------------------------------- #
        for _ in range(self.schedule.diffusion_rounds(k)):
            outbox: Outbox = {
                port: DiffusionMessage(
                    potential=potential,
                    status_low=(status == LOW),
                    white_seen=white_seen,
                    leader_id=(
                        self.leader_certificate.node_id
                        if self.leader_certificate
                        else None
                    ),
                    leader_estimate=(
                        self.leader_certificate.estimate
                        if self.leader_certificate
                        else None
                    ),
                )
                for port in self.ports()
            }
            sent_potential = potential
            inbox = yield outbox

            neighbor_low = False
            incoming = 0.0
            for message in inbox.values():
                if isinstance(message, (DiffusionMessage, DisseminationMessage)):
                    if message.status_low:
                        neighbor_low = True
                    if message.white_seen:
                        white_seen = True
                    self._absorb_leader_info(message)
                if isinstance(message, DiffusionMessage):
                    incoming += message.potential

            if (
                status == PROBING
                and self.num_ports <= degree_cap
                and not neighbor_low
            ):
                potential = (
                    sent_potential
                    + share * incoming
                    - share * self.num_ports * sent_potential
                )
            else:
                status = LOW
                potential = 1.0

        if potential > threshold:
            status = LOW
            potential = 1.0

        # --- dissemination phase ---------------------------------------- #
        for _ in range(self.schedule.dissemination_rounds(k)):
            outbox = {
                port: DisseminationMessage(
                    status_low=(status == LOW),
                    white_seen=white_seen,
                    leader_id=(
                        self.leader_certificate.node_id
                        if self.leader_certificate
                        else None
                    ),
                    leader_estimate=(
                        self.leader_certificate.estimate
                        if self.leader_certificate
                        else None
                    ),
                )
                for port in self.ports()
            }
            inbox = yield outbox
            for message in inbox.values():
                if isinstance(message, (DiffusionMessage, DisseminationMessage)):
                    if message.status_low:
                        status = LOW
                    if message.white_seen:
                        white_seen = True
                    self._absorb_leader_info(message)

        self._refresh_leader_flag()
        return status, white_seen

    def _absorb_leader_info(self, message) -> None:
        if message.leader_id is None or message.leader_estimate is None:
            return
        candidate = Certificate(
            estimate=message.leader_estimate, node_id=message.leader_id
        )
        if candidate.beats(self.leader_certificate):
            self.leader_certificate = candidate
            # Revocation happens the moment a stronger certificate is heard.
            self._refresh_leader_flag()

    # ------------------------------------------------------------------ #
    def result(self) -> Dict[str, object]:
        return {
            "leader": self.leader,
            "candidate": self.own_id is not None,
            "node_id": self.own_id,
            "own_estimate": self.own_estimate,
            "decision_estimate": self.decision_estimate,
            "leader_certificate": (
                self.leader_certificate.as_tuple() if self.leader_certificate else None
            ),
            "estimate": self.estimate,
            "iterations_completed": self.iterations_completed,
        }


def default_scaled_schedule(
    topology: Topology,
    *,
    epsilon: float = 0.5,
    xi: float = 0.1,
    diffusion_scale: float = 2.0,
    certification_scale: float = 0.1,
    certification_min: int = 5,
) -> ScaledSchedule:
    """A :class:`ScaledSchedule` tuned to the topology's algebraic connectivity.

    Supplying a single expansion scalar plays the same role as supplying
    ``i(G)`` in Theorem 3 (the paper's own tighter variant); the blind
    Corollary 1 schedule is available through
    :class:`~repro.election.schedules.PaperSchedule`.
    """
    rate = algebraic_connectivity(topology)
    return ScaledSchedule(
        epsilon=epsilon,
        xi=xi,
        convergence_rate=max(rate, 1e-9),
        diffusion_scale=diffusion_scale,
        certification_scale=certification_scale,
        certification_min=certification_min,
    )


def run_revocable_election(
    topology: Topology,
    *,
    seed: Optional[int] = None,
    schedule: Optional[ParameterSchedule] = None,
    extra_estimates: int = 0,
    settle_rounds: Optional[int] = None,
    metrics: Optional[MetricsCollector] = None,
    max_rounds: Optional[int] = None,
) -> LeaderElectionResult:
    """Run the blind election until the schedule's final estimate completes.

    ``extra_estimates`` simulates additional full doublings beyond the
    point at which Theorem 3 guarantees every node has decided.
    ``settle_rounds`` (default ``2n + 2``) simulates a slice of the next
    estimate so the strongest certificate — chosen in the final decision
    phase — can flood the network and pretenders lower their flags; this
    is exactly the revocation behaviour Definition 2 allows.

    Registered in the protocol registry as ``revocable`` with
    ``epsilon``/``xi``/``extra_estimates`` as its schema (see
    :mod:`repro.protocols`): a spec like ``revocable:epsilon=0.25`` builds
    the :func:`default_scaled_schedule` with those constants and runs this
    entry point.
    """
    if schedule is None:
        schedule = default_scaled_schedule(topology)
    final_estimate = schedule.final_estimate(topology.num_nodes)
    for _ in range(extra_estimates):
        final_estimate *= 2
    if settle_rounds is None:
        settle_rounds = 2 * topology.num_nodes + 2
    total_rounds = schedule.total_rounds_through(final_estimate) + settle_rounds
    if max_rounds is not None:
        total_rounds = min(total_rounds, max_rounds)

    collector = metrics if metrics is not None else MetricsCollector()

    def factory(index: int, num_ports: int, rng: random.Random) -> ProtocolNode:
        return RevocableLeaderElectionNode(num_ports, rng, schedule=schedule)

    nodes = build_nodes(topology, factory, seed=seed)
    simulator = SynchronousSimulator(topology, nodes, metrics=collector)
    with collector.phase("certification"):
        simulation = simulator.run(total_rounds)

    parameters: Dict[str, object] = {
        "schedule": type(schedule).__name__,
        "epsilon": schedule.epsilon,
        "xi": schedule.xi,
        "final_estimate": final_estimate,
        "simulated_rounds": total_rounds,
        "paper_bit_rounds": sum(
            schedule.paper_bit_rounds_for_estimate(k)
            for k in schedule.estimates(final_estimate)
        ),
    }
    return election_result_from_simulation(
        ALGORITHM_NAME,
        simulation,
        seed=seed,
        parameters=parameters,
        agreement_key="leader_certificate",
    )
