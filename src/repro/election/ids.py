"""Random identifier and candidate selection (Section 4 of the paper).

In an anonymous network nodes cannot be told apart, so the paper's known-``n``
protocol has every node draw an identifier uniformly from ``{1..n^4}`` and
become a *candidate* independently with probability ``c·log n / n``.  The
ID range is wide enough that the ``Θ(log n)`` candidates have distinct IDs
with high probability; the candidate probability is large enough that at
least one candidate exists w.h.p. and small enough that only ``O(log n)``
parallel broadcast executions are ever in flight.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigurationError

__all__ = [
    "ID_SPACE_EXPONENT",
    "id_space_size",
    "draw_node_id",
    "candidate_probability",
    "draw_candidate",
    "expected_candidates",
    "candidate_count_upper_bound",
    "id_collision_probability_bound",
    "IdentityDraw",
    "draw_identity",
]

#: IDs are drawn from ``{1 .. n**ID_SPACE_EXPONENT}`` (paper, Section 4).
ID_SPACE_EXPONENT = 4


def id_space_size(n: int) -> int:
    """Size of the ID sample space, ``n^4``."""
    if n < 1:
        raise ConfigurationError(f"network size must be positive, got {n}")
    return max(2, n) ** ID_SPACE_EXPONENT


def draw_node_id(rng: random.Random, n: int) -> int:
    """Draw an ID uniformly from ``{1..n^4}``."""
    return rng.randint(1, id_space_size(n))


def candidate_probability(n: int, c: float) -> float:
    """Candidate probability ``min(1, c·log n / n)``.

    The paper uses the natural logarithm throughout its analysis; for
    ``n = 1`` the probability is forced to 1 so a single-node network still
    elects itself.
    """
    if n < 1:
        raise ConfigurationError(f"network size must be positive, got {n}")
    if c <= 0:
        raise ConfigurationError(f"candidate constant c must be positive, got {c}")
    if n == 1:
        return 1.0
    return min(1.0, c * math.log(n) / n)


def draw_candidate(rng: random.Random, n: int, c: float) -> bool:
    """Decide candidacy independently with probability ``c·log n / n``."""
    return rng.random() < candidate_probability(n, c)


def expected_candidates(n: int, c: float) -> float:
    """Expected number of candidates, ``n · min(1, c·log n / n)``."""
    return n * candidate_probability(n, c)


def candidate_count_upper_bound(n: int, c: float) -> int:
    """The ``4·c·log n`` bound the paper uses for the number of candidates.

    Holds with high probability (Section 4); the cautious-broadcast
    multiplexer sizes its super-round to this many slots.
    """
    if n <= 1:
        return 1
    return max(1, math.ceil(4.0 * c * math.log(n)))


def id_collision_probability_bound(n: int, c: float) -> float:
    """Union bound on the probability that two candidates share an ID.

    With at most ``4c·log n`` candidates (w.h.p.) drawing from ``n^4``
    values, the collision probability is at most ``(4c log n)² / n^4``.
    Used by tests to justify treating candidate IDs as unique.
    """
    k = candidate_count_upper_bound(n, c)
    return min(1.0, (k * k) / id_space_size(n))


@dataclass(frozen=True)
class IdentityDraw:
    """The outcome of a node's local random choices at startup."""

    node_id: int
    candidate: bool


def draw_identity(rng: random.Random, n: int, c: float) -> IdentityDraw:
    """Draw the (ID, candidate flag) pair a node computes at startup."""
    return IdentityDraw(node_id=draw_node_id(rng, n), candidate=draw_candidate(rng, n, c))
