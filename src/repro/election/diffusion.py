"""Potential diffusion (the ``Avg`` building block, Section 5.2, Algorithm 7).

Black nodes start with potential 1, white nodes with 0.  In every round
each *probing* node ships a ``1/(2k^{1+ε})`` fraction of its potential to
every neighbour and keeps the rest.  Because the induced Markov chain is
doubly stochastic, the potentials converge to their average
``(n - ℓ)/n`` (Lemma 3), and when the estimate ``k`` is large enough
(``k^{1+ε} ≥ 2n+1``) the converged value sits below the threshold ``τ(k)``
whenever at least one white node exists (Lemma 5).

The full election drives this process from inside its generator
(:mod:`repro.election.revocable`); this module provides the message types
and a standalone :class:`DiffusionAveragingNode` used by unit and property
tests to verify conservation and convergence of the averaging process in
isolation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import ConfigurationError
from ..core.generator_node import GeneratorNode
from ..core.messages import Message

__all__ = [
    "DiffusionMessage",
    "DisseminationMessage",
    "diffusion_share",
    "DiffusionAveragingNode",
    "expected_average",
    "convergence_rounds_estimate",
]


@dataclass(frozen=True)
class DiffusionMessage(Message):
    """Per-round broadcast during the diffusion phase (Algorithm 7, line 6)."""

    potential: float
    status_low: bool
    white_seen: bool
    leader_id: Optional[int] = None
    leader_estimate: Optional[int] = None


@dataclass(frozen=True)
class DisseminationMessage(Message):
    """Per-round broadcast during the dissemination phase (line 15)."""

    status_low: bool
    white_seen: bool
    leader_id: Optional[int] = None
    leader_estimate: Optional[int] = None


def diffusion_share(k: int, epsilon: float) -> float:
    """The per-neighbour potential fraction ``1/(2·k^{1+ε})``."""
    if k < 1:
        raise ConfigurationError(f"estimate k must be positive, got {k}")
    if not (0.0 < epsilon <= 1.0):
        raise ConfigurationError(f"epsilon must be in (0, 1], got {epsilon}")
    return 1.0 / (2.0 * float(k) ** (1.0 + epsilon))


class DiffusionAveragingNode(GeneratorNode):
    """Standalone potential-averaging node (no election logic).

    Runs ``rounds`` rounds of the diffusion update with share
    ``1/(2k^{1+ε})`` and then halts; :meth:`result` exposes the final
    potential so tests can check conservation and convergence to the
    network-wide average.
    """

    def __init__(
        self,
        num_ports: int,
        rng: random.Random,
        *,
        initial_potential: float,
        k: int,
        epsilon: float = 1.0,
        rounds: int = 10,
    ) -> None:
        super().__init__(num_ports, rng)
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        if initial_potential < 0:
            raise ConfigurationError(
                f"initial_potential must be non-negative, got {initial_potential}"
            )
        self.potential = float(initial_potential)
        self.k = k
        self.epsilon = epsilon
        self.rounds = rounds
        self.share = diffusion_share(k, epsilon)
        if self.num_ports * self.share > 1.0:
            raise ConfigurationError(
                f"degree {num_ports} too large for estimate k={k}: the node "
                f"would ship more potential than it holds"
            )

    def run(self):
        for _ in range(self.rounds):
            outbox = {
                port: DiffusionMessage(
                    potential=self.potential, status_low=False, white_seen=False
                )
                for port in self.ports()
            }
            sent_potential = self.potential
            inbox = yield outbox
            incoming = sum(
                message.potential
                for message in inbox.values()
                if isinstance(message, DiffusionMessage)
            )
            self.potential = (
                sent_potential
                + self.share * incoming
                - self.share * self.num_ports * sent_potential
            )

    def result(self) -> Dict[str, object]:
        return {
            "potential": self.potential,
            "rounds": self.rounds,
            "share": self.share,
        }


def expected_average(total_potential: float, num_nodes: int) -> float:
    """The value every potential converges to: ``||Φ₁|| / n``."""
    if num_nodes < 1:
        raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
    return total_potential / num_nodes


def convergence_rounds_estimate(
    *, k: int, epsilon: float, isoperimetric_number: float, relative_error: float
) -> int:
    """Rounds needed for the diffusion to reach a relative error (Lemma 4).

    ``r >= (2/φ²)·log(n/γ)`` with the chain conductance
    ``φ = i(G)·share = i(G)/(2k^{1+ε})``; used by tests to size standalone
    diffusion runs consistently with the analysis.
    """
    if isoperimetric_number <= 0:
        raise ConfigurationError("isoperimetric_number must be positive")
    if not (0.0 < relative_error < 1.0):
        raise ConfigurationError("relative_error must be in (0, 1)")
    phi = isoperimetric_number * diffusion_share(k, epsilon)
    return max(1, math.ceil(2.0 / phi ** 2 * math.log(1.0 / relative_error)))
