"""Convergecast of the maximum walk ID (Section 4, Algorithm 5).

After the probing phase every tree node holds the largest walk ID it has
seen.  For ``c·t_mix·log n`` rounds each non-candidate node forwards its
current maximum to its parent(s) in the broadcast tree(s) it joined; a node
that belongs to several territories has one parent per territory, but since
the transmitted value is the same, at most one message per port per round
is needed (CONGEST is respected).  Candidates only listen: at the end, the
candidate that never heard a walk ID larger than its own becomes the
leader (Theorem 1).

As with the subtree-size reports of cautious broadcast, a node re-sends to
its parent only when its maximum *improves* (plus one initial report);
re-sending an unchanged value every round would add nothing to correctness
but would blow the message count past the Theorem 1 claim that the
convergecast costs no more than the cautious broadcast that built the tree
(deviation documented in DESIGN.md §3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Set

from ..core.errors import ConfigurationError
from ..core.messages import Message
from ..core.node import Inbox, Outbox, ProtocolNode

__all__ = [
    "ConvergecastMessage",
    "ConvergecastConfig",
    "ConvergecastState",
    "ConvergecastNode",
]


@dataclass(frozen=True)
class ConvergecastMessage(Message):
    """The largest walk ID known to the sender."""

    walk_id: int


@dataclass(frozen=True)
class ConvergecastConfig:
    """Parameters of the convergecast phase."""

    convergecast_rounds: int

    def __post_init__(self) -> None:
        if self.convergecast_rounds < 1:
            raise ConfigurationError(
                f"convergecast_rounds must be >= 1, got {self.convergecast_rounds}"
            )


class ConvergecastState:
    """Per-node state of the convergecast phase."""

    def __init__(
        self,
        *,
        config: ConvergecastConfig,
        candidate: bool,
        max_walk_id: int,
        parent_ports: Iterable[int],
    ) -> None:
        self.config = config
        self.candidate = candidate
        self.max_walk_id = max_walk_id
        self.parent_ports: Set[int] = set(parent_ports)
        self.rounds_executed = 0
        self._last_reported = 0

    def absorb(self, inbox: Inbox) -> None:
        """Update the local maximum from received convergecast messages."""
        for message in inbox.values():
            if isinstance(message, ConvergecastMessage):
                if message.walk_id > self.max_walk_id:
                    self.max_walk_id = message.walk_id

    def step(self, inbox: Inbox) -> Outbox:
        """One convergecast round: absorb, then report improvements upward."""
        self.absorb(inbox)
        self.rounds_executed += 1
        if self.candidate or not self.parent_ports or self.max_walk_id <= 0:
            return {}
        if self.max_walk_id <= self._last_reported:
            return {}
        self._last_reported = self.max_walk_id
        return {
            port: ConvergecastMessage(walk_id=self.max_walk_id)
            for port in self.parent_ports
        }

    def quiescent(self) -> bool:
        """Whether :meth:`step` with an empty inbox is a guaranteed no-op.

        A node goes quiet once it has nothing (new) to report: candidates
        and orphans never send, and everyone else re-sends only when the
        maximum improves — which requires a reception, which wakes the
        node.  Only ``rounds_executed`` would advance, which feeds no
        decision.
        """
        return (
            self.candidate
            or not self.parent_ports
            or self.max_walk_id <= 0
            or self.max_walk_id <= self._last_reported
        )

    def summary(self) -> Dict[str, object]:
        return {
            "candidate": self.candidate,
            "max_walk_id": self.max_walk_id,
            "parent_ports": sorted(self.parent_ports),
            "rounds_executed": self.rounds_executed,
        }


class ConvergecastNode(ProtocolNode):
    """Standalone protocol node running only the convergecast phase.

    Used by unit tests: given a precomputed tree (parent ports) and initial
    walk IDs, it checks that the maximum reaches the candidates.
    """

    def __init__(
        self,
        num_ports: int,
        rng: random.Random,
        *,
        config: ConvergecastConfig,
        candidate: bool,
        max_walk_id: int,
        parent_ports: Iterable[int] = (),
    ) -> None:
        super().__init__(num_ports, rng)
        self.config = config
        self.state = ConvergecastState(
            config=config,
            candidate=candidate,
            max_walk_id=max_walk_id,
            parent_ports=parent_ports,
        )
        self._halted = False

    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, round_index: int, inbox: Inbox) -> Outbox:
        if round_index >= self.config.convergecast_rounds:
            self.state.absorb(inbox)
            self._halted = True
            return {}
        return self.state.step(inbox)

    def result(self) -> Dict[str, object]:
        summary = self.state.summary()
        summary["halted"] = self._halted
        return summary
