"""Leadership certificates (Section 5.2).

In the blind protocol a node's claim to leadership is the pair
``(K, id)``: the network-size estimate ``K`` in force when the node chose
its identifier, and the identifier itself.  A larger estimate is a stronger
certificate (the node chose its ID from a larger sample space, hence with a
better uniqueness guarantee); among equal estimates the *smaller* ID wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

__all__ = ["Certificate", "best_certificate"]


@dataclass(frozen=True)
class Certificate:
    """A ``(estimate, node_id)`` leadership certificate."""

    estimate: int
    node_id: int

    def __post_init__(self) -> None:
        if self.estimate < 1:
            raise ValueError(f"estimate must be positive, got {self.estimate}")
        if self.node_id < 1:
            raise ValueError(f"node_id must be positive, got {self.node_id}")

    def sort_key(self) -> Tuple[int, int]:
        """Key under which the best certificate is the maximum.

        Larger estimate first; ties broken towards the smaller ID (hence
        the negation).
        """
        return (self.estimate, -self.node_id)

    def beats(self, other: Optional["Certificate"]) -> bool:
        """Whether this certificate strictly beats ``other``.

        ``None`` (no certificate known) is beaten by everything.
        """
        if other is None:
            return True
        return self.sort_key() > other.sort_key()

    def as_tuple(self) -> Tuple[int, int]:
        return (self.estimate, self.node_id)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Certificate(K={self.estimate}, id={self.node_id})"


def best_certificate(certificates: Iterable[Optional[Certificate]]) -> Optional[Certificate]:
    """The strongest certificate among ``certificates`` (``None`` entries ignored)."""
    best: Optional[Certificate] = None
    for certificate in certificates:
        if certificate is not None and certificate.beats(best):
            best = certificate
    return best
