"""Irrevocable Leader Election for known network size (Section 4, Theorem 1).

The composite protocol of Algorithm 1:

1. every node draws a random ID from ``{1..n^4}`` and becomes a candidate
   with probability ``c·log n / n``;
2. candidates grow bounded territories with *cautious broadcast*
   (Algorithms 2–4), multiplexed over super-rounds so that a node serves at
   most one broadcast per round;
3. candidates issue ``x`` lazy random walks carrying their IDs
   (Algorithm 5); every node remembers the largest walk ID seen;
4. the maxima are convergecast up every broadcast tree; the candidate that
   never hears an ID larger than its own raises its flag.

The protocol needs (linear upper bounds on) ``n``, the mixing time
``t_mix`` and the conductance ``Φ``; :class:`IrrevocableConfig` either
takes them explicitly or measures them from the topology
(:meth:`IrrevocableConfig.from_topology`), mirroring how the paper assumes
they are known.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.errors import ConfigurationError
from ..core.metrics import MetricsCollector
from ..core.node import Inbox, Outbox, ProtocolNode
from ..core.simulator import SynchronousSimulator, build_nodes
from ..graphs.properties import conductance as measure_conductance
from ..graphs.spectral import mixing_time as measure_mixing_time
from ..graphs.topology import Topology
from .base import LeaderElectionResult, election_result_from_simulation
from .cautious_broadcast import CautiousBroadcastConfig, CautiousBroadcastManager
from .convergecast import ConvergecastConfig, ConvergecastState
from .ids import candidate_count_upper_bound, draw_identity
from .random_walk_probe import RandomWalkProbeConfig, RandomWalkProbeState

__all__ = [
    "IrrevocableConfig",
    "IrrevocableLeaderElectionNode",
    "run_irrevocable_election",
    "ALGORITHM_NAME",
]

ALGORITHM_NAME = "kowalski-mosteiro-irrevocable"


@dataclass(frozen=True)
class IrrevocableConfig:
    """All parameters of the known-``n`` election.

    ``x`` (the number of walks per candidate) defaults to the paper's
    choice ``Θ̃(sqrt(n·log n / (Φ·t_mix)))`` scaled by ``x_multiplier``,
    which controls how much slack the high-probability arguments get in a
    finite simulation.
    """

    n: int
    t_mix: int
    conductance: float
    c: float = 2.0
    x_multiplier: float = 2.0
    x: Optional[int] = None
    super_round_slots: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.t_mix < 1:
            raise ConfigurationError(f"t_mix must be positive, got {self.t_mix}")
        if not (0.0 < self.conductance <= 1.0):
            raise ConfigurationError(
                f"conductance must be in (0, 1], got {self.conductance}"
            )
        if self.c <= 0:
            raise ConfigurationError(f"c must be positive, got {self.c}")
        if self.x_multiplier <= 0:
            raise ConfigurationError(
                f"x_multiplier must be positive, got {self.x_multiplier}"
            )
        if self.x is not None and self.x < 1:
            raise ConfigurationError(f"x must be >= 1, got {self.x}")
        if self.super_round_slots is not None and self.super_round_slots < 1:
            raise ConfigurationError(
                f"super_round_slots must be >= 1, got {self.super_round_slots}"
            )

    # ------------------------------------------------------------------ #
    # derived parameters (all deterministic functions of the inputs, so
    # every node computes identical phase boundaries)
    # ------------------------------------------------------------------ #
    @property
    def log_n(self) -> float:
        return max(1.0, math.log(self.n))

    @property
    def walks_per_candidate(self) -> int:
        """The paper's ``x = Θ̃(sqrt(n·log n / (Φ·t_mix)))``."""
        if self.x is not None:
            return self.x
        raw = math.sqrt(self.n * self.log_n / (self.conductance * self.t_mix))
        return max(1, math.ceil(self.x_multiplier * raw))

    @property
    def phase_rounds(self) -> int:
        """Per-phase protocol round budget ``c·t_mix·log n``."""
        return max(1, math.ceil(self.c * self.t_mix * self.log_n))

    @property
    def num_slots(self) -> int:
        """Super-round length: one slot per possible parallel broadcast."""
        if self.super_round_slots is not None:
            return self.super_round_slots
        return candidate_count_upper_bound(self.n, self.c)

    @property
    def territory_cap(self) -> float:
        """Territory growth cap ``x·t_mix·Φ``."""
        return max(2.0, self.walks_per_candidate * self.t_mix * self.conductance)

    @property
    def broadcast_phase_rounds(self) -> int:
        """Wall-clock rounds of the multiplexed cautious-broadcast phase."""
        return self.num_slots * self.phase_rounds

    @property
    def walk_phase_rounds(self) -> int:
        return self.phase_rounds

    @property
    def convergecast_phase_rounds(self) -> int:
        return self.phase_rounds

    def total_rounds(self) -> int:
        """Rounds from start to the decision round (inclusive)."""
        return (
            self.broadcast_phase_rounds
            + self.walk_phase_rounds
            + self.convergecast_phase_rounds
            + 1
        )

    # ------------------------------------------------------------------ #
    def broadcast_config(self) -> CautiousBroadcastConfig:
        return CautiousBroadcastConfig(
            protocol_rounds=self.phase_rounds,
            territory_cap=self.territory_cap,
        )

    def walk_config(self) -> RandomWalkProbeConfig:
        return RandomWalkProbeConfig(
            walk_rounds=self.walk_phase_rounds,
            walks_per_candidate=self.walks_per_candidate,
        )

    def convergecast_config(self) -> ConvergecastConfig:
        return ConvergecastConfig(convergecast_rounds=self.convergecast_phase_rounds)

    def as_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "t_mix": self.t_mix,
            "conductance": self.conductance,
            "c": self.c,
            "x": self.walks_per_candidate,
            "x_multiplier": self.x_multiplier,
            "territory_cap": self.territory_cap,
            "phase_rounds": self.phase_rounds,
            "num_slots": self.num_slots,
            "total_rounds": self.total_rounds(),
        }

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        *,
        c: float = 2.0,
        x_multiplier: float = 2.0,
        x: Optional[int] = None,
        t_mix: Optional[int] = None,
        conductance: Optional[float] = None,
        super_round_slots: Optional[int] = None,
    ) -> "IrrevocableConfig":
        """Measure ``t_mix`` and ``Φ`` from the topology unless provided."""
        measured_t_mix = t_mix if t_mix is not None else measure_mixing_time(topology)
        measured_phi = (
            conductance if conductance is not None else measure_conductance(topology)
        )
        return cls(
            n=topology.num_nodes,
            t_mix=max(1, int(measured_t_mix)),
            conductance=float(measured_phi),
            c=c,
            x_multiplier=x_multiplier,
            x=x,
            super_round_slots=super_round_slots,
        )


class IrrevocableLeaderElectionNode(ProtocolNode):
    """One anonymous node running Algorithm 1."""

    def __init__(
        self,
        num_ports: int,
        rng: random.Random,
        *,
        config: IrrevocableConfig,
    ) -> None:
        super().__init__(num_ports, rng)
        self.config = config
        identity = draw_identity(rng, config.n, config.c)
        self.node_id = identity.node_id
        self.candidate = identity.candidate

        self._broadcast = CautiousBroadcastManager(
            num_ports=num_ports,
            config=config.broadcast_config(),
            num_slots=config.num_slots,
        )
        if self.candidate:
            self._broadcast.add_source_instance(self.node_id)
        self._walk: Optional[RandomWalkProbeState] = None
        self._convergecast: Optional[ConvergecastState] = None
        self.leader = False
        self._halted = False

        # Phase boundaries (identical at every node).
        self._broadcast_end = config.broadcast_phase_rounds
        self._walk_end = self._broadcast_end + config.walk_phase_rounds
        self._convergecast_end = self._walk_end + config.convergecast_phase_rounds

    # ------------------------------------------------------------------ #
    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, round_index: int, inbox: Inbox) -> Outbox:
        if round_index < self._broadcast_end:
            return self._broadcast_step(round_index, inbox)
        if round_index < self._walk_end:
            return self._walk_step(round_index, inbox)
        if round_index < self._convergecast_end:
            return self._convergecast_step(round_index, inbox)
        return self._decision_step(inbox)

    # ------------------------------------------------------------------ #
    def _broadcast_step(self, round_index: int, inbox: Inbox) -> Outbox:
        self._broadcast.handle_inbox(inbox)
        slot = round_index % self.config.num_slots
        return self._broadcast.transmissions_for_slot(slot, self.rng)

    def _walk_step(self, round_index: int, inbox: Inbox) -> Outbox:
        if self._walk is None:
            # First walk round: leftover broadcast messages in the inbox are
            # still routed to the broadcast manager before walking begins.
            self._broadcast.handle_inbox(inbox)
            inbox = {}
            self._walk = RandomWalkProbeState(
                num_ports=self.num_ports,
                config=self.config.walk_config(),
                candidate=self.candidate,
                node_id=self.node_id,
            )
        return self._walk.step(self.rng, inbox)

    def _convergecast_step(self, round_index: int, inbox: Inbox) -> Outbox:
        if self._convergecast is None:
            if self._walk is not None:
                self._walk.absorb(inbox)
                inbox = {}
                max_walk_id = self._walk.max_walk_id
            else:  # pragma: no cover - the walk phase always runs first
                max_walk_id = self.node_id if self.candidate else 0
            self._convergecast = ConvergecastState(
                config=self.config.convergecast_config(),
                candidate=self.candidate,
                max_walk_id=max_walk_id,
                parent_ports=self._broadcast.parent_ports(),
            )
        return self._convergecast.step(inbox)

    def _decision_step(self, inbox: Inbox) -> Outbox:
        if self._convergecast is not None:
            self._convergecast.absorb(inbox)
            id_max = self._convergecast.max_walk_id
        else:  # pragma: no cover - defensive
            id_max = self.node_id if self.candidate else 0
        # Deviation 2 (DESIGN.md): only candidates may raise the flag.
        self.leader = self.candidate and id_max == self.node_id
        self._halted = True
        return {}

    # ------------------------------------------------------------------ #
    def quiescent_until(self, round_index: int) -> int:
        """Declare quiescence to the event-driven simulator backend.

        Each phase's state machine knows when stepping it with an empty
        inbox is a no-op (see the ``quiescent`` methods of the broadcast,
        walk and convergecast states); while that holds, the node may
        sleep until the next phase boundary — any reception wakes it, and
        the first round of a phase always wakes it to build that phase's
        state.  The declaration makes the event backend bit-identical to
        the round backend on this protocol: skipped steps would have sent
        nothing, drawn nothing and decided nothing.
        """
        if round_index < self._broadcast_end:
            if self._broadcast.quiescent():
                return self._broadcast_end
            return round_index
        if round_index < self._walk_end:
            if self._walk is not None and self._walk.quiescent():
                return self._walk_end
            return round_index
        if round_index < self._convergecast_end:
            if self._convergecast is not None and self._convergecast.quiescent():
                return self._convergecast_end
            return round_index
        return round_index

    # ------------------------------------------------------------------ #
    def result(self) -> Dict[str, object]:
        return {
            "leader": self.leader,
            "candidate": self.candidate,
            "node_id": self.node_id,
            "max_walk_id": (
                self._convergecast.max_walk_id
                if self._convergecast is not None
                else (self._walk.max_walk_id if self._walk is not None else None)
            ),
            "joined_territories": sorted(self._broadcast.joined_instances()),
            "parallel_broadcasts": self._broadcast.instance_count(),
            "broadcast_overflow": self._broadcast.overflow_instances,
            "halted": self._halted,
        }


def run_irrevocable_election(
    topology: Topology,
    *,
    seed: Optional[int] = None,
    config: Optional[IrrevocableConfig] = None,
    c: float = 2.0,
    x_multiplier: float = 2.0,
    metrics: Optional[MetricsCollector] = None,
    enforce_congest: bool = False,
) -> LeaderElectionResult:
    """Run the known-``n`` election once and return outcome + cost.

    Phases are attributed separately in the returned metrics, so the
    benchmark harness can report the cost of cautious broadcast, probing
    and convergecast individually (matching Lemma 1 / Lemma 2 / Theorem 1).

    Registered in the protocol registry as ``irrevocable`` with ``c`` and
    ``x_multiplier`` as its schema (see :mod:`repro.protocols`): the CLI
    and experiment grids reach this entry point through
    ``ProtocolSpec.parse("irrevocable:c=3,x_multiplier=1.5")``.
    """
    if config is None:
        config = IrrevocableConfig.from_topology(
            topology, c=c, x_multiplier=x_multiplier
        )
    collector = metrics if metrics is not None else MetricsCollector()

    def factory(index: int, num_ports: int, rng: random.Random) -> ProtocolNode:
        return IrrevocableLeaderElectionNode(num_ports, rng, config=config)

    nodes = build_nodes(topology, factory, seed=seed)
    simulator = SynchronousSimulator(
        topology,
        nodes,
        metrics=collector,
        enforce_congest=enforce_congest,
    )
    with collector.phase("cautious-broadcast"):
        simulator.run(config.broadcast_phase_rounds)
    with collector.phase("random-walk"):
        simulator.run(config.walk_phase_rounds)
    with collector.phase("convergecast"):
        simulator.run(config.convergecast_phase_rounds + 1)
    simulation = simulator.run(0)  # package the final state
    return election_result_from_simulation(
        ALGORITHM_NAME,
        simulation,
        seed=seed,
        parameters=config.as_dict(),
    )
