"""Observability for the sweep machinery itself: spans, telemetry, profiling.

The rest of the package measures leader-election protocols; this
subpackage measures the machine that runs them.  Three layers, each
stdlib-only so ``repro.obs`` sits *below* everything it instruments:

* :mod:`repro.obs.spans` — ambient named timers (``span("simulate")``)
  with a shared no-op fast path when telemetry is off;
* :mod:`repro.obs.telemetry` — per-task records, JSONL export
  (``repro-le sweep --telemetry``), and the utilization / percentile /
  straggler summary (``repro-le stats``);
* :mod:`repro.obs.profiling` — opt-in in-worker cProfile with pool-wide
  hotspot aggregation (``--profile cprofile``).

The whole layer is gated on the guarantee that it observes without
perturbing: results are bit-identical with telemetry on or off, and the
parallel-sweep benchmark enforces the overhead budget.
"""

from .profiling import PROFILERS, ProfileAggregate, TaskProfiler, validate_profiler
from .spans import (
    SpanCollector,
    SpanStats,
    Stopwatch,
    active_collector,
    collect_spans,
    span,
)
from .telemetry import (
    TASK_RECORD_FIELDS,
    TELEMETRY_VERSION,
    TaskTelemetry,
    TelemetryAggregator,
    TelemetrySink,
    read_telemetry,
    summarize_telemetry,
)

__all__ = [
    "PROFILERS",
    "ProfileAggregate",
    "SpanCollector",
    "SpanStats",
    "Stopwatch",
    "TASK_RECORD_FIELDS",
    "TaskProfiler",
    "TaskTelemetry",
    "TELEMETRY_VERSION",
    "TelemetryAggregator",
    "TelemetrySink",
    "active_collector",
    "collect_spans",
    "read_telemetry",
    "span",
    "summarize_telemetry",
    "validate_profiler",
]
