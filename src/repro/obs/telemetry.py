"""Per-task telemetry: JSONL export and end-of-sweep summaries.

The sweep engine measures the protocols exactly; this module measures the
*sweep*.  Each completed task carries a :class:`TaskTelemetry` record back
from its worker — queue wait, simulate time, span totals, worker id — the
parent adds its own fold/checkpoint timings, and a :class:`TelemetrySink`
streams one JSON line per task to disk while folding the same records
into a :class:`TelemetryAggregator`.  The aggregator answers the
operational questions a million-run sharded sweep raises: which workers
idled (utilization), which (experiment, topology) cells dominate
(latency percentiles), which individual tasks straggled, and how much of
the wall-clock went to checkpoint I/O.

Two consumers, one codepath
---------------------------

The CLI prints the summary live (``repro-le sweep --telemetry out.jsonl``)
and recomputes it post-hoc (``repro-le stats out.jsonl``).  Both paths
feed the *same* record dictionaries through the *same* aggregator —
the sink aggregates exactly what it serializes, and Python's JSON floats
round-trip exactly — so the post-hoc summary reproduces the live one bit
for bit.  That equality is a test, not an aspiration.

Layering: this package is deliberately stdlib-only.  ``TelemetrySink``
satisfies the :class:`repro.analysis.streaming.ResultSink` protocol
structurally (``emit``/``close``/``abort``) without importing it, so
``repro.obs`` sits below every execution layer it instruments.

Telemetry never feeds back into execution: records carry task keys but
task keys never carry telemetry, and nothing here touches seeds, RNG, or
aggregation — the bit-identical-with-telemetry-on equivalence tests pin
that down.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.errors import ConfigurationError

__all__ = [
    "TASK_RECORD_FIELDS",
    "TELEMETRY_VERSION",
    "TaskTelemetry",
    "TelemetryAggregator",
    "TelemetrySink",
    "read_telemetry",
    "summarize_telemetry",
]

#: Version stamp written in every sweep header record so offline readers
#: can detect schema drift.  Version 2 added the dispatch fields
#: (``batch_size``, ``attempt``) when the adaptive scheduler landed;
#: version-1 files still summarize (the new fields default to 1).
TELEMETRY_VERSION = 2

#: Fields every ``kind="task"`` record carries (the JSONL schema; CI
#: validates exported files against it).
TASK_RECORD_FIELDS = (
    "kind",
    "task_key",
    "experiment",
    "topology",
    "topology_index",
    "seed",
    "seed_index",
    "worker",
    "backend",
    "queue_wait_seconds",
    "simulate_seconds",
    "task_seconds",
    "fold_seconds",
    "checkpoint_seconds",
    "spans",
    "batch_size",
    "attempt",
)


@dataclass
class TaskTelemetry:
    """Timing facts of one completed run, assembled across two processes.

    The worker fills the execution-side fields (everything through
    ``spans``); the parent then stamps ``fold_seconds`` (sink fan-out) and
    ``checkpoint_seconds`` (checkpoint append) before the record is
    emitted — those two phases happen in the parent by design.

    ``queue_wait_seconds`` is worker-start minus parent-submit on the
    shared monotonic clock: meaningful on one machine (where the pool
    lives), and the direct measure of dispatch backlog the ROADMAP's
    work-stealing scheduler needs.
    """

    task_key: str
    experiment: str
    topology: str
    topology_index: int
    seed: int
    seed_index: int
    worker: str
    backend: str
    queue_wait_seconds: float
    simulate_seconds: float
    task_seconds: float
    spans: Dict[str, Dict[str, object]] = field(default_factory=dict)
    fold_seconds: float = 0.0
    checkpoint_seconds: float = 0.0
    #: how many tasks shared this task's dispatch batch (1 = singleton;
    #: the static engine always dispatches singletons)
    batch_size: int = 1
    #: which dispatch attempt produced this record (>1 means the task was
    #: re-dispatched after a worker death or lease timeout)
    attempt: int = 1

    def as_record(self) -> Dict[str, object]:
        """The JSONL ``kind="task"`` record (see ``TASK_RECORD_FIELDS``)."""
        return {
            "kind": "task",
            "task_key": self.task_key,
            "experiment": self.experiment,
            "topology": self.topology,
            "topology_index": self.topology_index,
            "seed": self.seed,
            "seed_index": self.seed_index,
            "worker": self.worker,
            "backend": self.backend,
            "queue_wait_seconds": self.queue_wait_seconds,
            "simulate_seconds": self.simulate_seconds,
            "task_seconds": self.task_seconds,
            "fold_seconds": self.fold_seconds,
            "checkpoint_seconds": self.checkpoint_seconds,
            "spans": self.spans,
            "batch_size": self.batch_size,
            "attempt": self.attempt,
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    rank = max(1, -(-int(q * len(sorted_values) * 100) // 100))  # ceil(q*n)
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _validate_top(top) -> int:
    """``top`` (straggler list length) must be a positive integer.

    A negative ``[:top]`` slice would silently drop the *slowest* tasks —
    the exact ones the straggler table exists to show — so reject early,
    in the same style as the scheduler's timeout validation.
    """
    if isinstance(top, float) and (math.isnan(top) or not top.is_integer()):
        raise ConfigurationError(f"top must be a positive integer, got {top}")
    try:
        value = int(top)
    except (TypeError, ValueError):
        raise ConfigurationError(f"top must be a positive integer, got {top!r}")
    if value < 1:
        raise ConfigurationError(f"top must be a positive integer, got {top}")
    return value


class TelemetryAggregator:
    """Streaming fold of telemetry records into an end-of-sweep summary.

    Memory is O(runs) floats (per-cell duration lists and the straggler
    index need every task's simulate time) — a few MB even for
    million-run sweeps, and nothing here retains results or payloads.
    """

    def __init__(self) -> None:
        self.version: Optional[int] = None
        self.workers: Optional[int] = None
        self.backend: Optional[str] = None
        self.profile: Optional[str] = None
        self.shard: Optional[str] = None
        self.runs = 0
        self.restored = 0
        self.elapsed_seconds: Optional[float] = None
        self.driver_spans: Dict[str, Dict[str, object]] = {}
        self.profile_hotspots: Optional[List[Dict[str, object]]] = None
        self._totals = {
            "queue_wait_seconds": 0.0,
            "simulate_seconds": 0.0,
            "task_seconds": 0.0,
            "fold_seconds": 0.0,
            "checkpoint_seconds": 0.0,
        }
        #: worker label -> [task count, busy (in-worker) seconds]
        self._workers: Dict[str, List[float]] = {}
        #: worker label -> queue waits, in emit order (for the per-worker
        #: wait percentiles that diagnose dispatch backlog)
        self._worker_waits: Dict[str, List[float]] = {}
        #: (experiment, topology) -> simulate durations, in emit order
        self._cells: Dict[Tuple[str, str], List[float]] = {}
        #: (simulate seconds, task key, worker) for the straggler ranking
        self._tasks: List[Tuple[float, str, str]] = []
        #: dispatch facts folded from the task records' batch/attempt
        #: fields (records from v1 files default to singletons)
        self._batched_tasks = 0
        self._max_batch_size = 0
        self._redispatched_tasks = 0
        #: the driver's scheduler counters (batches, re-dispatches, lease
        #: steals), verbatim when present
        self.scheduler: Optional[Dict[str, object]] = None

    def add(self, record: Dict[str, object]) -> None:
        """Fold one JSONL record (any ``kind``) into the aggregate."""
        kind = record.get("kind")
        if kind == "sweep":
            self.version = record.get("version")
            self.workers = record.get("workers")
            self.backend = record.get("backend")
            self.profile = record.get("profile")
            self.shard = record.get("shard")
        elif kind == "task":
            self.runs += 1
            for name in self._totals:
                self._totals[name] += float(record.get(name, 0.0))
            worker = str(record.get("worker", "?"))
            stats = self._workers.setdefault(worker, [0, 0.0])
            stats[0] += 1
            stats[1] += float(record.get("task_seconds", 0.0))
            self._worker_waits.setdefault(worker, []).append(
                float(record.get("queue_wait_seconds", 0.0))
            )
            cell = (str(record.get("experiment", "")), str(record.get("topology", "")))
            simulate = float(record.get("simulate_seconds", 0.0))
            self._cells.setdefault(cell, []).append(simulate)
            self._tasks.append((simulate, str(record.get("task_key", "")), worker))
            batch_size = int(record.get("batch_size", 1))
            if batch_size > 1:
                self._batched_tasks += 1
            self._max_batch_size = max(self._max_batch_size, batch_size)
            if int(record.get("attempt", 1)) > 1:
                self._redispatched_tasks += 1
        elif kind == "driver":
            self.elapsed_seconds = float(record.get("elapsed_seconds", 0.0))
            self.restored = int(record.get("restored", 0))
            self.driver_spans = dict(record.get("spans") or {})
            hotspots = record.get("profile_hotspots")
            if hotspots is not None:
                self.profile_hotspots = list(hotspots)
            scheduler = record.get("scheduler")
            if scheduler is not None:
                self.scheduler = dict(scheduler)

    def summary(self, top: int = 10) -> Dict[str, object]:
        """The end-of-sweep report: utilization, percentiles, stragglers.

        Deterministic given the records: every ranking breaks ties on the
        task key / cell name, so two reads of one JSONL file (or the live
        sink and a post-hoc ``repro-le stats``) produce equal summaries.
        """
        top = _validate_top(top)
        elapsed = self.elapsed_seconds
        workers = [
            {
                "worker": worker,
                "tasks": int(count),
                "busy_seconds": busy,
                "utilization": (busy / elapsed) if elapsed else None,
            }
            for worker, (count, busy) in sorted(self._workers.items())
        ]
        cells = []
        for (experiment, topology), durations in sorted(self._cells.items()):
            ordered = sorted(durations)
            cells.append(
                {
                    "experiment": experiment,
                    "topology": topology,
                    "runs": len(ordered),
                    "total_simulate_seconds": sum(ordered),
                    "p50_simulate_seconds": _percentile(ordered, 0.50),
                    "p90_simulate_seconds": _percentile(ordered, 0.90),
                    "max_simulate_seconds": ordered[-1],
                }
            )
        stragglers = [
            {"task_key": key, "worker": worker, "simulate_seconds": seconds}
            for seconds, key, worker in sorted(
                self._tasks, key=lambda item: (-item[0], item[1])
            )[:top]
        ]
        queue_waits = []
        for worker, waits in sorted(self._worker_waits.items()):
            ordered = sorted(waits)
            queue_waits.append(
                {
                    "worker": worker,
                    "tasks": len(ordered),
                    "p50_queue_wait_seconds": _percentile(ordered, 0.50),
                    "p90_queue_wait_seconds": _percentile(ordered, 0.90),
                    "max_queue_wait_seconds": ordered[-1],
                }
            )
        busy_times = [busy for _, busy in self._workers.values()]
        if busy_times:
            mean_busy = sum(busy_times) / len(busy_times)
            load_imbalance = {
                "workers": len(busy_times),
                "max_busy_seconds": max(busy_times),
                "mean_busy_seconds": mean_busy,
                # max/mean busy: 1.0 is a perfectly balanced pool; the
                # ratio a straggling worker (or bad batching) inflates.
                "imbalance": (max(busy_times) / mean_busy) if mean_busy else None,
            }
        else:
            load_imbalance = None
        dispatch = {
            "batched_tasks": self._batched_tasks,
            "max_batch_size": self._max_batch_size,
            "redispatched_tasks": self._redispatched_tasks,
        }
        checkpoint_share = (
            self._totals["checkpoint_seconds"] / elapsed if elapsed else None
        )
        return {
            "version": self.version,
            "workers": self.workers,
            "backend": self.backend,
            "profile": self.profile,
            "shard": self.shard,
            "runs": self.runs,
            "restored": self.restored,
            "elapsed_seconds": elapsed,
            "totals": dict(self._totals),
            "checkpoint_io_share": checkpoint_share,
            "worker_utilization": workers,
            "queue_wait_by_worker": queue_waits,
            "load_imbalance": load_imbalance,
            "dispatch": dispatch,
            "scheduler": self.scheduler,
            "cells": cells,
            "stragglers": stragglers,
            "driver_spans": self.driver_spans,
            "profile_hotspots": self.profile_hotspots,
        }


class TelemetrySink:
    """Streams telemetry records to JSONL and keeps the live aggregate.

    Satisfies the ``ResultSink`` protocol so the experiment drivers manage
    its lifecycle (close on success, abort on failure) exactly like an
    export sink; the per-run ``emit`` itself is a no-op — telemetry
    arrives through :meth:`emit_telemetry`, which only the drivers call,
    so the summary stays derivable from the JSONL alone.

    File handling mirrors :class:`repro.analysis.streaming.JsonlSink`:
    records go to a ``<path>.partial`` staging file that atomically
    replaces ``<path>`` on a clean close, so a published telemetry file
    always describes a *complete* sweep and a crash leaves the previous
    export untouched (with the partial records on the side for debugging).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._staging = self._path.with_name(self._path.name + ".partial")
        self._handle = None
        self._closed = False
        self.aggregator = TelemetryAggregator()

    @property
    def path(self) -> Path:
        return self._path

    def _write(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self._staging.open("w", encoding="utf-8")
            self._closed = False
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.aggregator.add(record)

    def begin_sweep(
        self,
        *,
        workers: int,
        backend: str,
        profile: Optional[str] = None,
        shard: Optional[str] = None,
    ) -> None:
        """Write the sweep header record (version, pool shape, backend)."""
        self._write(
            {
                "kind": "sweep",
                "version": TELEMETRY_VERSION,
                "workers": workers,
                "backend": backend,
                "profile": profile,
                "shard": shard,
            }
        )

    def emit_telemetry(self, telemetry: TaskTelemetry) -> None:
        """Record one completed task (called by the drivers, parent-side)."""
        self._write(telemetry.as_record())

    def record_driver(
        self,
        *,
        elapsed_seconds: float,
        restored: int,
        spans: Dict[str, Dict[str, object]],
        profile_hotspots: Optional[List[Dict[str, object]]] = None,
        scheduler: Optional[Dict[str, object]] = None,
    ) -> None:
        """Write the closing driver record (sweep elapsed, parent spans,
        and — under the adaptive engine — the scheduler's dispatch/lease
        counters)."""
        record: Dict[str, object] = {
            "kind": "driver",
            "elapsed_seconds": elapsed_seconds,
            "restored": restored,
            "spans": spans,
        }
        if profile_hotspots is not None:
            record["profile_hotspots"] = profile_hotspots
        if scheduler is not None:
            record["scheduler"] = scheduler
        self._write(record)

    def summary(self, top: int = 10) -> Dict[str, object]:
        return self.aggregator.summary(top)

    # ------------------------------------------------------------------ #
    # ResultSink protocol
    # ------------------------------------------------------------------ #
    def emit(self, spec_name, topology_index, seed_index, result, wall_clock_seconds):
        """Per-run results are observed but not recorded (see class doc)."""

    def close(self) -> None:
        if self._closed:
            return
        if self._handle is None:
            # Telemetry on a sweep with zero records (nothing pending and
            # nothing restored) still publishes a file: "the sweep ran and
            # measured nothing" must be distinguishable from "no export".
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self._staging.open("w", encoding="utf-8")
        self._handle.close()
        self._handle = None
        self._closed = True
        os.replace(self._staging, self._path)

    def abort(self) -> None:
        if self._closed:
            return
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True


def read_telemetry(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a telemetry JSONL export back into record dictionaries."""
    records: List[Dict[str, object]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize_telemetry(
    records: Iterable[Dict[str, object]], top: int = 10
) -> Dict[str, object]:
    """Fold records (e.g. from :func:`read_telemetry`) into a summary.

    Feeding a file's records through this reproduces the summary the
    originating :class:`TelemetrySink` printed live — same aggregator,
    same fold order, exact JSON float round-trip.
    """
    top = _validate_top(top)  # fail before consuming the records iterable
    aggregator = TelemetryAggregator()
    for record in records:
        aggregator.add(record)
    return aggregator.summary(top)
