"""Lightweight span timers: where does a sweep's wall-clock time go?

Everything the repo *measures about protocols* — rounds, messages, bits —
is exact and deterministic.  Wall-clock time is the one axis the paper's
accounting says nothing about, and the one a million-run sweep lives or
dies by; the span API makes it observable without perturbing anything:

* :func:`span` opens a named timer region (monotonic wall-clock, nestable
  — a parent span's total includes its children's);
* spans record into the innermost active :class:`SpanCollector`
  (:func:`collect_spans`); with **no collector active, ``span`` returns a
  shared no-op and costs one list truthiness check** — the hot paths of
  the simulator and the drivers stay unperturbed when telemetry is off;
* :class:`SpanStats` aggregates per name (count/total/min/max seconds),
  not per event, so collectors stay O(distinct span names) no matter how
  long the sweep runs.

The experiment drivers open a collector when telemetry is enabled (see
:mod:`repro.obs.telemetry`), pool workers open one per task, and the
checkpoint store wraps its file I/O in ``span("checkpoint.flush")`` /
``span("checkpoint.load")`` — so a sweep can always answer "how much of
my time was simulation vs folding vs checkpoint I/O".

Collectors are intentionally process-local module state, mirroring
:func:`repro.core.simulator.backend_scope`: protocol entry points build
their own simulators, so instrumentation has to be ambient to reach them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "SpanCollector",
    "SpanStats",
    "Stopwatch",
    "active_collector",
    "collect_spans",
    "span",
]


class SpanStats:
    """Aggregate timings of one span name: count, total, min, max seconds."""

    __slots__ = ("count", "total_seconds", "min_seconds", "max_seconds")

    def __init__(self) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds: Optional[float] = None
        self.max_seconds: Optional[float] = None

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if self.min_seconds is None or seconds < self.min_seconds:
            self.min_seconds = seconds
        if self.max_seconds is None or seconds > self.max_seconds:
            self.max_seconds = seconds

    def merge_dict(self, other: Dict[str, object]) -> None:
        """Fold an :meth:`as_dict` payload (e.g. from a worker) into this."""
        self.count += int(other["count"])
        self.total_seconds += float(other["total_seconds"])
        for field, better in (("min_seconds", min), ("max_seconds", max)):
            theirs = other.get(field)
            if theirs is None:
                continue
            mine = getattr(self, field)
            setattr(
                self,
                field,
                float(theirs) if mine is None else better(mine, float(theirs)),
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
        }


class SpanCollector:
    """Receives closed spans; holds one :class:`SpanStats` per span name."""

    def __init__(self) -> None:
        self._stats: Dict[str, SpanStats] = {}

    def record(self, name: str, seconds: float) -> None:
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SpanStats()
        stats.add(seconds)

    def merge_totals(self, totals: Dict[str, Dict[str, object]]) -> None:
        """Fold another collector's :meth:`totals` payload into this one."""
        for name, payload in totals.items():
            self._stats.setdefault(name, SpanStats()).merge_dict(payload)

    def totals(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready ``{name: {count, total, min, max}}`` aggregates."""
        return {name: stats.as_dict() for name, stats in self._stats.items()}

    def total_seconds(self, name: str) -> float:
        stats = self._stats.get(name)
        return stats.total_seconds if stats is not None else 0.0

    def __len__(self) -> int:
        return len(self._stats)


#: Innermost-wins stack of active collectors (mirrors the backend/fault
#: scope idiom of :mod:`repro.core`).
_COLLECTORS: List[SpanCollector] = []


def active_collector() -> Optional[SpanCollector]:
    """The collector spans currently record into, or ``None``."""
    return _COLLECTORS[-1] if _COLLECTORS else None


@contextmanager
def collect_spans() -> Iterator[SpanCollector]:
    """Collect every span closed inside the scope into a fresh collector.

    Scopes nest and the innermost wins — a pool worker opening a per-task
    collector inside an instrumented sweep isolates its task's spans from
    the driver's, exactly like nested :func:`~repro.core.simulator.backend_scope`.
    """
    collector = SpanCollector()
    _COLLECTORS.append(collector)
    try:
        yield collector
    finally:
        _COLLECTORS.pop()


class _Span:
    """An open span; closing it (even via an exception) records the timing."""

    __slots__ = ("_name", "_collector", "_started")

    def __init__(self, name: str, collector: SpanCollector) -> None:
        self._name = name
        self._collector = collector
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Record on the exceptional path too: a run that dies mid-span
        # still tells the operator where its time went.
        self._collector.record(self._name, time.perf_counter() - self._started)


class _NullSpan:
    """Shared do-nothing span handed out when no collector is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str):
    """A context manager timing the ``name`` region into the active collector.

    With no collector active (telemetry off) this returns a shared no-op
    object without allocating — the instrumented call sites in the
    drivers, the checkpoint store and the workers cost one truthiness
    check per entry.
    """
    if not _COLLECTORS:
        return _NULL_SPAN
    return _Span(name, _COLLECTORS[-1])


class Stopwatch:
    """Elapsed monotonic seconds since construction (or the last restart).

    The tiny timer shared by the progress reporter and the telemetry
    layer; ``clock`` is injectable so tests can drive it deterministically.
    """

    __slots__ = ("_clock", "_started")

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self._started = self._clock()

    def elapsed(self) -> float:
        return self._clock() - self._started

    def restart(self) -> None:
        self._started = self._clock()
