"""Opt-in in-worker profiling: pool-wide cProfile hotspot aggregation.

``repro-le sweep --telemetry out.jsonl --profile cprofile`` runs every
task under :mod:`cProfile` *inside its worker* and ships the raw stats
back with the task's telemetry.  The parent folds them into one
:class:`ProfileAggregate`, so the sweep summary's hotspot table reflects
the whole pool — the only way to see where worker CPU actually goes,
since profiling the parent of a multiprocessing sweep shows nothing but
``imap_unordered`` waiting.

The wire format is deliberately primitive: ``cProfile.Profile.stats``
maps ``(file, line, function)`` to ``(cc, nc, tt, ct, callers)``; we
flatten the key to ``"file:line:function"`` and drop the callers graph,
leaving a plain picklable/JSON-able dict of 4-tuples.  Aggregation is a
per-function sum, which is exactly what "top hotspots across the pool"
needs; anyone needing call graphs can profile a serial run directly.

Profiling inflates per-task wall-clock (cProfile's tracing overhead), so
the <3% telemetry overhead budget explicitly excludes ``--profile`` runs
— hotspot hunting and timing measurement are different instruments.
"""

from __future__ import annotations

import cProfile
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PROFILERS",
    "ProfileAggregate",
    "TaskProfiler",
    "validate_profiler",
]

#: Supported ``--profile`` engines.  A tuple, not a set: error messages
#: and CLI choices list them in one stable order.
PROFILERS = ("cprofile",)

#: Flattened stats payload: ``"file:line:function" -> (cc, nc, tt, ct)``
#: (primitive calls, total calls, own time, cumulative time).
ProfilePayload = Dict[str, Tuple[int, int, float, float]]


def validate_profiler(name: str) -> str:
    if name not in PROFILERS:
        raise ValueError(
            f"unknown profiler {name!r}: expected one of {list(PROFILERS)}"
        )
    return name


class TaskProfiler:
    """Profiles one task inside a worker and yields the flat payload."""

    def __init__(self) -> None:
        self._profiler = cProfile.Profile()

    def __enter__(self) -> "TaskProfiler":
        self._profiler.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.disable()

    def payload(self) -> ProfilePayload:
        """The profiled stats, flattened for the worker→parent pickle hop."""
        self._profiler.create_stats()
        flat: ProfilePayload = {}
        for (filename, line, function), (cc, nc, tt, ct, _callers) in (
            self._profiler.stats.items()  # type: ignore[attr-defined]
        ):
            flat[f"{filename}:{line}:{function}"] = (cc, nc, tt, ct)
        return flat


class ProfileAggregate:
    """Pool-wide sum of per-task profile payloads."""

    def __init__(self) -> None:
        self._functions: Dict[str, List[float]] = {}
        self.tasks = 0

    def merge(self, payload: ProfilePayload) -> None:
        self.tasks += 1
        for function, (cc, nc, tt, ct) in payload.items():
            totals = self._functions.setdefault(function, [0, 0, 0.0, 0.0])
            totals[0] += cc
            totals[1] += nc
            totals[2] += tt
            totals[3] += ct

    def hotspots(self, top: int = 15) -> List[Dict[str, object]]:
        """Top functions by own (non-cumulative) time, summed pool-wide.

        Ties break on the function label so the ranking — which lands in
        the telemetry JSONL's driver record — is deterministic.
        """
        ranked = sorted(
            self._functions.items(), key=lambda item: (-item[1][2], item[0])
        )
        return [
            {
                "function": function,
                "calls": int(nc),
                "primitive_calls": int(cc),
                "own_seconds": tt,
                "cumulative_seconds": ct,
            }
            for function, (cc, nc, tt, ct) in ranked[:top]
        ]

    def __bool__(self) -> bool:
        return bool(self._functions)
