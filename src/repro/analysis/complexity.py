"""Complexity fitting: do the measured costs scale like the paper's bounds?

The benchmarks produce series of (problem size, measured cost) points.  To
compare a measured series against an asymptotic claim we use two standard
devices:

* :func:`fit_power_law` — ordinary least squares on the log–log points,
  returning the exponent and the fit quality; e.g. a message complexity of
  ``Θ̃(√n)`` should fit an exponent close to 0.5 on expander families;
* :func:`theory_ratio_series` — the ratio ``measured / predicted`` for a
  caller-supplied prediction function; a bounded, slowly varying ratio is
  evidence the measured cost tracks the claimed bound up to the constants
  and polylog factors that ``Õ(·)`` hides.

These helpers deliberately avoid any statistics beyond what the comparison
needs; they are used both by EXPERIMENTS.md generation and by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigurationError

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "theory_ratio_series",
    "ratio_spread",
    "geometric_mean",
    "crossover_point",
]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a log–log least-squares fit ``cost ≈ coefficient · size^exponent``."""

    exponent: float
    coefficient: float
    r_squared: float
    num_points: int

    def predict(self, size: float) -> float:
        return self.coefficient * size ** self.exponent

    def as_dict(self) -> Dict[str, float]:
        return {
            "exponent": self.exponent,
            "coefficient": self.coefficient,
            "r_squared": self.r_squared,
            "num_points": self.num_points,
        }


def fit_power_law(sizes: Sequence[float], costs: Sequence[float]) -> PowerLawFit:
    """Fit ``cost ≈ c · size^a`` by least squares in log–log space."""
    if len(sizes) != len(costs):
        raise ConfigurationError("sizes and costs must have the same length")
    if len(sizes) < 2:
        raise ConfigurationError("need at least two points to fit a power law")
    if any(s <= 0 for s in sizes) or any(c <= 0 for c in costs):
        raise ConfigurationError("sizes and costs must be positive for a log-log fit")
    log_sizes = np.log(np.asarray(sizes, dtype=float))
    log_costs = np.log(np.asarray(costs, dtype=float))
    slope, intercept = np.polyfit(log_sizes, log_costs, 1)
    predictions = slope * log_sizes + intercept
    residual = np.sum((log_costs - predictions) ** 2)
    total = np.sum((log_costs - log_costs.mean()) ** 2)
    r_squared = 1.0 if total == 0 else max(0.0, 1.0 - residual / total)
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=float(r_squared),
        num_points=len(sizes),
    )


def theory_ratio_series(
    sizes: Sequence[float],
    costs: Sequence[float],
    prediction: Callable[[float], float],
) -> List[Tuple[float, float]]:
    """``(size, measured / predicted)`` for each measured point."""
    if len(sizes) != len(costs):
        raise ConfigurationError("sizes and costs must have the same length")
    ratios: List[Tuple[float, float]] = []
    for size, cost in zip(sizes, costs):
        predicted = prediction(size)
        if predicted <= 0:
            raise ConfigurationError(f"prediction must be positive, got {predicted}")
        ratios.append((size, cost / predicted))
    return ratios


def ratio_spread(ratios: Sequence[Tuple[float, float]]) -> float:
    """Max/min spread of the ratio series (1.0 means a perfect constant)."""
    values = [ratio for _, ratio in ratios]
    if not values:
        raise ConfigurationError("ratio series is empty")
    low, high = min(values), max(values)
    if low <= 0:
        raise ConfigurationError("ratios must be positive")
    return high / low


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the natural average for multiplicative comparisons."""
    if not values:
        raise ConfigurationError("values must be non-empty")
    if any(v <= 0 for v in values):
        raise ConfigurationError("values must be positive")
    return float(np.exp(np.mean(np.log(np.asarray(values, dtype=float)))))


def crossover_point(
    sizes: Sequence[float],
    costs_a: Sequence[float],
    costs_b: Sequence[float],
) -> float:
    """Size at which series A starts beating series B (∞ if it never does).

    Used for Table 1-style statements such as "the paper's protocol beats
    the Ω(m)-message flooding baseline beyond moderate sizes on expanders".
    The crossover is interpolated on the fitted power laws so it is robust
    to noise at individual points.
    """
    fit_a = fit_power_law(sizes, costs_a)
    fit_b = fit_power_law(sizes, costs_b)
    if math.isclose(fit_a.exponent, fit_b.exponent, abs_tol=1e-9):
        return 0.0 if fit_a.coefficient <= fit_b.coefficient else math.inf
    crossing = (fit_b.coefficient / fit_a.coefficient) ** (
        1.0 / (fit_a.exponent - fit_b.exponent)
    )
    if fit_a.exponent < fit_b.exponent:
        # A grows slower: it wins for sizes beyond the crossing.
        return float(crossing)
    return math.inf if crossing > max(sizes) else float("inf")
