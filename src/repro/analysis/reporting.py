"""Plain-text reporting: Table 1-style tables and scaling series.

The paper's evaluation artefact is Table 1, a comparison of time and
message complexities across algorithms and knowledge assumptions.  The
benchmark harness reproduces its *shape* from measurements; this module
renders those measurements as aligned ASCII tables (so ``pytest -s
benchmarks/...`` and the examples print something a reader can eyeball and
EXPERIMENTS.md can embed verbatim).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "format_value",
    "render_table",
    "render_comparison_table",
    "render_series",
    "render_kv",
]


def format_value(value: object, *, precision: int = 3) -> str:
    """Human-friendly formatting for table cells."""
    if value is None:
        # Absent measurements (e.g. a sharded sweep's untouched cells or a
        # merge summary's empty fields) render as a dash, not "None".
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if math.isinf(value):
            return "inf"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.2e}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [format_value(row.get(column, "")) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(cells[i]) for cells in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    lines.append(header)
    lines.append(separator)
    for cells in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
    return "\n".join(lines)


def render_comparison_table(
    cells_by_algorithm: Mapping[str, Sequence[Mapping[str, object]]],
    *,
    key_column: str = "topology",
    value_column: str = "mean_messages",
    title: Optional[str] = None,
) -> str:
    """Pivot per-algorithm rows into a Table 1-style comparison.

    Rows are the values of ``key_column`` (e.g. topologies), columns are the
    algorithms, and the cells hold ``value_column`` (e.g. mean messages) —
    the same shape as the paper's Table 1, with measurements instead of
    asymptotic bounds.
    """
    keys: List[object] = []
    for rows in cells_by_algorithm.values():
        for row in rows:
            key = row.get(key_column)
            if key not in keys:
                keys.append(key)
    table_rows: List[Dict[str, object]] = []
    for key in keys:
        table_row: Dict[str, object] = {key_column: key}
        for algorithm, rows in cells_by_algorithm.items():
            match = next((row for row in rows if row.get(key_column) == key), None)
            table_row[algorithm] = match.get(value_column) if match else ""
        table_rows.append(table_row)
    columns = [key_column] + list(cells_by_algorithm.keys())
    return render_table(table_rows, columns=columns, title=title)


def render_series(
    series: Iterable[Tuple[object, object]],
    *,
    x_label: str = "n",
    y_label: str = "value",
    title: Optional[str] = None,
) -> str:
    """Render an (x, y) series as a two-column table (a textual 'figure')."""
    rows = [{x_label: x, y_label: y} for x, y in series]
    return render_table(rows, columns=[x_label, y_label], title=title)


def render_kv(mapping: Mapping[str, object], *, title: Optional[str] = None) -> str:
    """Render a flat mapping as ``key: value`` lines."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(key) for key in mapping), default=0)
    for key, value in mapping.items():
        lines.append(f"{key.ljust(width)} : {format_value(value)}")
    return "\n".join(lines)
