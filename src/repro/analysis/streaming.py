"""Streaming result aggregation: sinks fold runs into per-cell statistics.

The experiment engine used to hold every
:class:`~repro.election.base.LeaderElectionResult` in memory until cells
were assembled — O(runs × nodes) resident for large grids.  This module
replaces that with a streaming pipeline: every completed run is *emitted*
into one or more :class:`ResultSink` objects the moment it finishes and
then released, so the only state that grows with the sweep is a fixed set
of per-cell accumulators.

Order independence
------------------

:class:`CellAggregate` keeps **exact** accumulators — integer/rational
sums and sums of squares, min/max, counts — and converts to floats only
once, when a cell is assembled.  Exact addition is associative and
commutative, so the aggregates are bit-identical no matter how the runs
were interleaved: serial grid order, a pool's completion order, or a
merge of per-shard checkpoints all produce the same cells.  (Wall-clock
sums stay plain floats; they are the one legitimately nondeterministic
measurement and are excluded from every equivalence guarantee.)

Sinks
-----

* :class:`CellAggregatingSink` — the default pipeline: folds each run
  into its cell's :class:`CellAggregate`;
* :class:`CollectingSink` — the opt-in "keep the full results" sink
  behind ``keep_results=True``; composes with the aggregating sink
  instead of threading a flag through every layer;
* :class:`JsonlSink` — streams one JSON record per run to a ``.jsonl``
  file (``repro-le sweep --jsonl out.jsonl``), so per-run data reaches
  offline analysis without retaining anything in memory;
* :class:`ProgressSink` — periodically logs ``completed/total`` runs
  with elapsed time, throughput and an ETA (``repro-le sweep
  --progress``), so long sharded sweeps running on other machines stay
  observable from their job logs;
* any user-supplied object implementing :class:`ResultSink` can be passed
  to the experiment drivers (``sinks=...``) to observe runs as they
  complete (progress bars, live dashboards, external writers).
"""

from __future__ import annotations

import json
import math
import os
import shutil
import sys
from fractions import Fraction
from pathlib import Path
from typing import Callable, Dict, List, Optional, TextIO, Tuple, Union

from ..election.base import LeaderElectionResult, SafetyTally
from ..obs import Stopwatch

__all__ = [
    "CellAggregate",
    "CellAggregatingSink",
    "CollectingSink",
    "JsonlSink",
    "ProgressSink",
    "ResultSink",
    "abort_sinks",
]

#: Exact accumulator value: ints stay ints (arbitrary precision), floats
#: are promoted to :class:`~fractions.Fraction` so sums stay exact and
#: therefore order-independent.
Exact = Union[int, Fraction]


def _exact(value) -> Exact:
    return value if isinstance(value, int) else Fraction(value)


def _mean(total: Exact, count: int) -> float:
    return float(Fraction(total) / count)


class CellAggregate:
    """Exact incremental statistics of one (algorithm, topology) cell.

    Everything :class:`~repro.analysis.experiments.ExperimentCell` reports
    is derivable from these accumulators, so a sweep never needs to retain
    its runs.  ``merge`` combines two aggregates of the same cell (used
    when folding shard results); because the accumulators are exact, a
    merge of partial aggregates equals the aggregate of the union.
    """

    __slots__ = (
        "algorithm",
        "count",
        "successes",
        "sum_messages",
        "sum_sq_messages",
        "sum_bits",
        "sum_rounds",
        "sum_dropped",
        "sum_delayed",
        "sum_wall_clock",
        "min_messages",
        "max_messages",
        "min_rounds",
        "max_rounds",
        "safety",
    )

    def __init__(self) -> None:
        self.algorithm: Optional[str] = None
        self.count = 0
        self.successes = 0
        self.sum_messages: Exact = 0
        self.sum_sq_messages: Exact = 0
        self.sum_bits: Exact = 0
        self.sum_rounds: Exact = 0
        self.sum_dropped: Exact = 0
        self.sum_delayed: Exact = 0
        self.sum_wall_clock = 0.0
        self.min_messages: Optional[int] = None
        self.max_messages: Optional[int] = None
        self.min_rounds: Optional[int] = None
        self.max_rounds: Optional[int] = None
        self.safety = SafetyTally()

    def add(self, result: LeaderElectionResult, wall_clock_seconds: float) -> None:
        """Fold one completed run into the cell."""
        if self.algorithm is None:
            self.algorithm = result.algorithm
        messages = result.messages
        rounds = result.rounds_executed
        self.count += 1
        self.successes += 1 if result.success else 0
        self.sum_messages += _exact(messages)
        self.sum_sq_messages += _exact(messages) * _exact(messages)
        self.sum_bits += _exact(result.bits)
        self.sum_rounds += _exact(rounds)
        self.sum_dropped += _exact(result.metrics.dropped_messages)
        self.sum_delayed += _exact(result.metrics.delayed_messages)
        self.sum_wall_clock += wall_clock_seconds
        if self.min_messages is None or messages < self.min_messages:
            self.min_messages = messages
        if self.max_messages is None or messages > self.max_messages:
            self.max_messages = messages
        if self.min_rounds is None or rounds < self.min_rounds:
            self.min_rounds = rounds
        if self.max_rounds is None or rounds > self.max_rounds:
            self.max_rounds = rounds
        self.safety.add(result)

    def merge(self, other: "CellAggregate") -> None:
        """Fold another partial aggregate of the *same* cell into this one."""
        if self.algorithm is None:
            self.algorithm = other.algorithm
        self.count += other.count
        self.successes += other.successes
        self.sum_messages += other.sum_messages
        self.sum_sq_messages += other.sum_sq_messages
        self.sum_bits += other.sum_bits
        self.sum_rounds += other.sum_rounds
        self.sum_dropped += other.sum_dropped
        self.sum_delayed += other.sum_delayed
        self.sum_wall_clock += other.sum_wall_clock
        for field in ("min_messages", "min_rounds"):
            mine, theirs = getattr(self, field), getattr(other, field)
            if mine is None or (theirs is not None and theirs < mine):
                setattr(self, field, theirs)
        for field in ("max_messages", "max_rounds"):
            mine, theirs = getattr(self, field), getattr(other, field)
            if mine is None or (theirs is not None and theirs > mine):
                setattr(self, field, theirs)
        self.safety.merge(other.safety)

    # ------------------------------------------------------------------ #
    # derived statistics
    # ------------------------------------------------------------------ #
    @property
    def mean_messages(self) -> float:
        return _mean(self.sum_messages, self.count)

    @property
    def mean_bits(self) -> float:
        return _mean(self.sum_bits, self.count)

    @property
    def mean_rounds(self) -> float:
        return _mean(self.sum_rounds, self.count)

    @property
    def mean_dropped_messages(self) -> float:
        return _mean(self.sum_dropped, self.count)

    @property
    def mean_delayed_messages(self) -> float:
        return _mean(self.sum_delayed, self.count)

    @property
    def mean_wall_clock_seconds(self) -> float:
        return self.sum_wall_clock / self.count

    @property
    def stdev_messages(self) -> float:
        """Population standard deviation from the exact moments.

        ``n·Σx² − (Σx)²`` is computed in exact arithmetic, so the value
        is independent of fold order (a float running sum would not be).
        """
        if self.count < 2:
            return 0.0
        n = self.count
        variance = Fraction(
            n * self.sum_sq_messages - self.sum_messages * self.sum_messages,
            n * n,
        )
        return math.sqrt(float(variance))


class ResultSink:
    """Receives each completed run of an experiment grid, in completion order.

    The base class ignores everything, so subclasses override only what
    they need.  ``emit`` is called from the parent process (never from
    pool workers) with the run's grid coordinates; ``close`` is called
    once after the last run of a sweep.
    """

    def emit(
        self,
        spec_name: str,
        topology_index: int,
        seed_index: int,
        result: LeaderElectionResult,
        wall_clock_seconds: float,
    ) -> None:
        """Observe one completed run."""

    def close(self) -> None:
        """The sweep completed; flush any buffered state."""

    def abort(self) -> None:
        """The sweep failed mid-grid; release resources.

        Called by the drivers instead of :meth:`close` when a run raised —
        :meth:`close` still means "the sweep completed", exactly as it
        always has, so sinks that publish on close are never handed an
        incomplete sweep.  The default does nothing (the built-in sinks
        hold no resources); sinks with buffers or handles override it
        (e.g. :class:`JsonlSink` flushes its staging file without
        publishing).
        """


def abort_sinks(sinks) -> None:
    """Abort every sink of a failed sweep (the drivers' failure path).

    ``getattr``: duck-typed sinks written against the original emit/close
    contract predate :meth:`ResultSink.abort` and simply get skipped —
    their ``close`` still means "the sweep completed" and is not called.
    """
    for sink in sinks:
        abort = getattr(sink, "abort", None)
        if abort is not None:
            abort()


class CellAggregatingSink(ResultSink):
    """The default pipeline stage: fold every run into its cell aggregate."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[str, int], CellAggregate] = {}

    def emit(self, spec_name, topology_index, seed_index, result, wall_clock_seconds):
        key = (spec_name, topology_index)
        aggregate = self._cells.get(key)
        if aggregate is None:
            aggregate = self._cells[key] = CellAggregate()
        aggregate.add(result, wall_clock_seconds)

    def aggregate_for(
        self, spec_name: str, topology_index: int
    ) -> Optional[CellAggregate]:
        """The cell's aggregate, or ``None`` if no run has been emitted
        (possible for sharded sweeps, which execute a subset of the grid)."""
        return self._cells.get((spec_name, topology_index))


class CollectingSink(ResultSink):
    """Opt-in retention of the full per-run results (``keep_results``).

    This is the only part of the pipeline whose memory grows with
    ``runs × nodes``; it exists for callers that genuinely need per-run
    payloads (debugging, per-run safety forensics) and composes with the
    aggregating sink instead of changing the aggregation path.
    """

    def __init__(self) -> None:
        self._runs: Dict[Tuple[str, int], Dict[int, LeaderElectionResult]] = {}

    def emit(self, spec_name, topology_index, seed_index, result, wall_clock_seconds):
        self._runs.setdefault((spec_name, topology_index), {})[seed_index] = result

    def results_for(
        self, spec_name: str, topology_index: int
    ) -> List[LeaderElectionResult]:
        """The cell's runs in grid (seed) order, regardless of completion order."""
        cell = self._runs.get((spec_name, topology_index), {})
        return [cell[index] for index in sorted(cell)]


class ProgressSink(ResultSink):
    """Periodic ``completed/total`` progress lines for long sweeps.

    The multi-machine progress report: each job of a sharded sweep
    attaches one (``repro-le sweep --shard 2/8 --progress``) and its log
    shows how far *its slice* has come — including runs restored from the
    shard's checkpoint, which stream through the sinks like fresh ones.

    Reporting cadence is count-based, hence deterministic: a line every
    ``every`` completed runs (default: ~5% of ``total``, every 25 runs
    when the total is unknown) plus a final line at close.  Each line
    also carries elapsed time, throughput and — when the total is known
    and runs remain — an ETA, timed by a :class:`repro.obs.Stopwatch`
    (``clock`` is injectable so tests pin the timing part down too).
    Lines go to ``stream`` (default ``stderr``, keeping stdout's result
    tables clean)::

        progress[shard 2/8]: 48/96 runs (50.0%) | 12.0s elapsed, 4.0 runs/s, ETA 12.0s
    """

    def __init__(
        self,
        total: Optional[int] = None,
        *,
        label: str = "",
        every: Optional[int] = None,
        stream: Optional[TextIO] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if total is not None and total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        if every is not None and every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._total = total
        self._label = f"[{label}]" if label else ""
        self._every = every if every is not None else (
            max(1, total // 20) if total else 25
        )
        self._stream = stream
        self._stopwatch = Stopwatch(clock)
        self._count = 0
        self._reported_at = -1

    def _report(self) -> None:
        if self._total:
            detail = f"{self._count}/{self._total} runs ({self._count / self._total:.1%})"
        else:
            detail = f"{self._count} runs"
        elapsed = self._stopwatch.elapsed()
        timing = f"{elapsed:.1f}s elapsed"
        if self._count and elapsed > 0:
            rate = self._count / elapsed
            timing += f", {rate:.1f} runs/s"
            if self._total and self._count < self._total:
                # Naive linear ETA — the honest choice here: cells are
                # heterogeneous, but the operator wants *an* estimate.
                timing += f", ETA {(self._total - self._count) / rate:.1f}s"
        stream = self._stream if self._stream is not None else sys.stderr
        print(
            f"progress{self._label}: {detail} | {timing}", file=stream, flush=True
        )
        self._reported_at = self._count

    def extend_total(self, additional: int) -> None:
        """Grow the expected total as work is discovered.

        A work-stealing job (``sweep --shard auto``) cannot know its
        total up front — it claims task blocks at runtime — so the
        engine calls this as each block is claimed and the progress
        lines always show the job's *current* commitment.  Starting the
        sink with ``total=0`` and extending keeps percentages and ETAs
        meaningful throughout.
        """
        if additional < 0:
            raise ValueError(f"additional must be >= 0, got {additional}")
        self._total = (self._total or 0) + additional

    def emit(self, spec_name, topology_index, seed_index, result, wall_clock_seconds):
        self._count += 1
        if self._count % self._every == 0 or self._count == self._total:
            self._report()

    def close(self) -> None:
        # The final count is always reported, even for an empty shard
        # slice — "0 runs" tells the operator the job ran and had nothing
        # to do, which silence would not.
        if self._count != self._reported_at:
            self._report()


class JsonlSink(ResultSink):
    """Stream one JSON record per completed run to a ``.jsonl`` file.

    The ROADMAP's export sink: per-run measurements reach disk for offline
    analysis without ``keep_results`` retaining them in memory — the sink
    holds one open file handle and nothing else.  Records carry the run's
    grid coordinates (``experiment``/``topology_index``/``seed_index``) so
    offline consumers can regroup or reorder them, plus the protocol
    token and adversary description when the run was parameterised.

    Records are written in *completion* order: identical to grid order on
    the serial backend, pool-dependent under ``workers > 1`` (use the grid
    coordinates to sort).  Writes go to a ``<path>.partial`` staging file
    that replaces ``<path>`` on a clean close, so the export at ``<path>``
    is always a *complete* sweep: a resumed sweep (a *fresh* sink on an
    existing path) replaces the previous export, a sweep that crashes
    mid-grid leaves the previous export untouched and its completed runs'
    records in the ``.partial`` file for debugging.  One sink *instance*
    shared by sequential driver calls accumulates every call's records in
    one file.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._staging = self._path.with_name(self._path.name + ".partial")
        self._handle = None
        self._closed = False
        self._was_closed = False

    def _open(self):
        if self._handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self._staging.open("w", encoding="utf-8")
            if self._was_closed and self._path.exists():
                # One instance shared by sequential driver calls: seed the
                # new staging file with the previous calls' published
                # records (streamed, not slurped — exports can be large),
                # so the final rename accumulates instead of replacing.
                with self._path.open("r", encoding="utf-8") as published:
                    shutil.copyfileobj(published, self._handle)
        self._closed = False
        return self._handle

    def emit(self, spec_name, topology_index, seed_index, result, wall_clock_seconds):
        handle = self._open()
        record: Dict[str, object] = {
            "experiment": spec_name,
            "topology_index": topology_index,
            "seed_index": seed_index,
            "algorithm": result.algorithm,
            "protocol": result.parameters.get("protocol", ""),
            "topology": result.topology_name,
            "n": result.num_nodes,
            "m": result.num_edges,
            "seed": result.seed,
            "success": result.success,
            "leaders": result.outcome.num_leaders,
            "messages": result.messages,
            "bits": result.bits,
            "rounds": result.rounds_executed,
            "dropped_messages": result.metrics.dropped_messages,
            "delayed_messages": result.metrics.delayed_messages,
            "wall_clock_seconds": wall_clock_seconds,
        }
        adversary = result.parameters.get("adversary")
        if adversary is not None:
            record["adversary"] = adversary
        handle.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        # Idempotent: the drivers close caller-supplied sinks, and a
        # caller closing again defensively must not republish (or
        # truncate) the finished file.
        if self._closed:
            return
        # A sweep with zero local runs (an empty shard slice) still
        # publishes an (empty) file, so downstream collectors see the job
        # ran.
        self._open()
        self._handle.close()
        self._handle = None
        self._closed = True
        self._was_closed = True
        os.replace(self._staging, self._path)

    def abort(self) -> None:
        # The sweep failed mid-grid: flush the completed runs' records to
        # the ``.partial`` staging file (they help debug the failure), but
        # publish nothing — the export path keeps its previous complete
        # sweep, and a crash before the first run forges no empty
        # "completed with zero runs" marker.
        if self._closed:
            return
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True
