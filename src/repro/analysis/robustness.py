"""Robustness curves: success/safety-vs-``p`` per (protocol, adversary).

A robustness sweep (:func:`repro.dynamics.robustness_specs`,
``repro-le sweep --scenario lossy/skewed/...``) measures every protocol
under a *ladder* of adversary rungs.  This module folds those
measurements into the curves the paper's robustness story is about: for
each (protocol configuration, adversary family), how do the success rate
(a unique leader was elected), the safety rate (never more than one
leader), and the cost degrade as the fault dial ``p`` is turned up?

Two folding paths produce the same :class:`RobustnessCurve` shape:

* :class:`RobustnessCurveSink` — a streaming
  :class:`~repro.analysis.streaming.ResultSink`: every completed run is
  folded into its curve point's
  :class:`~repro.analysis.streaming.CellAggregate` the moment it
  finishes.  The aggregates are exact (integer/rational arithmetic), so
  the assembled curves are **bit-identical no matter how the runs were
  scheduled** — serial grid order, a pool's completion order, or the
  union of per-shard slices all fold to the same values.
* :func:`fold_experiments` — the post-hoc path over finished
  (:class:`~repro.analysis.experiments.ExperimentSpec`,
  :class:`~repro.analysis.experiments.ExperimentResult`) pairs, for
  callers that already hold assembled cells (the CLI).  Counts and rates
  are integer-derived and agree exactly with the sink path; the cost
  means are reconstructed from the cells' (already rounded) float means,
  so across the *two paths* they agree only to float rounding — each
  path on its own is deterministic and backend-independent.

The fault dial
--------------

Each adversary family exposes one severity parameter
(:data:`DIAL_PARAMETERS`): ``p`` for loss/delay/skew/crash, ``p_down``
for churn.  The unperturbed baseline rung (``None`` in a scenario
ladder) sits at ``p = 0.0`` and is shared by every family curve of its
protocol.  A ``composed`` rung's severity is the maximum of its parts'
dials — a scalar proxy good enough to order the rungs of one ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from ..core.errors import ConfigurationError
from ..dynamics.spec import AdversarySpec, make_adversary
from .experiments import ExperimentResult, ExperimentSpec
from .streaming import CellAggregate, ResultSink

__all__ = [
    "DIAL_PARAMETERS",
    "CurvePoint",
    "RobustnessCurve",
    "RobustnessCurveSink",
    "classify_adversary",
    "curve_rows",
    "curves_as_dicts",
    "fold_experiments",
]

#: Adversary family -> the parameter that dials its severity (the curve's
#: x-axis).  Families not listed fall back to ``"p"``.
DIAL_PARAMETERS: Dict[str, str] = {
    "loss": "p",
    "delay": "p",
    "skew": "p",
    "crash": "p",
    "churn": "p_down",
}

#: token -> (family, dial value); classifying a rung instantiates the
#: model once to resolve parameter defaults, so the lookup is cached.
_CLASSIFY_CACHE: Dict[str, Tuple[str, float]] = {}


def _dial_value(described: Mapping[str, object]) -> float:
    dial = DIAL_PARAMETERS.get(str(described.get("name")), "p")
    value = described.get(dial, 0.0)
    return float(value) if isinstance(value, (int, float)) else 0.0


def classify_adversary(
    adversary: Union[None, AdversarySpec, Mapping[str, object]],
) -> Tuple[str, float]:
    """(family, dial value) of one adversary rung.

    ``adversary`` is an :class:`~repro.dynamics.spec.AdversarySpec`, the
    ``spec.as_dict()`` mapping a run records in its parameters, or
    ``None`` for the unperturbed baseline (classified ``("", 0.0)``).
    Parameter defaults are resolved by instantiating the model once (the
    rung ``loss`` without an explicit ``p`` still lands at the model's
    default 0.05, not at 0); a ``composed`` rung's dial is the maximum
    over its parts.
    """
    if adversary is None:
        return ("", 0.0)
    if isinstance(adversary, AdversarySpec):
        spec = adversary
    else:
        try:
            name = str(adversary["name"])
        except (KeyError, TypeError):
            raise ConfigurationError(
                f"cannot classify adversary {adversary!r}: expected None, "
                f"an AdversarySpec, or a name/params mapping"
            ) from None
        params = dict(adversary.get("params", {}))
        spec = AdversarySpec(name=name, params=tuple(sorted(params.items())))
    token = spec.token()
    cached = _CLASSIFY_CACHE.get(token)
    if cached is None:
        described = make_adversary(spec, seed=0).describe()
        if spec.name == "composed":
            value = max(
                (_dial_value(part) for part in described.get("parts", ())),
                default=0.0,
            )
        else:
            value = _dial_value(described)
        cached = _CLASSIFY_CACHE[token] = (spec.name, value)
    return cached


@dataclass(frozen=True)
class CurvePoint:
    """One rung of a robustness curve: all runs at one dial value."""

    p: float
    runs: int
    successes: int
    safe_runs: int
    mean_messages: float
    mean_rounds: float
    mean_dropped_messages: float
    mean_delayed_messages: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.runs if self.runs else 0.0

    @property
    def safety_rate(self) -> float:
        return self.safe_runs / self.runs if self.runs else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "p": self.p,
            "runs": self.runs,
            "successes": self.successes,
            "safe_runs": self.safe_runs,
            "success_rate": self.success_rate,
            "safety_rate": self.safety_rate,
            "mean_messages": self.mean_messages,
            "mean_rounds": self.mean_rounds,
            "mean_dropped_messages": self.mean_dropped_messages,
            "mean_delayed_messages": self.mean_delayed_messages,
        }


@dataclass(frozen=True)
class RobustnessCurve:
    """Success/safety-vs-``p`` of one protocol under one adversary family.

    ``points`` are sorted by strictly increasing ``p``; the first point
    is the shared unperturbed baseline (``p = 0.0``) whenever the sweep
    carried one.
    """

    protocol: str
    adversary: str
    points: Tuple[CurvePoint, ...]

    def series(self, y_field: str = "success_rate") -> List[Tuple[float, object]]:
        """The (p, y) series of the curve, for plots and fits."""
        return [(point.p, point.as_dict()[y_field]) for point in self.points]

    def as_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "adversary": self.adversary,
            "points": [point.as_dict() for point in self.points],
        }


#: bucket key: (protocol configuration, adversary family, dial value).
_Key = Tuple[str, str, float]


def _assemble_curves(points: Dict[_Key, CurvePoint]) -> List[RobustnessCurve]:
    """Group per-bucket points into per-(protocol, family) curves.

    The baseline bucket (family ``""``) of each protocol is prepended to
    every family curve of that protocol at ``p = 0.0`` — unless the
    family carries its own explicit ``p = 0.0`` rung, which wins.
    """
    baselines: Dict[str, CurvePoint] = {}
    families: Dict[Tuple[str, str], Dict[float, CurvePoint]] = {}
    for (protocol, family, p), point in points.items():
        if family == "":
            baselines[protocol] = point
        else:
            families.setdefault((protocol, family), {})[p] = point
    curves: List[RobustnessCurve] = []
    for (protocol, family) in sorted(families):
        rungs = families[(protocol, family)]
        baseline = baselines.get(protocol)
        if baseline is not None and 0.0 not in rungs:
            rungs[0.0] = baseline
        curves.append(
            RobustnessCurve(
                protocol=protocol,
                adversary=family,
                points=tuple(rungs[p] for p in sorted(rungs)),
            )
        )
    return curves


class RobustnessCurveSink(ResultSink):
    """Fold streamed runs into robustness-curve buckets, exactly.

    One :class:`~repro.analysis.streaming.CellAggregate` accumulates per
    (protocol, adversary family, dial value); exact addition is
    associative and commutative, so the curves are bit-identical for any
    completion order — the serial driver, any pool worker count, or
    several sharded jobs sharing one sink instance.
    """

    def __init__(self) -> None:
        self._buckets: Dict[_Key, CellAggregate] = {}

    def emit(self, spec_name, topology_index, seed_index, result, wall_clock_seconds):
        protocol = str(result.parameters.get("protocol") or result.algorithm)
        family, p = classify_adversary(result.parameters.get("adversary"))
        bucket = self._buckets.get((protocol, family, p))
        if bucket is None:
            bucket = self._buckets[(protocol, family, p)] = CellAggregate()
        bucket.add(result, wall_clock_seconds)

    def curves(self) -> List[RobustnessCurve]:
        """Assemble the curves folded so far (callable mid-stream)."""
        points = {
            (protocol, family, p): CurvePoint(
                p=p,
                runs=aggregate.count,
                successes=aggregate.successes,
                safe_runs=aggregate.safety.safe_runs,
                mean_messages=aggregate.mean_messages,
                mean_rounds=aggregate.mean_rounds,
                mean_dropped_messages=aggregate.mean_dropped_messages,
                mean_delayed_messages=aggregate.mean_delayed_messages,
            )
            for (protocol, family, p), aggregate in self._buckets.items()
        }
        return _assemble_curves(points)


@dataclass
class _CellFold:
    """Exact accumulator over already-assembled cells (the post-hoc path).

    Rates come from integer counts; cost sums promote the cells' float
    means to :class:`~fractions.Fraction` (an exact conversion), so the
    fold is order-independent even though the inputs were rounded once
    at cell assembly.
    """

    runs: int = 0
    successes: int = 0
    safe_runs: int = 0
    sum_messages: Fraction = field(default_factory=Fraction)
    sum_rounds: Fraction = field(default_factory=Fraction)
    sum_dropped: Fraction = field(default_factory=Fraction)
    sum_delayed: Fraction = field(default_factory=Fraction)

    def add_cell(self, cell) -> None:
        self.runs += cell.runs
        self.successes += cell.successes
        # Cells built by the drivers always carry a tally; hand-built
        # cells without one contribute their runs as safe (no violation
        # was recorded).
        self.safe_runs += (
            cell.safety.safe_runs if cell.safety is not None else cell.runs
        )
        # int() asserts the run count is integral, so Fraction * int stays
        # a Fraction and the accumulation is exact (REP106's contract).
        self.sum_messages += Fraction(cell.mean_messages) * int(cell.runs)
        self.sum_rounds += Fraction(cell.mean_rounds) * int(cell.runs)
        self.sum_dropped += Fraction(cell.mean_dropped_messages) * int(cell.runs)
        self.sum_delayed += Fraction(cell.mean_delayed_messages) * int(cell.runs)

    def point(self, p: float) -> CurvePoint:
        runs = self.runs or 1
        return CurvePoint(
            p=p,
            runs=self.runs,
            successes=self.successes,
            safe_runs=self.safe_runs,
            mean_messages=float(self.sum_messages / runs),
            mean_rounds=float(self.sum_rounds / runs),
            mean_dropped_messages=float(self.sum_dropped / runs),
            mean_delayed_messages=float(self.sum_delayed / runs),
        )


def fold_experiments(
    specs: Sequence[ExperimentSpec],
    results: Sequence[ExperimentResult],
) -> List[RobustnessCurve]:
    """Fold finished experiment results into robustness curves.

    ``specs`` and ``results`` are matched positionally (the order
    :func:`repro.parallel.run_experiments` returns them in); each spec's
    adversary classifies all of its cells onto one rung.  Sharded
    results fold too — a shard's slice simply contributes fewer runs per
    point, and merging shards before folding or folding per-shard
    results of every shard yields identical curves.
    """
    if len(specs) != len(results):
        raise ConfigurationError(
            f"fold_experiments needs one result per spec, got "
            f"{len(specs)} specs and {len(results)} results"
        )
    buckets: Dict[_Key, _CellFold] = {}
    for spec, result in zip(specs, results):
        family, p = classify_adversary(spec.adversary)
        for cell in result.cells:
            protocol = str(cell.protocol or cell.algorithm)
            fold = buckets.get((protocol, family, p))
            if fold is None:
                fold = buckets[(protocol, family, p)] = _CellFold()
            fold.add_cell(cell)
    return _assemble_curves(
        {key: fold.point(key[2]) for key, fold in buckets.items()}
    )


def curve_rows(curves: Iterable[RobustnessCurve]) -> List[Dict[str, object]]:
    """Flatten curves into report rows for :func:`repro.analysis.render_table`."""
    rows: List[Dict[str, object]] = []
    for curve in curves:
        for point in curve.points:
            rows.append(
                {
                    "protocol": curve.protocol,
                    "adversary": curve.adversary,
                    **point.as_dict(),
                }
            )
    return rows


def curves_as_dicts(curves: Iterable[RobustnessCurve]) -> List[Dict[str, object]]:
    """JSON-ready curve records (the BENCH artifact's ``curves`` entries)."""
    return [curve.as_dict() for curve in curves]
