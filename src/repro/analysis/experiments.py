"""Experiment runner: sweeps of election algorithms over topologies and seeds.

The benchmark harness and the examples share the same driver: an
:class:`ExperimentSpec` names an algorithm (a callable that takes a topology
and a seed and returns a :class:`~repro.election.base.LeaderElectionResult`)
and the grid of topologies/seeds to run it on; :func:`run_experiment`
executes the grid and aggregates per-cell statistics (success rate, message
and round means) into :class:`ExperimentCell` records that the reporting
layer turns into Table 1-style tables or scaling series.

The result path is *streaming* (see :mod:`repro.analysis.streaming`):
each run is folded into its cell's exact accumulators the moment it
completes and then released, so neither the serial driver here nor the
parallel engine (:mod:`repro.parallel`) retains the full run list.
``keep_results=True`` opts back into retention via a composing
:class:`~repro.analysis.streaming.CollectingSink`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.errors import ConfigurationError
from ..core.simulator import backend_scope
from ..election.base import LeaderElectionResult, SafetyTally
from ..obs import Stopwatch, TelemetrySink, span
from ..graphs.properties import ExpansionProfile, expansion_profile
from ..graphs.topology import Topology
from .streaming import (
    CellAggregate,
    CellAggregatingSink,
    CollectingSink,
    ResultSink,
    abort_sinks,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps layering acyclic
    from ..dynamics.spec import AdversarySpec
    from ..protocols.spec import ProtocolSpec

__all__ = [
    "ElectionRunner",
    "ExperimentSpec",
    "ExperimentCell",
    "ExperimentResult",
    "aggregate_cell",
    "cell_from_aggregate",
    "effective_runner",
    "execute_run",
    "run_experiment",
    "summarize_results",
]

#: An algorithm under test: ``runner(topology, seed) -> LeaderElectionResult``.
ElectionRunner = Callable[[Topology, int], LeaderElectionResult]


def warn_keep_results(stacklevel: int = 2) -> None:
    """Emit the ``keep_results=True`` deprecation (shared by both drivers)."""
    warnings.warn(
        "keep_results=True is deprecated; compose a CollectingSink "
        "(sinks=[CollectingSink()], see repro.analysis.streaming) to "
        "retain per-run results explicitly",
        DeprecationWarning,
        stacklevel=stacklevel + 1,
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """A named sweep of one algorithm over topologies and seeds.

    The algorithm is either a ``runner`` callable (the legacy shape:
    ``runner(topology, seed) -> LeaderElectionResult``) or a declarative
    ``protocol`` (a :class:`~repro.protocols.spec.ProtocolSpec`, or its
    string spelling ``"name:k=v,..."`` which is parsed and validated
    here).  Exactly one of the two must be set; with ``protocol`` the
    spec's configuration token becomes part of the checkpoint task keys,
    so parameter sweeps resume/shard/merge without ever mixing runs
    measured under different constants.

    ``adversary`` adds the execution-model grid axis: when set (an
    :class:`~repro.dynamics.spec.AdversarySpec`), every run executes under
    that fault model — deterministically per run seed — and the adversary's
    identity becomes part of the checkpoint task keys.
    """

    name: str
    runner: Optional[ElectionRunner] = None
    topologies: Sequence[Topology] = ()
    seeds: Sequence[int] = (0, 1, 2)
    collect_profile: bool = True
    adversary: Optional["AdversarySpec"] = None
    protocol: Optional["ProtocolSpec"] = None

    def __post_init__(self) -> None:
        if isinstance(self.protocol, str):
            from ..protocols.spec import ProtocolSpec

            object.__setattr__(self, "protocol", ProtocolSpec.parse(self.protocol))
        if self.runner is None and self.protocol is None:
            raise ConfigurationError(
                "an experiment needs an algorithm: pass runner=... or protocol=..."
            )
        if self.runner is not None and self.protocol is not None:
            raise ConfigurationError(
                "pass either runner= or protocol=, not both (the protocol "
                "spec decides the runner)"
            )
        if self.runner is not None:
            warnings.warn(
                "ExperimentSpec(runner=...) is deprecated; pass "
                "protocol=... (a ProtocolSpec or 'name:k=v,...' string) "
                "so the configuration is validated against the protocol's "
                "schema and enters checkpoint/archive task keys",
                DeprecationWarning,
                stacklevel=3,
            )
        if not self.topologies:
            raise ConfigurationError("an experiment needs at least one topology")
        if not self.seeds:
            raise ConfigurationError("an experiment needs at least one seed")

    def protocol_token(self) -> str:
        """The spec's protocol-configuration token ("" for legacy runners)."""
        return self.protocol.token() if self.protocol is not None else ""


def effective_runner(spec: ExperimentSpec) -> ElectionRunner:
    """The runner actually executed for ``spec``'s runs.

    Resolves a declarative protocol spec to its
    :class:`~repro.protocols.runners.ProtocolRunner`, then wraps the base
    runner in an adversarial fault scope when the spec carries an
    adversary; both the serial driver and the parallel engine's task
    expansion funnel through here, so the two backends run cells
    identically.
    """
    base = spec.runner
    if base is None:
        from ..protocols.runners import ProtocolRunner

        base = ProtocolRunner(spec.protocol)
    if spec.adversary is None:
        return base
    from ..dynamics.runners import AdversarialRunner

    return AdversarialRunner(base, spec.adversary)


@dataclass
class ExperimentCell:
    """Aggregated measurements of one (algorithm, topology) cell."""

    algorithm: str
    topology_name: str
    num_nodes: int
    num_edges: int
    runs: int
    successes: int
    mean_messages: float
    mean_bits: float
    mean_rounds: float
    stdev_messages: float
    mean_wall_clock_seconds: float
    #: Fault-injection cost (zero under the reliable execution model).
    mean_dropped_messages: float = 0.0
    mean_delayed_messages: float = 0.0
    #: Per-cell extremes (tail behaviour is what the paper's high-probability
    #: bounds are about; the mean alone hides it).
    min_messages: int = 0
    max_messages: int = 0
    min_rounds: int = 0
    max_rounds: int = 0
    #: The protocol-configuration token of the spec that produced the cell
    #: ("" for legacy runner-callable specs at default configuration), so
    #: parameter-sweep cells stay tellable apart in reports and exports.
    protocol: str = ""
    #: Streaming safety verdicts of the cell's runs (never ``None`` for
    #: cells built by the drivers; kept optional for hand-built cells).
    safety: Optional[SafetyTally] = None
    profile: Optional[ExpansionProfile] = None
    results: List[LeaderElectionResult] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.successes / self.runs if self.runs else 0.0

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "protocol": self.protocol,
            "topology": self.topology_name,
            "n": self.num_nodes,
            "m": self.num_edges,
            "runs": self.runs,
            "success_rate": self.success_rate,
            "mean_messages": self.mean_messages,
            "mean_bits": self.mean_bits,
            "mean_rounds": self.mean_rounds,
            "stdev_messages": self.stdev_messages,
            "min_messages": self.min_messages,
            "max_messages": self.max_messages,
            "min_rounds": self.min_rounds,
            "max_rounds": self.max_rounds,
            "mean_dropped_messages": self.mean_dropped_messages,
            "mean_delayed_messages": self.mean_delayed_messages,
            # Last on purpose: the one legitimately nondeterministic column,
            # which equivalence checks strip positionally.
            "mean_wall_clock_seconds": self.mean_wall_clock_seconds,
        }
        if self.profile is not None:
            row.update(
                {
                    "diameter": self.profile.diameter,
                    "conductance": self.profile.conductance,
                    "isoperimetric_number": self.profile.isoperimetric_number,
                    "mixing_time": self.profile.mixing_time,
                }
            )
        return row


@dataclass
class ExperimentResult:
    """All cells of one experiment."""

    name: str
    cells: List[ExperimentCell] = field(default_factory=list)

    def cell_for(self, topology_name: str) -> ExperimentCell:
        for cell in self.cells:
            if cell.topology_name == topology_name:
                return cell
        raise KeyError(topology_name)

    def series(self, x_field: str = "n", y_field: str = "mean_messages") -> List[tuple]:
        """A (x, y) series over the cells, sorted by x (for scaling plots)."""
        points = [
            (cell.as_dict()[x_field], cell.as_dict()[y_field]) for cell in self.cells
        ]
        return sorted(points)

    def overall_success_rate(self) -> float:
        runs = sum(cell.runs for cell in self.cells)
        if runs == 0:
            return 0.0
        return sum(cell.successes for cell in self.cells) / runs

    def as_rows(self) -> List[Dict[str, object]]:
        # The experiment name leads each row: in robustness sweeps several
        # specs share one algorithm (e.g. "flooding" vs
        # "flooding@loss(p=0.05)") and the rows must stay tellable apart.
        return [{"experiment": self.name, **cell.as_dict()} for cell in self.cells]


def execute_run(
    runner: ElectionRunner, topology: Topology, seed: int
) -> Tuple[LeaderElectionResult, float]:
    """Execute one (topology, seed) run and measure its wall-clock time.

    This is the single unit of work shared by the serial driver below and
    the worker processes of :mod:`repro.parallel`; keeping it in one place
    guarantees both backends run cells identically.  The ``"simulate"``
    span covers the protocol execution itself wherever a run happens —
    with telemetry off it degrades to a shared no-op (see
    :func:`repro.obs.span`), and the wall-clock reading goes through the
    injectable-clock layer (:class:`repro.obs.Stopwatch`) like every
    other timing in the repo.
    """
    stopwatch = Stopwatch()
    with span("simulate"):
        result = runner(topology, seed)
    return result, stopwatch.elapsed()


def cell_from_aggregate(
    topology: Topology,
    aggregate: CellAggregate,
    *,
    profile: Optional[ExpansionProfile] = None,
    results: Optional[List[LeaderElectionResult]] = None,
    protocol: str = "",
) -> ExperimentCell:
    """Assemble an :class:`ExperimentCell` from a streamed cell aggregate.

    Every backend — serial, parallel, sharded — funnels through this
    function, and :class:`~repro.analysis.streaming.CellAggregate` keeps
    exact accumulators, so cell statistics are bit-identical regardless
    of how (or in what order) the runs were scheduled.
    """
    if aggregate.count == 0:
        raise ConfigurationError(
            f"cannot assemble a cell for {topology.name!r} from zero runs"
        )
    return ExperimentCell(
        algorithm=aggregate.algorithm,
        topology_name=topology.name,
        num_nodes=topology.num_nodes,
        num_edges=topology.num_edges,
        runs=aggregate.count,
        successes=aggregate.successes,
        mean_messages=aggregate.mean_messages,
        mean_bits=aggregate.mean_bits,
        mean_rounds=aggregate.mean_rounds,
        stdev_messages=aggregate.stdev_messages,
        mean_wall_clock_seconds=aggregate.mean_wall_clock_seconds,
        mean_dropped_messages=aggregate.mean_dropped_messages,
        mean_delayed_messages=aggregate.mean_delayed_messages,
        min_messages=aggregate.min_messages,
        max_messages=aggregate.max_messages,
        min_rounds=aggregate.min_rounds,
        max_rounds=aggregate.max_rounds,
        protocol=protocol,
        safety=aggregate.safety,
        profile=profile,
        results=list(results) if results is not None else [],
    )


def aggregate_cell(
    topology: Topology,
    runs: Sequence[LeaderElectionResult],
    wall_clock: Sequence[float],
    *,
    profile: Optional[ExpansionProfile] = None,
    keep_results: bool = False,
) -> ExperimentCell:
    """Aggregate the per-seed runs of one (algorithm, topology) cell.

    Compatibility wrapper over the streaming aggregation path for callers
    that already hold a run list; the drivers themselves fold runs into
    :class:`~repro.analysis.streaming.CellAggregate` as they complete.
    """
    aggregate = CellAggregate()
    for run, elapsed in zip(runs, wall_clock):
        aggregate.add(run, elapsed)
    return cell_from_aggregate(
        topology,
        aggregate,
        profile=profile,
        results=list(runs) if keep_results else None,
    )


def resolve_profile(
    topology: Topology,
    profiles: Dict[str, ExpansionProfile],
    collect_profile: bool,
) -> Optional[ExpansionProfile]:
    """Look up (or compute and cache) the expansion profile of a topology.

    Caller-supplied entries are keyed by display name (the benchmarks'
    long-standing contract), but profiles computed here are cached under
    the topology's structure fingerprint: a grid may contain distinct
    graph instances that share a display name, and those must not
    silently inherit each other's mixing time or conductance.
    """
    if not collect_profile:
        return None
    profile = profiles.get(topology.fingerprint())
    if profile is None:
        profile = profiles.get(topology.name)
    if profile is None:
        profile = expansion_profile(topology)
        profiles[topology.fingerprint()] = profile
    return profile


def run_experiment(
    spec: ExperimentSpec,
    *,
    profiles: Optional[Dict[str, ExpansionProfile]] = None,
    keep_results: bool = False,
    workers: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    checkpoint_compact: bool = False,
    start_method: Optional[str] = None,
    sinks: Sequence[ResultSink] = (),
    backend: str = "auto",
    telemetry: Optional[TelemetrySink] = None,
    profile: Optional[str] = None,
    dispatch: str = "adaptive",
    task_timeout: Optional[float] = None,
) -> ExperimentResult:
    """Run every (topology, seed) pair of the spec and aggregate per topology.

    ``profiles`` lets callers pass pre-computed expansion profiles (the
    benchmarks reuse them across algorithms to avoid recomputing mixing
    times); missing entries are computed on demand when
    ``spec.collect_profile`` is set.

    ``workers`` > 1 dispatches the (topology, seed) runs to a
    :mod:`multiprocessing` pool via :mod:`repro.parallel`; results are
    identical to the serial backend (same seeds, same aggregation — only
    wall-clock readings differ).  ``checkpoint`` names a JSON file to which
    completed runs are persisted so an interrupted sweep resumes instead of
    restarting; passing it routes execution through the parallel engine
    even when ``workers`` is 1.  ``start_method`` picks the multiprocessing
    start method (``"fork"``, ``"spawn"``, ...; platform default if ``None``).

    Runs are streamed: each result is folded into its cell's aggregate
    (and forwarded to any caller-supplied ``sinks``) as it completes, then
    released.  ``keep_results=True`` composes a
    :class:`~repro.analysis.streaming.CollectingSink` to retain the full
    per-run results on the cells — opt-in, since that is the one path
    whose memory grows with ``runs × nodes``.

    ``backend`` selects the simulator core for every run of the sweep
    (``"auto"``, ``"round"`` or ``"event"`` — see
    :class:`repro.core.simulator.SynchronousSimulator`); both cores
    produce bit-identical results, so this is a pure performance knob.

    ``telemetry`` attaches a :class:`repro.obs.TelemetrySink`: per-task
    timing records (queue wait, simulate/fold/checkpoint durations,
    worker id) stream to its JSONL file and fold into an end-of-sweep
    utilization/straggler summary.  Telemetry observes without
    perturbing — results are bit-identical with it on or off.
    ``profile`` (requires ``telemetry``) additionally runs each task
    under an in-worker profiler (see :data:`repro.obs.PROFILERS`) and
    aggregates pool-wide hotspots into the telemetry.  Both route
    execution through the parallel engine, like ``checkpoint`` does.

    ``dispatch`` and ``task_timeout`` configure the parallel engine's
    scheduler (see :func:`repro.parallel.runner.run_experiments`):
    adaptive cost-aware batching with fault-tolerant re-dispatch by
    default, ``"static"`` for the one-task-per-message baseline.  They
    only apply when execution routes through the pool.
    """
    if keep_results:
        warn_keep_results()
    if (
        (workers is not None and workers > 1)
        or checkpoint is not None
        or telemetry is not None
    ):
        from ..parallel.runner import run_parallel_experiment

        return run_parallel_experiment(
            spec,
            workers=workers or 1,
            checkpoint=checkpoint,
            checkpoint_compact=checkpoint_compact,
            start_method=start_method,
            profiles=profiles,
            keep_results=keep_results,
            sinks=sinks,
            backend=backend,
            telemetry=telemetry,
            profile=profile,
            dispatch=dispatch,
            task_timeout=task_timeout,
        )
    if profile is not None:
        raise ConfigurationError(
            "profile= requires telemetry=: hotspots are reported through "
            "the telemetry summary (pass telemetry=TelemetrySink(path))"
        )
    aggregates = CellAggregatingSink()
    collector = CollectingSink() if keep_results else None
    all_sinks: List[ResultSink] = [aggregates]
    if collector is not None:
        all_sinks.append(collector)
    all_sinks.extend(sinks)

    result = ExperimentResult(name=spec.name)
    profiles = dict(profiles or {})
    runner = effective_runner(spec)
    try:
        with backend_scope(backend):
            for topology_index, topology in enumerate(spec.topologies):
                for seed_index, seed in enumerate(spec.seeds):
                    run, elapsed = execute_run(runner, topology, seed)
                    for sink in all_sinks:
                        sink.emit(
                            spec.name, topology_index, seed_index, run, elapsed
                        )
                    del run  # nothing below retains it: the sinks are the pipeline
                aggregate = aggregates.aggregate_for(spec.name, topology_index)
                result.cells.append(
                    cell_from_aggregate(
                        topology,
                        aggregate,
                        profile=resolve_profile(
                            topology, profiles, spec.collect_profile
                        ),
                        results=(
                            collector.results_for(spec.name, topology_index)
                            if collector is not None
                            else None
                        ),
                        protocol=spec.protocol_token(),
                    )
                )
    except BaseException:
        # A run raised: abort the sinks — an export sink (JsonlSink)
        # flushes the records of the runs that did complete without
        # publishing an incomplete sweep.
        abort_sinks(all_sinks)
        raise
    for sink in all_sinks:
        sink.close()
    return result


def summarize_results(results: Iterable[ExperimentResult]) -> List[Dict[str, object]]:
    """Flatten several experiments into one list of report rows."""
    rows: List[Dict[str, object]] = []
    for result in results:
        rows.extend(result.as_rows())
    return rows
