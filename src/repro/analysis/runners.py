"""Named, picklable election runners for experiment sweeps.

:class:`~repro.analysis.experiments.ExperimentSpec` carries its algorithm
as a callable.  The parallel engine (:mod:`repro.parallel`) ships that
callable to worker processes, which requires it to be picklable — i.e. an
importable module-level function, not a lambda or closure.  This module
provides exactly that: one positional ``(topology, seed)`` adapter per
election algorithm in the library, plus a registry for looking them up by
the same names the CLI uses.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..baselines import (
    run_flooding_election,
    run_gilbert_election,
    run_uniform_id_election,
)
from ..election import run_irrevocable_election, run_revocable_election
from ..election.base import LeaderElectionResult
from ..graphs.topology import Topology

__all__ = [
    "RUNNERS",
    "runner_by_name",
    "flooding_runner",
    "gilbert_runner",
    "irrevocable_runner",
    "revocable_runner",
    "uniform_id_runner",
]


def flooding_runner(topology: Topology, seed: int) -> LeaderElectionResult:
    """Flooding (Kutten et al.-style) baseline with default configuration."""
    return run_flooding_election(topology, seed=seed)


def gilbert_runner(topology: Topology, seed: int) -> LeaderElectionResult:
    """Gilbert et al. baseline with default configuration."""
    return run_gilbert_election(topology, seed=seed)


def irrevocable_runner(topology: Topology, seed: int) -> LeaderElectionResult:
    """The paper's Theorem 1 (known ``n``) protocol with default config."""
    return run_irrevocable_election(topology, seed=seed)


def revocable_runner(topology: Topology, seed: int) -> LeaderElectionResult:
    """The paper's revocable (unknown ``n``) protocol with default config."""
    return run_revocable_election(topology, seed=seed)


def uniform_id_runner(topology: Topology, seed: int) -> LeaderElectionResult:
    """Every-node-competes flooding election."""
    return run_uniform_id_election(topology, seed=seed)


RUNNERS: Dict[str, Callable[[Topology, int], LeaderElectionResult]] = {
    "flooding": flooding_runner,
    "gilbert": gilbert_runner,
    "irrevocable": irrevocable_runner,
    "revocable": revocable_runner,
    "uniform": uniform_id_runner,
}


def runner_by_name(name: str) -> Callable[[Topology, int], LeaderElectionResult]:
    """Look up a picklable runner by its CLI name."""
    try:
        return RUNNERS[name]
    except KeyError:
        from ..core.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown runner {name!r}; available: {sorted(RUNNERS)}"
        ) from None
