"""Named, picklable election runners for experiment sweeps.

:class:`~repro.analysis.experiments.ExperimentSpec` can carry its
algorithm as a callable.  The parallel engine (:mod:`repro.parallel`)
ships that callable to worker processes, which requires it to be picklable
— i.e. an importable module-level function, not a lambda or closure.  This
module provides exactly that: one positional ``(topology, seed)`` adapter
per election algorithm, plus a registry for looking them up by the same
names the CLI uses.

Since the protocol registry (:mod:`repro.protocols`) became the single
source of truth for entry points, these runners are thin wrappers over
:func:`repro.protocols.registry.run_protocol` at default configuration —
kept (rather than replaced by :class:`~repro.protocols.runners.ProtocolRunner`)
so existing call sites, pickled specs and checkpoint task keys continue to
work unchanged.  Parameterised variants go through
:class:`~repro.protocols.spec.ProtocolSpec` instead.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..election.base import LeaderElectionResult
from ..graphs.topology import Topology
from ..protocols.registry import run_protocol

__all__ = [
    "RUNNERS",
    "runner_by_name",
    "flooding_runner",
    "gilbert_runner",
    "irrevocable_runner",
    "revocable_runner",
    "uniform_id_runner",
]


def flooding_runner(topology: Topology, seed: int) -> LeaderElectionResult:
    """Flooding (Kutten et al.-style) baseline with default configuration."""
    return run_protocol("flooding", topology, seed)


def gilbert_runner(topology: Topology, seed: int) -> LeaderElectionResult:
    """Gilbert et al. baseline with default configuration."""
    return run_protocol("gilbert", topology, seed)


def irrevocable_runner(topology: Topology, seed: int) -> LeaderElectionResult:
    """The paper's Theorem 1 (known ``n``) protocol with default config."""
    return run_protocol("irrevocable", topology, seed)


def revocable_runner(topology: Topology, seed: int) -> LeaderElectionResult:
    """The paper's revocable (unknown ``n``) protocol with default config."""
    return run_protocol("revocable", topology, seed)


def uniform_id_runner(topology: Topology, seed: int) -> LeaderElectionResult:
    """Every-node-competes flooding election."""
    return run_protocol("uniform", topology, seed)


RUNNERS: Dict[str, Callable[[Topology, int], LeaderElectionResult]] = {
    "flooding": flooding_runner,
    "gilbert": gilbert_runner,
    "irrevocable": irrevocable_runner,
    "revocable": revocable_runner,
    "uniform": uniform_id_runner,
}


def runner_by_name(name: str) -> Callable[[Topology, int], LeaderElectionResult]:
    """Look up a picklable runner by its CLI name."""
    try:
        return RUNNERS[name]
    except KeyError:
        from ..core.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown runner {name!r}; available: {sorted(RUNNERS)}"
        ) from None
