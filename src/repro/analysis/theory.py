"""Closed-form theoretical predictions for the Table 1 bounds.

To compare measured costs against the paper's asymptotic claims, the
benchmark harness and EXPERIMENTS.md need the *predicted* quantity for
each algorithm at each measured configuration — e.g.
``√(n·t_mix)/Φ · log² n`` messages for Theorem 1, ``t_mix·√n·log^{7/2} n``
for Gilbert et al., ``m`` for flooding.  The functions here evaluate those
expressions from an :class:`~repro.graphs.properties.ExpansionProfile`;
the constants are deliberately 1 (the paper's `Õ(·)` hides them), so only
ratios and growth rates of the predictions are meaningful, which is how the
analysis layer uses them (:func:`repro.analysis.complexity.theory_ratio_series`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.errors import ConfigurationError
from ..graphs.properties import ExpansionProfile

__all__ = [
    "TheoreticalBound",
    "thm1_messages",
    "thm1_rounds",
    "gilbert_messages",
    "gilbert_rounds",
    "flooding_messages",
    "flooding_rounds",
    "revocable_rounds",
    "revocable_messages",
    "lower_bound_messages",
    "KNOWN_N_BOUNDS",
    "predicted_rows",
]


def _log(n: int) -> float:
    return max(1.0, math.log(n))


def thm1_messages(profile: ExpansionProfile) -> float:
    """Theorem 1: ``Õ(√(n·t_mix)/Φ)`` messages (polylog factor log² n)."""
    return (
        math.sqrt(profile.num_nodes * profile.mixing_time)
        / profile.conductance
        * _log(profile.num_nodes) ** 2
    )


def thm1_rounds(profile: ExpansionProfile) -> float:
    """Theorem 1: ``O(t_mix·log² n)`` rounds."""
    return profile.mixing_time * _log(profile.num_nodes) ** 2


def gilbert_messages(profile: ExpansionProfile) -> float:
    """Gilbert et al. [10]: ``O(t_mix·√n·log^{7/2} n)`` messages."""
    return (
        profile.mixing_time
        * math.sqrt(profile.num_nodes)
        * _log(profile.num_nodes) ** 3.5
    )


def gilbert_rounds(profile: ExpansionProfile) -> float:
    """Gilbert et al. [10] as instantiated here (t_mix known): Õ(t_mix)."""
    return profile.mixing_time * _log(profile.num_nodes)


def flooding_messages(profile: ExpansionProfile) -> float:
    """Kutten et al. [16] style flooding: ``O(m)`` messages (log-factor slack)."""
    return profile.num_edges * _log(profile.num_nodes)


def flooding_rounds(profile: ExpansionProfile) -> float:
    """Flooding: ``O(D)`` rounds."""
    return float(profile.diameter + 1)


def lower_bound_messages(profile: ExpansionProfile) -> float:
    """The Ω(√n / Φ^{3/4}) message lower bound of [10] quoted in Section 1."""
    return math.sqrt(profile.num_nodes) / profile.conductance ** 0.75


def revocable_rounds(profile: ExpansionProfile, *, epsilon: float = 1.0) -> float:
    """Theorem 3: ``Õ(n^{4(1+ε)} / i(G)²)`` rounds."""
    if profile.isoperimetric_number <= 0:
        raise ConfigurationError("isoperimetric number must be positive")
    return (
        profile.num_nodes ** (4.0 * (1.0 + epsilon))
        / profile.isoperimetric_number ** 2
        * _log(profile.num_nodes) ** 5
    )


def revocable_messages(profile: ExpansionProfile, *, epsilon: float = 1.0) -> float:
    """Theorem 3: rounds × m messages."""
    return revocable_rounds(profile, epsilon=epsilon) * profile.num_edges


@dataclass(frozen=True)
class TheoreticalBound:
    """A named pair of message/round predictions for one algorithm."""

    algorithm: str
    messages: Callable[[ExpansionProfile], float]
    rounds: Callable[[ExpansionProfile], float]

    def evaluate(self, profile: ExpansionProfile) -> Dict[str, float]:
        return {
            "algorithm": self.algorithm,
            "predicted_messages": self.messages(profile),
            "predicted_rounds": self.rounds(profile),
        }


#: The known-``n`` rows of Table 1, as evaluable bounds.
KNOWN_N_BOUNDS: List[TheoreticalBound] = [
    TheoreticalBound("this-work-thm1", thm1_messages, thm1_rounds),
    TheoreticalBound("gilbert-podc18", gilbert_messages, gilbert_rounds),
    TheoreticalBound("flooding-kutten", flooding_messages, flooding_rounds),
]


def predicted_rows(profiles: Dict[str, ExpansionProfile]) -> List[Dict[str, object]]:
    """One row per (topology, algorithm) with the predicted cost quantities.

    Used to print theory-next-to-measurement tables in reports; since the
    constants are all 1, compare *ratios across rows*, never absolute
    values against measurements.
    """
    rows: List[Dict[str, object]] = []
    for name, profile in profiles.items():
        for bound in KNOWN_N_BOUNDS:
            row: Dict[str, object] = {"topology": name}
            row.update(bound.evaluate(profile))
            rows.append(row)
    return rows
