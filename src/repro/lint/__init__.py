"""Static analysis for the reproduction's determinism & contract discipline.

``repro.lint`` is a stdlib-only, AST-based lint pass (``repro-le lint``)
encoding the invariants every bit-equivalence guarantee in this repo
rests on — seeded randomness, injectable clocks, ordered iteration,
picklable registries, conformant duck-typed implementers, exact
accumulators — as static rules checked at commit time instead of by a
cross-backend diff hours into a sweep.

The pieces:

* :mod:`repro.lint.engine` — rule registry, file walk, inline
  ``# repro: disable=REPxxx — reason`` suppressions, baseline diffing,
  exit codes;
* :mod:`repro.lint.rules_determinism` — REP101 unseeded RNG, REP102
  wall-clock access, REP103 unordered iteration, REP106 inexact
  accumulation, REP107 mutable defaults, REP108 swallowed exceptions;
* :mod:`repro.lint.rules_contracts` — REP104 pickle-safety of registry
  entries and pool initializers, REP105 conformance of
  ``ResultSink``/``FaultAdversary``/``ProtocolNode`` implementers;
* :mod:`repro.lint.report` — text and ``--format json`` rendering.

Rules register themselves at import time (:func:`register_rule`), so a
plug-in module imported before :func:`lint_paths` participates like a
built-in.
"""

from .engine import (
    BASELINE_VERSION,
    BaseRule,
    ENGINE_RULE,
    LintReport,
    RULES,
    iter_python_files,
    lint_paths,
    lint_source,
    load_baseline,
    register_rule,
    write_baseline,
)
from .findings import Finding
from .report import JSON_REPORT_VERSION, render_json, render_text, rule_table

# Importing the rule modules registers the built-in rules.
from . import rules_contracts as _rules_contracts  # noqa: F401
from . import rules_determinism as _rules_determinism  # noqa: F401

__all__ = [
    "BASELINE_VERSION",
    "BaseRule",
    "ENGINE_RULE",
    "Finding",
    "JSON_REPORT_VERSION",
    "LintReport",
    "RULES",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_text",
    "rule_table",
    "write_baseline",
]
