"""Determinism rules: the discipline the equivalence suite enforces at run
time, checked at the AST.

Every guarantee this reproduction makes — bit-identical results across
the serial/pooled/spawn/sharded backends, resumable checkpoints —
reduces to a handful of source-level invariants: all randomness flows
from seeded per-label RNG streams (REP101), no wall-clock reading can
reach a result path (REP102), nothing iterates an unordered collection
into an ordered effect (REP103), exact accumulators stay exact (REP106),
no mutable default aliases state across calls (REP107), and no worker
swallows the exception that would have explained a diverging sweep
(REP108).  A violation caught here costs seconds; the same violation
caught by a flaky cross-backend diff costs a sweep.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from .context import ModuleContext
from .engine import BaseRule, register_rule
from .findings import Finding

__all__ = [
    "ExactAccumulationRule",
    "MutableDefaultRule",
    "SwallowedExceptionRule",
    "UnorderedIterationRule",
    "UnseededRngRule",
    "WallClockRule",
]


def _iter_scopes(tree: ast.Module):
    """Yield ``(scope_node, body)`` for the module and every function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _walk_scope(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope's statements without descending into nested functions.

    Nested functions are their own scopes (yielded separately by
    :func:`_iter_scopes`); descending into them from the enclosing scope
    would visit — and report — their nodes twice.
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


@register_rule
class UnseededRngRule(BaseRule):
    """REP101 — randomness must come from seeded, private RNG streams."""

    id = "REP101"
    title = "unseeded RNG"
    rationale = (
        "the global `random` module and seedless `random.Random()` draw "
        "from interpreter-wide state; runs stop being a function of the "
        "experiment seed and serial/parallel equivalence breaks"
    )

    #: Module-level functions of :mod:`random` that draw from (or mutate)
    #: the shared global generator.
    _GLOBAL_DRAWS = {
        "random.betavariate",
        "random.choice",
        "random.choices",
        "random.expovariate",
        "random.gauss",
        "random.getrandbits",
        "random.randint",
        "random.random",
        "random.randrange",
        "random.sample",
        "random.seed",
        "random.shuffle",
        "random.uniform",
    }

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            target = context.dotted_name(node.func)
            if target in self._GLOBAL_DRAWS:
                yield self.finding(
                    context,
                    node,
                    f"{target}() draws from the process-global RNG; draw "
                    "from a seeded per-label stream (repro.core.rng."
                    "derive_seed -> random.Random(seed)) instead",
                )
            elif target == "random.Random" and not node.args and not node.keywords:
                yield self.finding(
                    context,
                    node,
                    "random.Random() without a seed is seeded from the OS; "
                    "pass a derive_seed(...)-derived seed so the stream is "
                    "a function of the experiment seed",
                )


@register_rule
class WallClockRule(BaseRule):
    """REP102 — wall-clock reads live in ``repro.obs``, nowhere else."""

    id = "REP102"
    title = "wall-clock access"
    rationale = (
        "time.time/perf_counter/datetime.now readings are nondeterministic; "
        "outside the injectable-clock layer (repro.obs Stopwatch/span) they "
        "can leak into result paths and break bit-equivalence"
    )

    _CLOCKS = {
        "datetime.date.today",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.time",
        "time.time_ns",
    }

    def applies_to(self, display_path: str) -> bool:
        # repro.obs *is* the injectable-clock allowlist: the one layer
        # allowed to touch real clocks, everything else injects them.
        return "repro/obs/" not in display_path

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            target = context.dotted_name(node.func)
            if target in self._CLOCKS:
                yield self.finding(
                    context,
                    node,
                    f"{target}() outside repro.obs: time elapsed intervals "
                    "with repro.obs.Stopwatch (injectable clock) or wrap the "
                    "region in repro.obs.span(...)",
                )


def _is_unordered_expr(node: ast.AST, dotted) -> bool:
    """Whether an expression evaluates to a set/frozenset (syntactically)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted(node.func) in {"set", "frozenset"}
    return False


def _unordered_names(body: List[ast.stmt], dotted) -> Set[str]:
    """Names bound (exactly once, to a set expression) in this scope."""
    bound: Dict[str, int] = {}
    unordered: Set[str] = set()
    for sub in _walk_scope(body):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            target = sub.targets[0]
            if isinstance(target, ast.Name):
                bound[target.id] = bound.get(target.id, 0) + 1
                if _is_unordered_expr(sub.value, dotted):
                    unordered.add(target.id)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            target = sub.target
            if isinstance(target, ast.Name):
                bound[target.id] = bound.get(target.id, 0) + 1
    # A name rebound more than once may no longer hold the set; stay
    # conservative and only track single-assignment names.
    return {name for name in unordered if bound.get(name) == 1}


@register_rule
class UnorderedIterationRule(BaseRule):
    """REP103 — never iterate a set into an ordered effect."""

    id = "REP103"
    title = "unordered iteration"
    rationale = (
        "set/frozenset iteration order depends on hashes and insertion "
        "history; feeding it into message emission, result accumulation or "
        "any ordered output makes runs diverge between backends"
    )

    #: Order-independent reducers that may safely consume a set directly.
    _SAFE_CONSUMERS = {"all", "any", "frozenset", "len", "max", "min", "set", "sorted"}
    #: Order-*dependent* converters: the produced sequence fixes an order.
    _ORDERING_CONSUMERS = {"enumerate", "iter", "list", "reversed", "tuple"}

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        dotted = context.dotted_name
        for scope, body in _iter_scopes(context.tree):
            tracked = _unordered_names(body, dotted)

            def unordered(node: ast.AST) -> bool:
                if _is_unordered_expr(node, dotted):
                    return True
                return isinstance(node, ast.Name) and node.id in tracked

            for node in _walk_scope(body):
                if isinstance(node, ast.For) and unordered(node.iter):
                    yield self.finding(
                        context,
                        node.iter,
                        "iterating a set/frozenset: order is not "
                        "deterministic across processes; iterate "
                        "sorted(...) (or keep a list/dict alongside the "
                        "set)",
                    )
                elif isinstance(node, ast.ListComp):
                    # A list comprehension fixes an order; set/dict
                    # comprehensions and generator expressions stay lazy or
                    # unordered and are judged at their consumer instead.
                    for generator in node.generators:
                        if unordered(generator.iter):
                            yield self.finding(
                                context,
                                generator.iter,
                                "list comprehension over a set/frozenset "
                                "builds an ordered sequence from unordered "
                                "input; iterate sorted(...) instead",
                            )
                elif isinstance(node, ast.Call):
                    name = dotted(node.func)
                    if (
                        name in self._ORDERING_CONSUMERS
                        and node.args
                        and unordered(node.args[0])
                    ):
                        yield self.finding(
                            context,
                            node,
                            f"{name}() over a set/frozenset fixes a "
                            "nondeterministic order; wrap the argument in "
                            "sorted(...)",
                        )
                    elif (
                        name and name.endswith(".join")
                        and node.args
                        and unordered(node.args[0])
                    ):
                        yield self.finding(
                            context,
                            node,
                            "str.join over a set/frozenset produces a "
                            "nondeterministic string; join sorted(...) "
                            "instead",
                        )


@register_rule
class ExactAccumulationRule(BaseRule):
    """REP106 — streaming accumulators stay exact (and therefore
    order-independent)."""

    id = "REP106"
    title = "inexact accumulation"
    rationale = (
        "float += is neither associative nor commutative, so a float "
        "running sum depends on completion order; the streaming cell "
        "accumulators owe their fold-order independence to exact "
        "int/Fraction arithmetic"
    )

    #: Accumulator attributes that are *documented* as wall-clock (the one
    #: legitimately nondeterministic measurement, excluded from every
    #: equivalence guarantee).
    _EXEMPT_MARKERS = ("wall_clock", "seconds")
    #: Calls whose results are exact by construction.
    _EXACT_CALLS = {"Fraction", "_exact", "fractions.Fraction", "int", "len"}

    def _is_exact(self, node: ast.AST, attr: str, dotted) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, int) and not isinstance(node.value, bool)
        if isinstance(node, ast.Call):
            return dotted(node.func) in self._EXACT_CALLS
        if isinstance(node, ast.Attribute):
            # merge pattern: self.sum_x += other.sum_x — exact by induction.
            return node.attr == attr
        if isinstance(node, ast.BinOp):
            return self._is_exact(node.left, attr, dotted) and self._is_exact(
                node.right, attr, dotted
            )
        if isinstance(node, ast.IfExp):
            return self._is_exact(node.body, attr, dotted) and self._is_exact(
                node.orelse, attr, dotted
            )
        return False

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        dotted = context.dotted_name
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and isinstance(node.target, ast.Attribute)
                and node.target.attr.startswith("sum_")
            ):
                attr = node.target.attr
                if any(marker in attr for marker in self._EXEMPT_MARKERS):
                    continue
                if not self._is_exact(node.value, attr, dotted):
                    yield self.finding(
                        context,
                        node,
                        f"{attr} += <non-exact value>: accumulate "
                        "int/Fraction (wrap floats in _exact()/Fraction) so "
                        "the fold is order-independent",
                    )
            elif isinstance(node, ast.Call) and dotted(node.func) == "sum":
                if node.args and _is_unordered_expr(node.args[0], dotted):
                    yield self.finding(
                        context,
                        node,
                        "sum() over a set/frozenset: float sums depend on "
                        "iteration order; sum sorted(...) or keep exact "
                        "types",
                    )


@register_rule
class MutableDefaultRule(BaseRule):
    """REP107 — no mutable default arguments."""

    id = "REP107"
    title = "mutable default argument"
    rationale = (
        "a mutable default is one shared object across every call — state "
        "leaks between runs and, pickled into a spawn worker, between "
        "processes; default to None and allocate inside"
    )

    _MUTABLE_CALLS = {
        "bytearray",
        "collections.OrderedDict",
        "collections.defaultdict",
        "collections.deque",
        "dict",
        "list",
        "set",
    }

    def _is_mutable(self, node: ast.AST, dotted) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            return dotted(node.func) in self._MUTABLE_CALLS
        return False

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        dotted = context.dotted_name
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default, dotted):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        context,
                        default,
                        f"mutable default argument in {name}(): one object "
                        "is shared across all calls; default to None and "
                        "allocate per call",
                    )


@register_rule
class SwallowedExceptionRule(BaseRule):
    """REP108 — no silently swallowed broad exceptions."""

    id = "REP108"
    title = "swallowed exception"
    rationale = (
        "a bare `except:` (or a broad handler whose body is `pass`) in a "
        "worker or scheduler path turns a diverging run into a silently "
        "wrong sweep; catch narrowly, or record before continuing"
    )

    _BROAD = {"BaseException", "Exception"}

    def _names(self, node: Optional[ast.AST], dotted) -> List[str]:
        if node is None:
            return []
        if isinstance(node, ast.Tuple):
            return [name for elt in node.elts for name in self._names(elt, dotted)]
        name = dotted(node)
        return [name] if name else []

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        dotted = context.dotted_name
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    context,
                    node,
                    "bare `except:` also catches KeyboardInterrupt/"
                    "SystemExit; name the exceptions this path expects",
                )
                continue
            body_is_silent = all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in node.body
            )
            if body_is_silent and any(
                name in self._BROAD for name in self._names(node.type, dotted)
            ):
                yield self.finding(
                    context,
                    node,
                    "broad exception silently swallowed (`except Exception: "
                    "pass`); narrow the type or record the failure before "
                    "continuing",
                )
