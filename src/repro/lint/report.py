"""Render a lint report as text or JSON.

Text output is one ``path:line:col: RULE message`` line per counting
finding (the compiler-error shape editors and CI log scrapers already
understand) plus a summary line.  JSON output is the machine schema the
CI job archives: every finding — including suppressed and baselined ones
— with its rule id, location, message and flags, so downstream tooling
sees the full picture, not just the failures.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .engine import RULES, LintReport
from .findings import Finding

__all__ = ["render_json", "render_text", "rule_table"]

JSON_REPORT_VERSION = 1


def render_text(report: LintReport, *, show_suppressed: bool = False) -> str:
    """The human-facing report: counting findings + a summary line."""
    lines: List[str] = []
    for finding in report.findings:
        if finding.counts:
            lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
        elif show_suppressed and finding.suppressed:
            lines.append(
                f"{finding.location()}: {finding.rule} [suppressed: "
                f"{finding.reason}] {finding.message}"
            )
    counting = len(report.counting)
    summary = (
        f"{counting} finding(s) in {report.files_checked} file(s)"
        f" ({len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine-facing report (``repro-le lint --format json``)."""
    payload: Dict[str, object] = {
        "version": JSON_REPORT_VERSION,
        "files_checked": report.files_checked,
        "findings": [finding.as_dict() for finding in report.findings],
        "summary": {
            "counting": len(report.counting),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def rule_table() -> List[Dict[str, str]]:
    """Rule id/title/rationale rows (``repro-le lint --list-rules``)."""
    return [
        {
            "rule": rule_id,
            "title": RULES[rule_id].title,
            "rationale": RULES[rule_id].rationale,
        }
        for rule_id in sorted(RULES)
    ]
