"""Per-file analysis context shared by every lint rule.

One :class:`ModuleContext` is built per linted file: the parsed AST, an
import map resolving local names back to their dotted origins (so a rule
can recognise ``perf_counter()`` as ``time.perf_counter`` no matter how
it was imported), and the parsed inline suppressions.

Suppression syntax
------------------

::

    risky_call()  # repro: disable=REP102 — lease staleness needs epoch time
    # repro: disable=REP101,REP103 — fixture exercises both rules
    next_line_is_covered()

A suppression on a code line covers that line; a suppression on a
comment-only line covers the next non-blank line.  The justification
after the ``—`` (or ``-``) separator is **mandatory**: a reasonless
suppression suppresses nothing and is itself reported (REP100), so every
silenced finding carries its why in the source.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["ModuleContext", "Suppression", "parse_suppressions"]

#: ``# repro: disable=REP101[,REP102] — justification``.  The separator
#: accepts an em dash, en dash, hyphen(s) or a colon; the justification
#: group is optional here so the parser can *report* its absence.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*disable=\s*(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"\s*(?:(?:[—–:]|-{1,2})\s*(?P<reason>.*))?$"
)


@dataclass
class Suppression:
    """One parsed ``# repro: disable=...`` comment."""

    line: int  #: line the comment sits on (1-based)
    rules: Tuple[str, ...]
    reason: Optional[str]
    #: line the suppression covers (the comment's own line, or the next
    #: code line when the comment stands alone).
    applies_to: int = 0

    @property
    def valid(self) -> bool:
        return bool(self.reason)


def parse_suppressions(lines: List[str]) -> List[Suppression]:
    """Extract every suppression comment from the file's source lines."""
    suppressions: List[Suppression] = []
    for index, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip() or None
        applies_to = index
        if text.lstrip().startswith("#"):
            # Standalone comment: cover the next code line, skipping blank
            # lines and the suppression's own continuation comment lines.
            for offset, following in enumerate(lines[index:], start=index + 1):
                stripped = following.strip()
                if stripped and not stripped.startswith("#"):
                    applies_to = offset
                    break
        suppressions.append(
            Suppression(line=index, rules=rules, reason=reason, applies_to=applies_to)
        )
    return suppressions


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    imports: Dict[str, str] = field(default_factory=dict)
    suppressions: List[Suppression] = field(default_factory=list)

    @classmethod
    def build(cls, path: Path, source: str, display_path: str) -> "ModuleContext":
        tree = ast.parse(source, filename=str(path))
        lines = source.splitlines()
        context = cls(
            path=path,
            display_path=display_path,
            source=source,
            tree=tree,
            lines=lines,
            suppressions=parse_suppressions(lines),
        )
        context._collect_imports()
        return context

    # ------------------------------------------------------------------ #
    # name resolution
    # ------------------------------------------------------------------ #
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = origin
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                prefix = "." * node.level + module
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    origin = f"{prefix}.{alias.name}" if prefix else alias.name
                    self.imports[local] = origin

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve an expression to a dotted origin name, or ``None``.

        ``Name`` nodes resolve through the import map (``pc`` imported as
        ``from time import perf_counter as pc`` resolves to
        ``time.perf_counter``); attribute chains resolve their base the
        same way.  Calls, subscripts and anything dynamic resolve to
        ``None`` — rules must treat unresolvable as "not a match".
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.dotted_name(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def suppression_for(self, line: int, rule: str) -> Optional[Suppression]:
        """The suppression covering ``rule`` at ``line``, valid or not."""
        for suppression in self.suppressions:
            if suppression.applies_to == line and rule in suppression.rules:
                return suppression
        return None
