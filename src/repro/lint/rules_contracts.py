"""Contract rules: the duck-typed interfaces and the pool boundary.

The repo's extension points are deliberately duck-typed — ``ResultSink``
consumers, ``FaultAdversary`` models, ``ProtocolNode`` implementations —
and its registries (``ADVERSARIES``, ``PROTOCOLS``, ``RUNNERS``) ship
their entries across the multiprocessing boundary.  Nothing checks either
contract until a sweep breaks: a sink whose ``emit`` has the wrong arity
dies on the first completed run, a lambda registered as a runner dies
only under ``spawn``.  These rules check both at the AST, where the cost
of being wrong is a lint line instead of a dead sweep.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .context import ModuleContext
from .engine import BaseRule, register_rule
from .findings import Finding

__all__ = ["ContractConformanceRule", "PickleSafetyRule"]


#: Registries whose values cross the pool boundary (pickled into spawn
#: workers or shipped inside task payloads).
_REGISTRIES = {"ADVERSARIES", "PROTOCOLS", "RUNNERS"}

#: ``register_*`` helpers feeding those registries.
_REGISTER_CALLS = {"register_protocol", "register_adversary", "register_runner"}


def _local_defs(tree: ast.Module) -> Set[str]:
    """Names of functions/classes defined at non-module scope."""
    local: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is node:
                    continue
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    local.add(sub.name)
    return local


@register_rule
class PickleSafetyRule(BaseRule):
    """REP104 — everything registered or pool-bound must be picklable."""

    id = "REP104"
    title = "unpicklable registration"
    rationale = (
        "registry entries and pool initializers are pickled into worker "
        "processes under the spawn start method; lambdas, nested functions "
        "and local classes are not picklable, so the sweep dies only when "
        "it first runs on a spawn platform"
    )

    def _offender(self, node: ast.AST, local_defs: Set[str]) -> Optional[str]:
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.Name) and node.id in local_defs:
            return f"locally-defined {node.id!r}"
        return None

    def _check_value(
        self, context: ModuleContext, node: ast.AST, where: str, local_defs: Set[str]
    ) -> Iterator[Finding]:
        offender = self._offender(node, local_defs)
        if offender is not None:
            yield self.finding(
                context,
                node,
                f"{offender} {where} is not picklable under the spawn "
                "start method; use a module-level function or class",
            )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        local_defs = _local_defs(context.tree)
        dotted = context.dotted_name
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    # REGISTRY["name"] = value
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in _REGISTRIES
                    ):
                        yield from self._check_value(
                            context,
                            node.value,
                            f"stored in {target.value.id}",
                            local_defs,
                        )
                    # REGISTRY = {"name": value, ...}
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in _REGISTRIES
                        and isinstance(node.value, ast.Dict)
                    ):
                        for value in node.value.values:
                            yield from self._check_value(
                                context,
                                value,
                                f"stored in {target.id}",
                                local_defs,
                            )
            elif isinstance(node, ast.Call):
                name = dotted(node.func) or ""
                base = name.rsplit(".", maxsplit=1)[-1]
                # REGISTRY.update({...}) / REGISTRY.setdefault(k, v)
                if (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in _REGISTRIES
                    and node.func.attr in {"update", "setdefault"}
                ):
                    registry = node.func.value.id
                    for arg in node.args:
                        values = arg.values if isinstance(arg, ast.Dict) else [arg]
                        for value in values:
                            yield from self._check_value(
                                context, value, f"stored in {registry}", local_defs
                            )
                elif base in _REGISTER_CALLS:
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        yield from self._check_value(
                            context, arg, f"passed to {base}()", local_defs
                        )
                # pool initializer / per-task callables shipped to workers
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        yield from self._check_value(
                            context,
                            keyword.value,
                            "passed as a pool initializer",
                            local_defs,
                        )


#: (method name -> positional arity including self) per duck-typed
#: contract.  ``None`` in the required set means the method is optional;
#: arity is checked whenever the method is defined.
_CONTRACTS: Dict[str, Dict[str, int]] = {
    "ResultSink": {
        "emit": 6,  # (self, spec_name, topology_index, seed_index, result, wall_clock_seconds)
        "close": 1,
        "abort": 1,
    },
    "FaultAdversary": {
        "on_message": 7,  # (self, round, sender, s_port, receiver, r_port, message)
        "node_active": 3,
        "node_crashed": 3,
        "begin_round": 2,
        "attach": 4,
        "describe": 1,
    },
    "ProtocolNode": {
        "step": 3,  # (self, round_index, inbox)
        "quiescent_until": 2,
        "result": 1,
    },
}

#: Methods a *direct* implementer must define (the rest are optional
#: overrides of working defaults).
_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "ProtocolNode": ("step",),
}


def _positional_arity(args: ast.arguments) -> Optional[int]:
    """Positional parameter count, or ``None`` when *args/**kwargs make the
    signature open-ended (duck-typed wrappers get a pass)."""
    if args.vararg is not None or args.kwarg is not None:
        return None
    return len(args.posonlyargs) + len(args.args)


@register_rule
class ContractConformanceRule(BaseRule):
    """REP105 — implementers of the duck-typed contracts match them."""

    id = "REP105"
    title = "contract mismatch"
    rationale = (
        "ResultSink/FaultAdversary/ProtocolNode are duck-typed: a missing "
        "or wrong-arity method is only discovered when the driver first "
        "calls it, typically hours into a sweep; the expected signatures "
        "are static facts the AST can hold against every implementer"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            contracts = []
            for base in node.bases:
                name = context.dotted_name(base) or ""
                tail = name.rsplit(".", maxsplit=1)[-1]
                if tail in _CONTRACTS:
                    contracts.append(tail)
            if not contracts:
                continue
            methods: Dict[str, ast.FunctionDef] = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef)
            }
            is_abstract = self._is_abstract(context, node, methods)
            for contract in contracts:
                yield from self._check_contract(
                    context, node, contract, methods, is_abstract
                )

    def _is_abstract(
        self,
        context: ModuleContext,
        node: ast.ClassDef,
        methods: Dict[str, ast.FunctionDef],
    ) -> bool:
        # An intermediate base (ABC or a class leaving `step` to its own
        # subclasses) is recognised by abstractmethod decorators or an ABC
        # base; requiring `step` of it would flag legitimate hierarchies.
        for base in node.bases:
            name = context.dotted_name(base) or ""
            if name.rsplit(".", maxsplit=1)[-1] in {"ABC", "ABCMeta"}:
                return True
        for method in methods.values():
            for decorator in method.decorator_list:
                name = context.dotted_name(decorator) or ""
                if name.rsplit(".", maxsplit=1)[-1] == "abstractmethod":
                    return True
        return False

    def _check_contract(
        self,
        context: ModuleContext,
        node: ast.ClassDef,
        contract: str,
        methods: Dict[str, ast.FunctionDef],
        is_abstract: bool,
    ) -> Iterator[Finding]:
        expected = _CONTRACTS[contract]
        for required in _REQUIRED.get(contract, ()):
            if required not in methods and not is_abstract:
                yield self.finding(
                    context,
                    node,
                    f"{node.name} subclasses {contract} but does not define "
                    f"{required}(); the contract's required method would "
                    "raise only when the simulator first steps it",
                )
        for name, arity in expected.items():
            method = methods.get(name)
            if method is None:
                continue
            actual = _positional_arity(method.args)
            if actual is not None and actual != arity:
                yield self.finding(
                    context,
                    method,
                    f"{node.name}.{name}() takes {actual} positional "
                    f"parameter(s) but the {contract} contract calls it "
                    f"with {arity}; the mismatch raises at the first call",
                )
        if (
            contract == "ProtocolNode"
            and "quiescent_until" in methods
            and "step" not in methods
        ):
            yield self.finding(
                context,
                methods["quiescent_until"],
                f"{node.name} overrides quiescent_until() without "
                "overriding step(): the quiescence declaration promises "
                "empty-inbox steps are no-ops, which only the class "
                "defining step() can guarantee",
            )
