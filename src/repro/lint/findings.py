"""The unit of lint output: one :class:`Finding` per rule violation.

A finding is produced by a rule, then *annotated* by the engine: an
inline ``# repro: disable=REPxxx — reason`` marks it suppressed, a
baseline file marks it baselined.  Only findings that are neither count
against the exit code, so the three states stay visible in the JSON
export (``repro-le lint --format json``) for tooling that wants the full
picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["Finding"]


@dataclass
class Finding:
    """One rule violation at a source location.

    ``path`` is stored in POSIX form relative to the lint invocation's
    working directory whenever possible, so findings (and therefore
    baseline entries) are stable across machines and checkouts.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Set by the engine when an inline suppression covers this finding.
    suppressed: bool = False
    #: The justification text of the suppression (mandatory in the
    #: suppression syntax, so always non-empty when ``suppressed``).
    reason: Optional[str] = None
    #: Set by the engine when a ``--baseline`` entry absorbs this finding.
    baselined: bool = False

    @property
    def counts(self) -> bool:
        """Whether this finding fails the lint pass."""
        return not self.suppressed and not self.baselined

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, object]:
        """The JSON-export schema: rule id, location, message, flags."""
        record: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }
        if self.reason is not None:
            record["reason"] = self.reason
        return record

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)
