"""The lint engine: rule registry, file walk, suppressions, baseline.

The engine is deliberately small: a rule is any object with an ``id``, a
one-line ``rationale`` and a ``check(context)`` generator — everything
else (discovering files, resolving imports, honouring inline
suppressions, diffing against a baseline, exit codes) lives here, so
adding a rule is ~30 lines in :mod:`repro.lint.rules_determinism` or a
plug-in registered through :func:`register_rule`.

Exit-code contract (what CI keys on):

* ``0`` — every finding is suppressed or baselined (or there are none);
* ``1`` — at least one finding counts;
* ``2`` — usage/configuration error (missing path, bad baseline file),
  raised as :class:`~repro.core.errors.ConfigurationError` and mapped by
  the CLI's normal error path.
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Protocol, Sequence, Tuple

from ..core.errors import ConfigurationError
from .context import ModuleContext
from .findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "BaseRule",
    "ENGINE_RULE",
    "LintReport",
    "LintRule",
    "RULES",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "write_baseline",
]

#: Engine-level diagnostics (parse failures, reasonless suppressions)
#: are reported under this pseudo-rule id so they flow through the same
#: output/baseline machinery as real rules.
ENGINE_RULE = "REP100"

BASELINE_VERSION = 1


class LintRule(Protocol):
    """Structural interface of a rule (duck-typed, like the repo's sinks)."""

    id: str
    title: str
    rationale: str

    def applies_to(self, display_path: str) -> bool: ...

    def check(self, context: ModuleContext) -> Iterator[Finding]: ...


class BaseRule:
    """Convenience base for rules: applies everywhere unless overridden."""

    id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, display_path: str) -> bool:
        return True

    def check(self, context: ModuleContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self, context: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=context.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: Rule id -> rule instance.  Populated by :func:`register_rule` at import
#: time of the rule modules; external plug-ins may register more.
RULES: Dict[str, LintRule] = {}


def register_rule(rule_cls):
    """Class decorator: instantiate and register a rule by its ``id``."""
    rule = rule_cls()
    if not getattr(rule, "id", None):
        raise ConfigurationError(f"lint rule {rule_cls.__name__} has no id")
    if rule.id in RULES:
        raise ConfigurationError(f"duplicate lint rule id {rule.id}")
    RULES[rule.id] = rule
    return rule_cls


@dataclass
class LintReport:
    """The outcome of one lint pass."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def counting(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.counts]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.counting else 0


# --------------------------------------------------------------------------- #
# file discovery
# --------------------------------------------------------------------------- #

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "results"}


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in deterministic order."""
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(f"lint path does not exist: {raw}")
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.startswith(".") for part in candidate.parts):
                continue
            yield candidate


def _display_path(path: Path) -> str:
    """POSIX path relative to the working directory when possible.

    Relative paths keep findings (and baseline entries) portable across
    checkouts; files outside the tree keep their absolute spelling.
    """
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# --------------------------------------------------------------------------- #
# the pass itself
# --------------------------------------------------------------------------- #


def _selected_rules(select: Optional[Iterable[str]]) -> List[LintRule]:
    if select is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    rules = []
    for rule_id in select:
        if rule_id not in RULES:
            raise ConfigurationError(
                f"unknown lint rule {rule_id!r}; available: {sorted(RULES)}"
            )
        rules.append(RULES[rule_id])
    return rules


def _check_module(
    context: ModuleContext, rules: Sequence[LintRule]
) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(context.display_path):
            continue
        findings.extend(rule.check(context))
    # Reasonless suppressions are findings themselves: the justification
    # is the audit trail the suppression syntax exists to capture.
    for suppression in context.suppressions:
        if not suppression.valid:
            findings.append(
                Finding(
                    rule=ENGINE_RULE,
                    path=context.display_path,
                    line=suppression.line,
                    col=0,
                    message=(
                        "suppression without a justification: write "
                        "'# repro: disable="
                        + ",".join(suppression.rules)
                        + " — <reason>' (a reasonless suppression "
                        "suppresses nothing)"
                    ),
                )
            )
    # Apply suppressions (valid ones only).
    for finding in findings:
        suppression = context.suppression_for(finding.line, finding.rule)
        if suppression is not None and suppression.valid:
            finding.suppressed = True
            finding.reason = suppression.reason
    return findings


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one in-memory module (the unit the rule fixtures test)."""
    selected = _selected_rules(rules)
    try:
        context = ModuleContext.build(Path(path), source, path)
    except SyntaxError as error:
        return [
            Finding(
                rule=ENGINE_RULE,
                path=path,
                line=error.lineno or 1,
                col=error.offset or 0,
                message=f"file does not parse: {error.msg}",
            )
        ]
    return sorted(_check_module(context, selected), key=Finding.sort_key)


def lint_paths(
    paths: Sequence[str],
    *,
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Dict[Tuple[str, str, str], int]] = None,
) -> LintReport:
    """Run the lint pass over files/directories and return the report."""
    selected = _selected_rules(rules)
    report = LintReport()
    for path in iter_python_files(paths):
        display = _display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ConfigurationError(f"cannot read {display}: {error}") from error
        try:
            context = ModuleContext.build(path, source, display)
        except SyntaxError as error:
            report.findings.append(
                Finding(
                    rule=ENGINE_RULE,
                    path=display,
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    message=f"file does not parse: {error.msg}",
                )
            )
            report.files_checked += 1
            continue
        report.findings.extend(_check_module(context, selected))
        report.files_checked += 1
    report.findings.sort(key=Finding.sort_key)
    if baseline:
        _apply_baseline(report.findings, baseline)
    return report


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #


def _baseline_key(finding: Finding) -> Tuple[str, str, str]:
    # Line numbers are deliberately not part of the identity: unrelated
    # edits move findings around without making them "new".
    return (finding.rule, finding.path, finding.message)


def _apply_baseline(
    findings: List[Finding], baseline: Dict[Tuple[str, str, str], int]
) -> None:
    budget = Counter(baseline)
    for finding in findings:
        if finding.suppressed:
            continue
        key = _baseline_key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            finding.baselined = True


def load_baseline(path: str) -> Dict[Tuple[str, str, str], int]:
    """Read a baseline file into a ``(rule, path, message) -> count`` map."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ConfigurationError(f"cannot read baseline {path}: {error}") from error
    except ValueError as error:
        raise ConfigurationError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path} has unsupported format (expected version "
            f"{BASELINE_VERSION})"
        )
    counts: Counter = Counter()
    for entry in payload.get("findings", []):
        counts[(entry["rule"], entry["path"], entry["message"])] += 1
    return dict(counts)


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Record the current *counting* findings; returns how many were written.

    Suppressed findings are excluded (their audit trail is inline), so a
    baseline captures exactly the debt ``--baseline`` later tolerates.
    """
    entries = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
        for finding in findings
        if not finding.suppressed
    ]
    entries.sort(key=lambda entry: (entry["path"], entry["line"], entry["rule"]))
    payload = {"version": BASELINE_VERSION, "findings": entries}
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return len(entries)
