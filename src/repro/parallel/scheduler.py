"""Adaptive pool dispatch and work-stealing shard leases.

The static engine dispatched every task through
``pool.imap_unordered(chunksize=1)``: perfect load balance, but one IPC
round-trip per task — ruinous when a grid holds thousands of sub-millisecond
runs — and no recovery when a worker dies mid-task.  This module replaces
that path with two cooperating mechanisms:

**Adaptive dispatch** (:class:`AdaptiveScheduler`).  Tasks are leased to
the pool in a bounded in-flight window of ``apply_async`` batches.  Batch
size adapts to *measured* task cost per (experiment, topology) cell: cheap
tasks are packed until a batch is worth roughly
``target_batch_seconds`` of work (amortising the IPC round-trip),
expensive or not-yet-measured tasks ship alone (preserving load balance).
Every lease carries a deadline (``task_timeout`` × batch size); an expired
lease — a straggling or killed worker — gets its unfinished tasks
re-queued at the front and re-dispatched.  The pool's worker processes are
also watched directly: a worker that vanishes expires every outstanding
lease at once.  Tasks are deterministic functions of (runner, topology,
seed), so a re-dispatched task that *also* completes late on its original
worker produces an identical record; the first completion per task key
wins and duplicates are dropped.  Results are therefore bit-identical to
the serial driver for any batch size, timeout, worker count or
kill schedule — the contract :mod:`tests.test_scheduler` pins down.

**Work-stealing shard leases** (:class:`LeaseDirectory`).  ``--shard i/k``
fixes each job's slice up front, so a straggler job just finishes late.
``--shard auto`` instead partitions the grid into contiguous task-key
blocks (:func:`split_blocks`, many more blocks than jobs) and lets k
concurrent jobs *claim* blocks one at a time from a shared lease
directory next to the checkpoint: fast jobs simply claim more blocks, and
a block whose lease has gone stale (its owner died) is stolen and
re-executed.  Claims are atomic file creation (``O_CREAT | O_EXCL``);
steals replace the stale lease.  Two jobs racing to steal the same block
both execute it — identical deterministic records — and the shard merge
deduplicates, exactly as it already does for overlapping re-runs.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import queue
import time
import traceback
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..analysis.experiments import execute_run
from ..core.errors import ConfigurationError, ReproError
from ..core.simulator import default_backend
from ..election.base import LeaderElectionResult
from ..obs import TaskProfiler, TaskTelemetry, collect_spans
from .sharding import RunTask, split_blocks

__all__ = [
    "DEFAULT_AUTO_BLOCKS",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_TARGET_BATCH_SECONDS",
    "AdaptiveScheduler",
    "DispatchStats",
    "LeaseDirectory",
    "TaskExecutionError",
    "split_blocks",
]

#: Hard cap on the number of tasks packed into one dispatch batch.
DEFAULT_MAX_BATCH = 32
#: A batch of cheap tasks is packed until it is worth about this much
#: estimated work — large enough to amortise an IPC round-trip, small
#: enough that batching never creates stragglers of its own.
DEFAULT_TARGET_BATCH_SECONDS = 0.05
#: How many times one task may be (re-)dispatched before the sweep gives
#: up — a task that keeps losing its worker is killing them.
DEFAULT_MAX_ATTEMPTS = 5
#: How long the parent waits on the completion queue before checking
#: lease deadlines and worker liveness.
DEFAULT_POLL_SECONDS = 0.05
#: Default block count of a ``--shard auto`` split (capped at the grid
#: size); many more blocks than jobs is what makes stealing effective.
DEFAULT_AUTO_BLOCKS = 16
#: A lease untouched for this long belongs to a dead job and may be
#: stolen.  Owners touch their lease after every completed run, so the
#: default only has to beat the cost of one very slow task.
DEFAULT_LEASE_TIMEOUT = 300.0


class TaskExecutionError(ReproError):
    """One run of an experiment grid failed.

    Raised in place of the bare exception that killed the run, with the
    failing (spec, topology, seed) grid coordinates in the message — a
    multiprocessing traceback alone does not say which of ten thousand
    runs died.  The original traceback is appended (exception chaining
    does not survive the worker-to-parent pickle hop).
    """


def _execute_task(task: RunTask) -> Tuple[str, LeaderElectionResult, float]:
    """Pool worker entry point: run one task and return (key, result, time)."""
    try:
        result, elapsed = execute_run(task.runner, task.topology, task.seed)
    except Exception as error:
        adversary = f" under adversary {task.adversary}" if task.adversary else ""
        protocol = f" with protocol {task.protocol}" if task.protocol else ""
        raise TaskExecutionError(
            f"run failed in spec {task.spec_name!r} on topology "
            f"{task.topology.name!r} (grid index {task.topology_index}, "
            f"seed {task.seed}){protocol}{adversary}: "
            f"{type(error).__name__}: {error}\n"
            f"{traceback.format_exc()}"
        ) from error
    return task.key, result, elapsed


class _BatchItem(NamedTuple):
    """One task inside a dispatch batch, with its dispatch attempt (1-based)."""

    task: RunTask
    attempt: int


class _Batch(NamedTuple):
    """A leased unit of pool work, pickled to the worker as one message.

    ``submitted`` is the parent's monotonic stamp at dispatch: each
    task's worker-side start minus it is that task's queue wait (both
    processes share the machine's monotonic clock, and for later tasks
    of a batch the wait honestly includes the batch-mates executed
    ahead of them).
    """

    items: Tuple[_BatchItem, ...]
    submitted: float
    telemetry: bool
    profile: Optional[str]


#: What the worker returns per task; telemetry/profile are ``None`` on
#: the uninstrumented path.
TaskCompletion = Tuple[
    str, LeaderElectionResult, float, Optional[TaskTelemetry], Optional[dict]
]


def _execute_batch(batch: _Batch) -> List[TaskCompletion]:
    """Pool worker entry point: run a leased batch task by task.

    Results are produced by the same :func:`_execute_task` the static
    path uses, so batching can never change a measurement — only when
    and where it happens.
    """
    completions: List[TaskCompletion] = []
    size = len(batch.items)
    for item in batch.items:
        if not batch.telemetry:
            key, result, elapsed = _execute_task(item.task)
            completions.append((key, result, elapsed, None, None))
            continue
        started = time.monotonic()
        task = item.task
        profiler = TaskProfiler() if batch.profile == "cprofile" else None
        with collect_spans() as spans:
            if profiler is not None:
                with profiler:
                    key, result, elapsed = _execute_task(task)
            else:
                key, result, elapsed = _execute_task(task)
        telemetry = TaskTelemetry(
            task_key=key,
            experiment=task.spec_name,
            topology=task.topology.name,
            topology_index=task.topology_index,
            seed=task.seed,
            seed_index=task.seed_index,
            worker=f"pid-{os.getpid()}",
            backend=default_backend(),
            queue_wait_seconds=max(0.0, started - batch.submitted),
            simulate_seconds=spans.total_seconds("simulate"),
            task_seconds=time.monotonic() - started,
            spans=spans.totals(),
            batch_size=size,
            attempt=item.attempt,
        )
        completions.append(
            (key, result, elapsed, telemetry,
             profiler.payload() if profiler is not None else None)
        )
    return completions


@dataclass
class _Lease:
    """One in-flight batch: its tasks and its re-dispatch deadline."""

    items: Tuple[_BatchItem, ...]
    deadline: Optional[float]

    def task_for(self, key: str) -> Optional[RunTask]:
        for item in self.items:
            if item.task.key == key:
                return item.task
        return None


@dataclass
class DispatchStats:
    """Counters of one scheduler's dispatch decisions (for telemetry)."""

    batches: int = 0
    dispatched_tasks: int = 0
    batched_tasks: int = 0
    max_batch_size: int = 0
    redispatched_tasks: int = 0
    worker_restarts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "dispatched_tasks": self.dispatched_tasks,
            "batched_tasks": self.batched_tasks,
            "max_batch_size": self.max_batch_size,
            "redispatched_tasks": self.redispatched_tasks,
            "worker_restarts": self.worker_restarts,
        }


def _validate_timeout(name: str, value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    if math.isnan(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive number, got {value}")
    return float(value)


class AdaptiveScheduler:
    """Cost-adaptive, fault-tolerant dispatch of run tasks onto one pool.

    One scheduler serves one pool for the lifetime of a sweep (an auto-
    sharded job calls :meth:`run` once per claimed block; the cost model
    and the stats persist across calls).  See the module docstring for
    the design; the parameters:

    ``task_timeout``
        per-task lease timeout in seconds (a batch's deadline is the
        timeout times its size).  ``None`` disables deadline-based
        re-dispatch — worker *death* is still detected by watching the
        pool's processes, so a killed worker's tasks recover either way.
    ``max_batch`` / ``target_batch_seconds``
        the batching dials: hard size cap, and how much estimated work
        one batch should carry.  ``max_batch=1`` degenerates to the
        static engine's one-task-per-message dispatch.
    ``max_attempts``
        dispatch attempts per task before the sweep fails.
    """

    def __init__(
        self,
        pool,
        workers: int,
        *,
        telemetry: bool = False,
        profile: Optional[str] = None,
        task_timeout: Optional[float] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        target_batch_seconds: float = DEFAULT_TARGET_BATCH_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self._pool = pool
        self._workers = workers
        self._telemetry = telemetry
        self._profile = profile
        self._task_timeout = _validate_timeout("task_timeout", task_timeout)
        self._max_batch = max_batch
        self._target = target_batch_seconds
        self._max_attempts = max_attempts
        self._poll_seconds = poll_seconds
        #: completions/errors pushed by apply_async callbacks (which run
        #: on the pool's result-handler thread, hence the queue).
        self._completions: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lease_ids = itertools.count()
        #: (spec name, topology index) -> EMA of measured task seconds;
        #: the model that decides batched-vs-singleton dispatch.
        self._cost: Dict[Tuple[str, int], float] = {}
        self._known_pids = self._alive_worker_pids()
        self.stats = DispatchStats()

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def _estimate(self, task: RunTask) -> Optional[float]:
        return self._cost.get((task.spec_name, task.topology_index))

    def _observe_cost(self, task: RunTask, seconds: float) -> None:
        cell = (task.spec_name, task.topology_index)
        previous = self._cost.get(cell)
        self._cost[cell] = (
            seconds if previous is None else 0.5 * previous + 0.5 * seconds
        )

    def _next_batch(self, pending: Deque[_BatchItem]) -> List[_BatchItem]:
        """Pop the next dispatch batch off the front of the task queue.

        Unknown-cost and expensive tasks go alone (a singleton both
        load-balances and *measures* — the first completions teach the
        model); known-cheap tasks are packed until the batch carries
        about ``target_batch_seconds`` of estimated work.
        """
        first = pending.popleft()
        batch = [first]
        estimate = self._estimate(first.task)
        if estimate is None or estimate >= self._target:
            return batch
        total = estimate
        while pending and len(batch) < self._max_batch:
            candidate = pending[0]
            estimate = self._estimate(candidate.task)
            if (
                estimate is None
                or estimate >= self._target
                or total + estimate > self._target
            ):
                break
            batch.append(pending.popleft())
            total += estimate
        return batch

    # ------------------------------------------------------------------ #
    # dispatch and fault detection
    # ------------------------------------------------------------------ #
    def _dispatch(
        self, items: Sequence[_BatchItem], leases: Dict[int, _Lease]
    ) -> None:
        now = time.monotonic()
        deadline = (
            now + self._task_timeout * len(items)
            if self._task_timeout is not None
            else None
        )
        lease_id = next(self._lease_ids)
        leases[lease_id] = _Lease(items=tuple(items), deadline=deadline)
        self.stats.batches += 1
        self.stats.dispatched_tasks += len(items)
        if len(items) > 1:
            self.stats.batched_tasks += len(items)
        self.stats.max_batch_size = max(self.stats.max_batch_size, len(items))
        batch = _Batch(tuple(items), now, self._telemetry, self._profile)
        self._pool.apply_async(
            _execute_batch,
            (batch,),
            callback=lambda value, _id=lease_id: self._completions.put(
                ("ok", _id, value)
            ),
            error_callback=lambda error, _id=lease_id: self._completions.put(
                ("error", _id, error)
            ),
        )

    def _alive_worker_pids(self) -> Optional[Set[int]]:
        # The one piece of Pool internals this relies on; when absent
        # (an exotic pool implementation), death detection degrades to
        # lease timeouts alone.
        processes = getattr(self._pool, "_pool", None)
        if processes is None:
            return None
        return {
            process.pid
            for process in processes
            if process.pid is not None and process.is_alive()
        }

    def _requeue(
        self,
        lease: _Lease,
        pending: Deque[_BatchItem],
        done: Set[str],
    ) -> None:
        """Re-queue an expired lease's unfinished tasks at the front."""
        for item in reversed(lease.items):
            if item.task.key in done:
                continue
            attempt = item.attempt + 1
            if attempt > self._max_attempts:
                timeout = (
                    f"per-task timeout {self._task_timeout}s"
                    if self._task_timeout is not None
                    else "worker death"
                )
                raise TaskExecutionError(
                    f"task {item.task.key!r} was dispatched {item.attempt} "
                    f"times without completing ({timeout} each time); a run "
                    f"that repeatedly kills or stalls its worker cannot be "
                    f"retried safely — raise the timeout or investigate the "
                    f"task"
                )
            self.stats.redispatched_tasks += 1
            pending.appendleft(_BatchItem(item.task, attempt))

    def _check_leases(
        self,
        leases: Dict[int, _Lease],
        pending: Deque[_BatchItem],
        done: Set[str],
    ) -> None:
        """Expire overdue leases; a vanished pool worker expires them all.

        The pool does not say which worker holds which lease, so a
        detected death conservatively re-queues everything in flight —
        completions that still arrive from the surviving workers
        deduplicate against the re-runs.
        """
        expire_all = False
        alive = self._alive_worker_pids()
        if alive is not None:
            if self._known_pids is not None and self._known_pids - alive:
                self.stats.worker_restarts += len(self._known_pids - alive)
                expire_all = True
            self._known_pids = alive
        now = time.monotonic()
        for lease_id, lease in list(leases.items()):
            if expire_all or (
                lease.deadline is not None and now >= lease.deadline
            ):
                del leases[lease_id]
                self._requeue(lease, pending, done)

    # ------------------------------------------------------------------ #
    # the dispatch loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        tasks: Sequence[RunTask],
        finish: Callable[
            [str, LeaderElectionResult, float, Optional[TaskTelemetry], Optional[dict]],
            None,
        ],
    ) -> None:
        """Execute ``tasks`` on the pool, calling ``finish`` once per task.

        ``finish`` receives exactly one completion per task key (the
        first; duplicates from re-dispatch races are dropped), in pool
        completion order — the caller's aggregation must be (and is)
        order-independent.
        """
        pending: Deque[_BatchItem] = deque(
            _BatchItem(task, 1) for task in tasks
        )
        expected = len(pending)
        done: Set[str] = set()
        leases: Dict[int, _Lease] = {}
        window = max(2, 2 * self._workers)
        last_check = time.monotonic()
        while len(done) < expected:
            while pending and len(leases) < window:
                self._dispatch(self._next_batch(pending), leases)
            try:
                kind, lease_id, payload = self._completions.get(
                    timeout=self._poll_seconds
                )
            except queue.Empty:
                self._check_leases(leases, pending, done)
                last_check = time.monotonic()
                continue
            if kind == "error":
                # A task raised (deterministically — retries would fail
                # identically): propagate with its grid coordinates.
                raise payload
            lease = leases.pop(lease_id, None)
            for key, result, elapsed, telemetry, profile_payload in payload:
                if key in done:
                    continue  # late duplicate of a re-dispatched task
                done.add(key)
                if lease is not None:
                    task = lease.task_for(key)
                    if task is not None:
                        self._observe_cost(task, elapsed)
                finish(key, result, elapsed, telemetry, profile_payload)
            if time.monotonic() - last_check >= self._poll_seconds:
                self._check_leases(leases, pending, done)
                last_check = time.monotonic()


# --------------------------------------------------------------------------- #
# work-stealing shard leases (--shard auto)
# --------------------------------------------------------------------------- #


class LeaseDirectory:
    """Filesystem claim/steal coordination of a ``--shard auto`` sweep.

    Lives at ``<checkpoint base>.leases/`` — the one shared location the
    concurrent jobs already have (they share the checkpoint directory).
    Per block ``i`` of ``n``:

    * ``block<i>of<n>.lease`` — created atomically (``O_CREAT|O_EXCL``)
      by the claiming job and touched after every completed run (the
      heartbeat).  A lease untouched for ``lease_timeout`` seconds with
      no done marker belongs to a dead job and is *stolen* (atomically
      replaced) by the next job that scans it.
    * ``block<i>of<n>.done`` — written once the block's checkpoint is
      published; a done block is never claimed again.

    A steal can race a slow-but-alive owner; both then execute the block
    and publish identical deterministic records, which the shard merge
    deduplicates.  Stealing trades a little duplicated work for never
    waiting on a straggler — the point of ``--shard auto``.
    """

    def __init__(
        self,
        base: Union[str, Path],
        block_count: int,
        *,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        owner: Optional[str] = None,
    ) -> None:
        if block_count < 1:
            raise ConfigurationError(
                f"block count must be >= 1, got {block_count}"
            )
        if math.isnan(lease_timeout) or lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be a positive number of seconds, "
                f"got {lease_timeout}"
            )
        base = Path(base)
        self.directory = base.with_name(f"{base.stem}.leases")
        self.block_count = block_count
        self.lease_timeout = lease_timeout
        self.owner = owner if owner is not None else f"pid-{os.getpid()}"
        self.claimed = 0
        self.stolen = 0
        self.directory.mkdir(parents=True, exist_ok=True)

    def lease_path(self, index: int) -> Path:
        return self.directory / f"block{index}of{self.block_count}.lease"

    def done_path(self, index: int) -> Path:
        return self.directory / f"block{index}of{self.block_count}.done"

    def is_done(self, index: int) -> bool:
        return self.done_path(index).exists()

    def claim_next(self) -> Optional[Tuple[int, bool]]:
        """Claim the next available block; ``(index, stolen)`` or ``None``.

        Scans blocks in index order: skips done blocks and live leases,
        claims unleased blocks, steals stale ones.  ``None`` means every
        block is either done or actively leased by a live job — this
        job's work is over (the merge, not the job, waits for the rest).
        """
        for index in range(self.block_count):
            if self.is_done(index):
                continue
            claim = self._try_claim(index)
            if claim is not None:
                return claim
        return None

    def _try_claim(self, index: int) -> Optional[Tuple[int, bool]]:
        path = self.lease_path(index)
        content = json.dumps({"owner": self.owner}, sort_keys=True)
        try:
            descriptor = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                # repro: disable=REP102 — lease staleness compares against
                # st_mtime, which is epoch wall-clock by definition; never
                # enters any result path
                age = time.time() - path.stat().st_mtime
            except OSError:
                # The lease vanished between exists and stat: its block
                # just completed or the owner released it; rescan later.
                return None
            if age < self.lease_timeout or self.is_done(index):
                return None
            # Stale lease and no done marker: the owner died mid-block.
            # Steal by atomic replacement — of two racing thieves, both
            # "win" and execute identical deterministic work.
            temp = path.with_name(f"{path.name}.{os.getpid()}.steal")
            temp.write_text(content, encoding="utf-8")
            os.replace(temp, path)
            self.claimed += 1
            self.stolen += 1
            return index, True
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(content)
        self.claimed += 1
        return index, False

    def heartbeat(self, index: int) -> None:
        """Refresh the lease's mtime so live blocks are never stolen."""
        try:
            os.utime(self.lease_path(index))
        except OSError:
            # The lease was stolen out from under us (we were presumed
            # dead); keep going — our records are identical to the
            # thief's and the merge deduplicates.
            pass

    def mark_done(self, index: int) -> None:
        """Publish the done marker (atomically) after the block's
        checkpoint is on disk."""
        done = self.done_path(index)
        temp = done.with_name(f"{done.name}.{os.getpid()}.tmp")
        temp.write_text(
            json.dumps({"owner": self.owner}, sort_keys=True), encoding="utf-8"
        )
        os.replace(temp, done)

    def summary(self) -> Dict[str, int]:
        """Lease counters for telemetry (and the CLI's closing line)."""
        return {
            "blocks": self.block_count,
            "leases_claimed": self.claimed,
            "leases_stolen": self.stolen,
        }
