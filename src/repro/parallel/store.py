"""Append-only JSONL checkpoint store.

:class:`~repro.parallel.checkpoint.CheckpointStore` rewrites the whole
JSON file on every flush — O(N) per flush, O(N²) file I/O over a sweep
that checkpoints as it goes.  Harmless at thousands of runs, ruinous at
millions.  :class:`JsonlCheckpointStore` keeps the same interface, the
same deterministic task keys and the same atomic-publish discipline, but
appends **one line per completed run**:

* line 1 is a header (``{"kind": "checkpoint", "format": "jsonl", ...}``)
  identifying the format;
* every further line is ``{"key": <task key>, "record": {...}}`` — the
  exact record :func:`~repro.parallel.checkpoint.result_to_record`
  produces, so restore/merge semantics are unchanged.

A flush appends only the runs completed since the last flush: O(new
records), independent of how many are already on disk.  A sweep killed
mid-append leaves at most one truncated trailing line, which the loader
drops (those runs simply re-execute); every earlier line is intact.

**Legacy transparency.**  ``load`` sniffs the format: a whole-file JSON
checkpoint written by the rewrite store loads transparently and is
migrated to JSONL on the first flush, so old checkpoints resume into the
new store with nothing re-executed.  **Compaction** bounds the file when
records are superseded (re-added keys, ``compact=True`` stripping
per-node payloads): once enough dead lines accumulate, the next flush
rewrites the file atomically — sorted by key, so a fully-compacted store
is byte-deterministic.

**Staged mode** exists for the work-stealing shard path, where a stolen
block can briefly have *two* jobs writing it.  A staged store appends to
a writer-unique ``<path>.<pid>.partial`` sidecar (incremental durability
without interleaving two writers' lines in one file) and
:meth:`~JsonlCheckpointStore.publish` atomically replaces the real path
with the full contents once the block completes; ``load`` folds in any
leftover partials from a dead job, so a thief resumes the victim's
partial progress instead of redoing the whole block.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..core.errors import ConfigurationError
from ..obs import span
from .checkpoint import CheckpointStore, compact_record

__all__ = ["JSONL_FORMAT", "JsonlCheckpointStore"]

JSONL_FORMAT = "jsonl"
JSONL_FORMAT_VERSION = 1
_HEADER_KIND = "checkpoint"


def _header_line() -> str:
    return json.dumps(
        {
            "format": JSONL_FORMAT,
            "kind": _HEADER_KIND,
            "version": JSONL_FORMAT_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _record_line(key: str, record: Dict[str, object]) -> str:
    # Always compact separators: a JSONL record must be one line.
    return json.dumps(
        {"key": key, "record": record}, sort_keys=True, separators=(",", ":")
    )


def _is_jsonl_header(line: str) -> bool:
    try:
        payload = json.loads(line)
    except ValueError:
        return False
    return (
        isinstance(payload, dict)
        and payload.get("kind") == _HEADER_KIND
        and payload.get("format") == JSONL_FORMAT
    )


class JsonlCheckpointStore(CheckpointStore):
    """Drop-in :class:`CheckpointStore` with append-only JSONL persistence.

    Same constructor, same ``load``/``add``/``flush``/``compact``
    surface, same throttled-flush discipline — only the file format and
    the flush cost change.  See the module docstring for the format, the
    legacy migration and the staged mode.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        flush_interval_seconds: float = 1.0,
        compact: bool = False,
        staged: bool = False,
    ) -> None:
        super().__init__(
            path, flush_interval_seconds=flush_interval_seconds, compact=compact
        )
        self._staged = staged
        #: (key, record) completions not yet appended to disk
        self._pending: List[Tuple[str, Dict[str, object]]] = []
        #: superseded lines sitting in the file (duplicate keys, compacted
        #: records); when they outnumber the live records the next flush
        #: rewrites instead of appending
        self._dead_lines = 0
        #: force the next flush to be an atomic whole-file rewrite —
        #: set by legacy migration and :meth:`compact`
        self._needs_rewrite = False
        self._appended_since_rewrite = False

    # ------------------------------------------------------------------ #
    # loading (format sniff + tolerant JSONL parse)
    # ------------------------------------------------------------------ #
    def load(self) -> Dict[str, Dict[str, object]]:
        if self._loaded:
            return self._runs
        self._loaded = True
        with span("checkpoint.load"):
            if self.path.exists():
                self._load_file(self.path, tolerate_trailing=True)
            if self._staged:
                # Fold in partials left by writers of this path — ours
                # from a previous life, or a dead job's whose block we
                # are stealing.  Their records are deterministic re-runs
                # of the same tasks, so merge order cannot matter.
                for partial in sorted(self.path.parent.glob(f"{self.path.name}.*.partial")):
                    self._load_file(partial, tolerate_trailing=True, jsonl_only=True)
        if self.compact_records:
            self.compact()
        return self._runs

    def _load_file(
        self, path: Path, *, tolerate_trailing: bool, jsonl_only: bool = False
    ) -> None:
        text = path.read_text(encoding="utf-8")
        lines = text.split("\n")
        if not jsonl_only and not _is_jsonl_header(lines[0] if lines else ""):
            self._load_legacy(path, text)
            return
        parsed = 0
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except ValueError as error:
                if tolerate_trailing and number == len(lines):
                    # A writer died mid-append; drop the torn line (its
                    # runs re-execute) and keep everything before it.
                    self._needs_rewrite = True
                    self._dirty = True
                    continue
                raise ConfigurationError(
                    f"checkpoint {path} line {number} is not valid JSON "
                    f"({error}); the file is corrupt — delete or move it "
                    f"to start from scratch"
                ) from error
            if not isinstance(payload, dict):
                raise ConfigurationError(
                    f"checkpoint {path} line {number} is not a JSON object"
                )
            if payload.get("kind") == _HEADER_KIND:
                version = payload.get("version")
                if version != JSONL_FORMAT_VERSION:
                    raise ConfigurationError(
                        f"checkpoint {path} has JSONL format version "
                        f"{version!r}; this build reads version "
                        f"{JSONL_FORMAT_VERSION}"
                    )
                continue
            try:
                key = payload["key"]
                record = payload["record"]
            except KeyError as error:
                raise ConfigurationError(
                    f"checkpoint {path} line {number} is missing the "
                    f"{error.args[0]!r} field"
                ) from error
            if key in self._runs:
                self._dead_lines += 1
            self._runs[str(key)] = dict(record)
            parsed += 1
        if path != self.path:
            # Records recovered from a partial are not in the real file
            # yet; make sure they end up there even if no new run is
            # ever added (publish/flush must persist them).
            self._dirty = True
            self._needs_rewrite = True

    def _load_legacy(self, path: Path, text: str) -> None:
        """Read a whole-file JSON checkpoint written by the rewrite store."""
        from .checkpoint import FORMAT_VERSION

        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ConfigurationError(
                f"checkpoint {path} is neither a JSONL checkpoint nor valid "
                f"JSON ({error}); delete or move it to start the sweep from "
                f"scratch"
            ) from error
        if not isinstance(payload, dict) or "runs" not in payload:
            raise ConfigurationError(
                f"checkpoint {path} is valid JSON but not a checkpoint "
                f"(no 'runs' table)"
            )
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"checkpoint {path} has format version {version!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        self._runs.update(payload.get("runs", {}))
        # Migrate on the next flush: one last whole-file write, after
        # which every flush is an append.
        self._needs_rewrite = True
        self._dirty = True

    # ------------------------------------------------------------------ #
    # writing (append by default, atomic rewrite when compacting)
    # ------------------------------------------------------------------ #
    def add(self, key: str, record: Dict[str, object]) -> None:
        self.load()
        if self.compact_records:
            record = compact_record(record)
        existing = self._runs.get(key)
        if existing == record:
            return  # identical re-measurement: nothing new to persist
        if existing is not None:
            self._dead_lines += 1
        self._runs[key] = record
        self._pending.append((key, record))
        self._dirty = True
        if time.monotonic() - self._last_flush >= self.flush_interval_seconds:
            self.flush()

    def compact(self) -> int:
        compacted = super().compact()
        if compacted:
            # Superseded full records are dead lines in the file; force
            # the next flush to rewrite rather than append-after.
            self._needs_rewrite = True
            self._pending = [
                (key, self._runs[key]) for key, _ in self._pending
            ]
        return compacted

    def _compaction_due(self) -> bool:
        return self._dead_lines > max(64, len(self._runs))

    def flush(self) -> None:
        if not self._dirty and (self._staged or self.path.exists()):
            return
        target = self._partial_path() if self._staged else self.path
        with span("checkpoint.flush"):
            if not self._staged and (self._needs_rewrite or self._compaction_due()):
                self._rewrite(self.path)
            else:
                self._append(target)
        self._dirty = False
        self._last_flush = time.monotonic()

    def publish(self) -> None:
        """Atomically publish a staged store's full contents to its path.

        Rewrites ``path`` from the in-memory table (everything loaded
        plus everything added) and removes every partial sidecar —
        including a dead previous writer's, whose records were folded in
        by ``load``.  Called once per completed work-stealing block; a
        no-op for non-staged stores beyond an ordinary flush.
        """
        self.load()
        if not self._staged:
            self.flush()
            return
        with span("checkpoint.flush"):
            self._rewrite(self.path)
            for partial in self.path.parent.glob(f"{self.path.name}.*.partial"):
                try:
                    partial.unlink()
                except OSError:
                    pass
        self._dirty = False
        self._last_flush = time.monotonic()

    def _partial_path(self) -> Path:
        return self.path.with_name(f"{self.path.name}.{os.getpid()}.partial")

    def _append(self, target: Path) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        write_header = not target.exists() or target.stat().st_size == 0
        with open(target, "a", encoding="utf-8") as handle:
            if write_header:
                handle.write(_header_line() + "\n")
            for key, record in self._pending:
                handle.write(_record_line(key, record) + "\n")
        self._pending = []
        self._appended_since_rewrite = True

    def _rewrite(self, target: Path) -> None:
        """One atomic whole-file write: header + live records sorted by key."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(_header_line() + "\n")
            for key in sorted(self._runs):
                handle.write(_record_line(key, self._runs[key]) + "\n")
        os.replace(temp, target)
        self._pending = []
        self._dead_lines = 0
        self._needs_rewrite = False
        self._appended_since_rewrite = False
