"""The parallel experiment engine: a pool-backed, streaming ``run_experiment``.

Execution model
---------------

The engine expands every spec into per-(topology, seed) :class:`~repro.parallel.sharding.RunTask`
units in the parent process (seeds fixed at expansion time), dispatches the
tasks to a ``multiprocessing`` pool with ``chunksize=1`` for load balance,
and *streams* every completed run into per-cell
:class:`~repro.analysis.streaming.CellAggregate` accumulators (plus any
caller-supplied sinks) the moment it arrives — no backend retains the full
run list, so memory is O(cells), not O(runs × nodes).

Determinism guarantees
----------------------

* **Scheduling-independent results.**  Each task's seed is decided before
  the pool exists, and the cell aggregates use exact arithmetic (see
  :mod:`repro.analysis.streaming`), so the assembled cells are identical
  for any worker count, start method, or completion order.  Only
  wall-clock readings differ from a serial run.
* **Checkpoint-transparent results.**  Completed runs are persisted via
  :class:`~repro.parallel.checkpoint.CheckpointStore`; a resumed sweep
  replays the stored runs and computes the same cells an uninterrupted
  sweep would (per-node diagnostic payloads may be dropped if they are not
  JSON-encodable).
* **Shard-transparent results.**  ``shard=(i, k)`` restricts execution to
  a deterministic round-robin slice of the grid and persists it to a
  per-shard checkpoint plus a shard manifest; merging the k shard
  checkpoints (:func:`~repro.parallel.checkpoint.merge_shard_checkpoints`)
  and replaying yields cells bit-identical to an unsharded sweep.
* **Profile consistency.**  Expansion profiles are computed in the parent
  with the same cache-and-compute-on-demand policy as the serial driver.

Workers receive their tasks by pickling, so spec runners must be
importable module-level callables (see :mod:`repro.analysis.runners`);
lambdas and closures only work with the in-process backend.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..analysis.experiments import (
    ExperimentResult,
    ExperimentSpec,
    cell_from_aggregate,
    execute_run,
    resolve_profile,
)
from ..analysis.streaming import (
    CellAggregatingSink,
    CollectingSink,
    ResultSink,
    abort_sinks,
)
from ..core.errors import ConfigurationError, ReproError
from ..core.simulator import BACKENDS, backend_scope, default_backend, set_default_backend
from ..election.base import LeaderElectionResult
from ..graphs.properties import ExpansionProfile
from ..obs import (
    ProfileAggregate,
    Stopwatch,
    TaskProfiler,
    TaskTelemetry,
    TelemetrySink,
    collect_spans,
    span,
    validate_profiler,
)
from .checkpoint import (
    CheckpointStore,
    ShardManifest,
    manifest_path,
    result_from_record,
    result_to_record,
    shard_checkpoint_path,
)
from .sharding import RunTask, expand_run_tasks, select_shard, validate_shard

__all__ = ["TaskExecutionError", "run_parallel_experiment", "run_experiments"]


class TaskExecutionError(ReproError):
    """One run of an experiment grid failed.

    Raised in place of the bare exception that killed the run, with the
    failing (spec, topology, seed) grid coordinates in the message — a
    multiprocessing traceback alone does not say which of ten thousand
    runs died.  The original traceback is appended (exception chaining
    does not survive the worker-to-parent pickle hop).
    """


def _execute_task(task: RunTask) -> Tuple[str, LeaderElectionResult, float]:
    """Pool worker entry point: run one task and return (key, result, time)."""
    try:
        result, elapsed = execute_run(task.runner, task.topology, task.seed)
    except Exception as error:
        adversary = f" under adversary {task.adversary}" if task.adversary else ""
        protocol = f" with protocol {task.protocol}" if task.protocol else ""
        raise TaskExecutionError(
            f"run failed in spec {task.spec_name!r} on topology "
            f"{task.topology.name!r} (grid index {task.topology_index}, "
            f"seed {task.seed}){protocol}{adversary}: "
            f"{type(error).__name__}: {error}\n"
            f"{traceback.format_exc()}"
        ) from error
    return task.key, result, elapsed


class _TimedTask(NamedTuple):
    """A task plus its telemetry context, pickled to the worker as one unit.

    ``submitted`` is the parent's monotonic stamp at dispatch: worker
    start minus submit is the task's queue wait (both processes share the
    machine's monotonic clock).  ``profile`` rides along so the opt-in
    profiler needs no pool-initializer state of its own.
    """

    task: RunTask
    submitted: float
    profile: Optional[str]


def _execute_timed_task(
    timed: _TimedTask,
) -> Tuple[str, LeaderElectionResult, float, TaskTelemetry, Optional[dict]]:
    """Telemetry-path worker entry point: run one task, measure everything.

    Wraps :func:`_execute_task` (results are produced by the identical
    code either way) in a per-task span collector, so the ``"simulate"``
    span inside :func:`~repro.analysis.experiments.execute_run` — and any
    deeper spans — are captured per task and shipped home in the
    :class:`~repro.obs.TaskTelemetry`.  The parent fills the record's
    fold/checkpoint timings before emitting it.
    """
    started = time.monotonic()
    task = timed.task
    profiler = TaskProfiler() if timed.profile == "cprofile" else None
    with collect_spans() as spans:
        if profiler is not None:
            with profiler:
                key, result, elapsed = _execute_task(task)
        else:
            key, result, elapsed = _execute_task(task)
    telemetry = TaskTelemetry(
        task_key=key,
        experiment=task.spec_name,
        topology=task.topology.name,
        topology_index=task.topology_index,
        seed=task.seed,
        seed_index=task.seed_index,
        worker=f"pid-{os.getpid()}",
        backend=default_backend(),
        queue_wait_seconds=max(0.0, started - timed.submitted),
        simulate_seconds=spans.total_seconds("simulate"),
        task_seconds=time.monotonic() - started,
        spans=spans.totals(),
    )
    return key, result, elapsed, telemetry, (
        profiler.payload() if profiler is not None else None
    )


def run_parallel_experiment(
    spec: ExperimentSpec,
    *,
    workers: int = 1,
    checkpoint: Optional[Union[str, Path]] = None,
    checkpoint_compact: bool = False,
    start_method: Optional[str] = None,
    profiles: Optional[Dict[str, ExpansionProfile]] = None,
    keep_results: bool = False,
    derive_seeds: bool = False,
    base_seed: Optional[int] = None,
    shard: Optional[Tuple[int, int]] = None,
    sinks: Sequence[ResultSink] = (),
    backend: str = "auto",
    telemetry: Optional[TelemetrySink] = None,
    profile: Optional[str] = None,
) -> ExperimentResult:
    """Parallel drop-in for :func:`repro.analysis.experiments.run_experiment`."""
    return run_experiments(
        [spec],
        workers=workers,
        checkpoint=checkpoint,
        checkpoint_compact=checkpoint_compact,
        start_method=start_method,
        profiles=profiles,
        keep_results=keep_results,
        derive_seeds=derive_seeds,
        base_seed=base_seed,
        shard=shard,
        sinks=sinks,
        backend=backend,
        telemetry=telemetry,
        profile=profile,
    )[0]


def run_experiments(
    specs: Sequence[ExperimentSpec],
    *,
    workers: int = 1,
    checkpoint: Optional[Union[str, Path]] = None,
    checkpoint_compact: bool = False,
    start_method: Optional[str] = None,
    profiles: Optional[Dict[str, ExpansionProfile]] = None,
    keep_results: bool = False,
    derive_seeds: bool = False,
    base_seed: Optional[int] = None,
    shard: Optional[Tuple[int, int]] = None,
    sinks: Sequence[ResultSink] = (),
    backend: str = "auto",
    telemetry: Optional[TelemetrySink] = None,
    profile: Optional[str] = None,
) -> List[ExperimentResult]:
    """Run several specs through one worker pool and stream per-cell aggregates.

    Pooling the specs' tasks together keeps workers busy even when one
    algorithm or topology dominates the cost (the benchmarks' suites are
    highly skewed).  ``derive_seeds`` switches every cell to an independent
    deterministic seed derived from ``base_seed`` (see
    :func:`repro.parallel.sharding.derive_cell_seed`); leave it off for
    results identical to the serial backend's.  ``checkpoint_compact``
    stores checkpoint records without per-node diagnostic payloads (and as
    compact JSON) so resume files of very large grids stay small.

    ``shard=(i, k)`` runs only shard ``i`` of a deterministic ``k``-way
    round-robin split of the pooled task list.  A sharded run requires a
    ``checkpoint``: its completed runs persist to the shard's own file
    (``<base>.shard<i>of<k>.json``) and the job (idempotently) writes the
    sweep's shard manifest next to it, so ``k`` independent jobs — on as
    many machines — cover the grid without contending on one file and are
    folded back together by
    :func:`repro.parallel.checkpoint.merge_shard_checkpoints`.  The
    returned results contain only the cells this shard touched (cells
    with zero local runs are omitted).

    ``keep_results`` composes a
    :class:`~repro.analysis.streaming.CollectingSink` that retains every
    run on its cell (the one opt-in path whose memory grows with the
    grid); ``sinks`` are additional caller-supplied
    :class:`~repro.analysis.streaming.ResultSink` objects fed each run —
    fresh or restored from a checkpoint — as it completes.

    ``backend`` selects the simulator core (``"auto"``, ``"round"`` or
    ``"event"`` — see :class:`repro.core.simulator.SynchronousSimulator`)
    for every run of the sweep, including pool workers under any start
    method.  It never enters task keys, so checkpoints written under one
    backend resume cleanly under the other.

    ``telemetry`` attaches a :class:`repro.obs.TelemetrySink`: every
    freshly-executed task ships a timing record back from its worker
    (queue wait, simulate time, span totals, worker id), the parent adds
    fold/checkpoint durations, and the sink streams the records to JSONL
    while building the end-of-sweep utilization/straggler summary.  The
    sink's lifecycle (close on success, abort on failure) is owned here —
    do not also pass it in ``sinks``.  Telemetry never enters task keys
    or seeds, so results are bit-identical with it on or off; with it
    off this function's hot path is unchanged.  ``profile`` (one of
    :data:`repro.obs.PROFILERS`; requires ``telemetry``) runs each task
    under an in-worker profiler and reports pool-wide hotspots through
    the telemetry summary.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown simulator backend {backend!r}: expected one of {BACKENDS}"
        )
    if profile is not None:
        if telemetry is None:
            raise ConfigurationError(
                "profile= requires telemetry=: hotspots are reported "
                "through the telemetry summary"
            )
        try:
            validate_profiler(profile)
        except ValueError as error:
            raise ConfigurationError(str(error)) from error
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError(
            f"experiment specs must have unique names, got {names}"
        )
    if shard is not None:
        shard_index, shard_count = validate_shard(*shard)
        if checkpoint is None:
            raise ConfigurationError(
                "a sharded sweep requires a checkpoint: shard results must "
                "be persisted to be merged (pass checkpoint=/--checkpoint)"
            )

    per_spec_tasks: List[List[RunTask]] = [
        expand_run_tasks(spec, derive_seeds=derive_seeds, base_seed=base_seed)
        for spec in specs
    ]
    all_tasks: List[RunTask] = [task for tasks in per_spec_tasks for task in tasks]
    #: task key -> (spec name, topology index, seed index): the routing
    #: table that folds completed runs into their cells in any order.
    route: Dict[str, Tuple[str, int, int]] = {
        task.key: (task.spec_name, task.topology_index, task.seed_index)
        for task in all_tasks
    }

    if shard is not None:
        manifest = ShardManifest.plan(
            checkpoint, [task.key for task in all_tasks], shard_count
        )
        manifest.write(manifest_path(checkpoint))
        my_tasks = select_shard(all_tasks, shard_index, shard_count)
        store_path: Optional[Union[str, Path]] = shard_checkpoint_path(
            checkpoint, shard_index, shard_count
        )
    else:
        my_tasks = all_tasks
        store_path = checkpoint

    store = (
        CheckpointStore(store_path, compact=checkpoint_compact)
        if store_path is not None
        else None
    )

    aggregates = CellAggregatingSink()
    collector = CollectingSink() if keep_results else None
    all_sinks: List[ResultSink] = [aggregates]
    if collector is not None:
        all_sinks.append(collector)
    all_sinks.extend(sinks)
    if telemetry is not None:
        # Last in the fan-out so its (no-op) emit never delays real sinks;
        # close/abort lifecycle is shared with every other sink.
        all_sinks.append(telemetry)
        telemetry.begin_sweep(
            workers=workers,
            backend=backend,
            profile=profile,
            shard=f"{shard[0]}/{shard[1]}" if shard is not None else None,
        )
    profile_aggregate = ProfileAggregate() if profile is not None else None

    def consume(key: str, result: LeaderElectionResult, elapsed: float) -> None:
        spec_name, topology_index, seed_index = route[key]
        for sink in all_sinks:
            sink.emit(spec_name, topology_index, seed_index, result, elapsed)

    try:
        if telemetry is not None:
            # The driver-side collector catches the parent's own spans
            # (restore, checkpoint flush I/O) for the closing record; the
            # stopwatch is the sweep's elapsed wall-clock, the denominator
            # of every utilization figure.
            with collect_spans() as driver_spans:
                stopwatch = Stopwatch()
                results, restored = _execute_and_assemble(
                    specs,
                    my_tasks,
                    consume,
                    store=store,
                    workers=workers,
                    start_method=start_method,
                    sharded=shard is not None,
                    profiles=profiles,
                    aggregates=aggregates,
                    collector=collector,
                    backend=backend,
                    telemetry=telemetry,
                    profile=profile,
                    profile_aggregate=profile_aggregate,
                )
                elapsed_seconds = stopwatch.elapsed()
            telemetry.record_driver(
                elapsed_seconds=elapsed_seconds,
                restored=restored,
                spans=driver_spans.totals(),
                profile_hotspots=(
                    profile_aggregate.hotspots()
                    if profile_aggregate is not None and profile_aggregate
                    else None
                ),
            )
        else:
            results, _ = _execute_and_assemble(
                specs,
                my_tasks,
                consume,
                store=store,
                workers=workers,
                start_method=start_method,
                sharded=shard is not None,
                profiles=profiles,
                aggregates=aggregates,
                collector=collector,
                backend=backend,
                telemetry=None,
                profile=None,
                profile_aggregate=None,
            )
    except BaseException:
        # A run raised: abort the sinks — an export sink (JsonlSink)
        # flushes the records of the runs that did complete without
        # publishing an incomplete sweep.
        abort_sinks(all_sinks)
        raise
    for sink in all_sinks:
        sink.close()
    return results


def _execute_and_assemble(
    specs,
    my_tasks,
    consume,
    *,
    store,
    workers,
    start_method,
    sharded,
    profiles,
    aggregates,
    collector,
    backend,
    telemetry,
    profile,
    profile_aggregate,
) -> Tuple[List[ExperimentResult], int]:
    """Run the pending tasks and assemble per-spec results (see caller).

    Returns ``(results, restored)`` where ``restored`` counts the runs
    replayed from the checkpoint rather than executed — those carry no
    per-task telemetry (nothing was measured), so the telemetry summary
    reports them separately.
    """
    completed_keys = set()
    if store is not None:
        task_keys = {task.key for task in my_tasks}
        with span("restore"):
            for key, record in store.load().items():
                if key in task_keys:
                    result, elapsed = result_from_record(record)
                    consume(key, result, elapsed)
                    completed_keys.add(key)

    def finish(key, result, elapsed, task_telemetry, profile_payload) -> None:
        # Parent-side epilogue of one telemetry-path task: stamp the two
        # phases that happen here (checkpoint append, sink fan-out) onto
        # the worker's record, then emit it.
        checkpoint_started = time.perf_counter()
        if store is not None:
            store.add(key, result_to_record(result, elapsed))
        fold_started = time.perf_counter()
        consume(key, result, elapsed)
        task_telemetry.checkpoint_seconds = fold_started - checkpoint_started
        task_telemetry.fold_seconds = time.perf_counter() - fold_started
        if profile_payload is not None:
            profile_aggregate.merge(profile_payload)
        telemetry.emit_telemetry(task_telemetry)

    pending = [task for task in my_tasks if task.key not in completed_keys]
    try:
        if workers > 1 and len(pending) > 1:
            context = multiprocessing.get_context(start_method)
            # set_default_backend as initializer: the backend choice must
            # reach the workers under "spawn" too, where the parent's
            # in-process scope stack does not survive the fork-less hop.
            with context.Pool(
                processes=min(workers, len(pending)),
                initializer=set_default_backend,
                initargs=(backend,),
            ) as pool:
                # imap_unordered: runs are checkpointed and folded into
                # their cells the moment they finish, never queued behind
                # a slow head-of-line task (the aggregates are exact, so
                # completion order is irrelevant to the final cells).
                if telemetry is not None:
                    # A generator, so each task's submit stamp is taken
                    # when the pool's feeder dispatches it, not when the
                    # sweep starts — queue wait measures pool backlog.
                    timed = (
                        _TimedTask(task, time.monotonic(), profile)
                        for task in pending
                    )
                    for key, result, elapsed, tel, prof in pool.imap_unordered(
                        _execute_timed_task, timed, chunksize=1
                    ):
                        finish(key, result, elapsed, tel, prof)
                else:
                    for key, result, elapsed in pool.imap_unordered(
                        _execute_task, pending, chunksize=1
                    ):
                        if store is not None:
                            store.add(key, result_to_record(result, elapsed))
                        consume(key, result, elapsed)
        else:
            with backend_scope(backend):
                for task in pending:
                    # Same entry point as the pool workers, so failures
                    # carry the same grid-coordinate context either way.
                    if telemetry is not None:
                        key, result, elapsed, tel, prof = _execute_timed_task(
                            _TimedTask(task, time.monotonic(), profile)
                        )
                        finish(key, result, elapsed, tel, prof)
                    else:
                        key, result, elapsed = _execute_task(task)
                        if store is not None:
                            store.add(key, result_to_record(result, elapsed))
                        consume(key, result, elapsed)
    finally:
        # Sharded jobs flush even with nothing pending: a shard whose
        # round-robin slice is empty (grid smaller than k) must still
        # leave its (empty) checkpoint file behind, or the merge would
        # report the fully-executed split as missing a shard.
        if store is not None and (pending or sharded):
            store.flush()

    profiles = dict(profiles or {})
    results: List[ExperimentResult] = []
    for spec in specs:
        experiment = ExperimentResult(name=spec.name)
        for topology_index, topology in enumerate(spec.topologies):
            aggregate = aggregates.aggregate_for(spec.name, topology_index)
            if aggregate is None:
                # Possible only under sharding: none of this cell's runs
                # landed in our shard slice.
                continue
            experiment.cells.append(
                cell_from_aggregate(
                    topology,
                    aggregate,
                    profile=resolve_profile(topology, profiles, spec.collect_profile),
                    results=(
                        collector.results_for(spec.name, topology_index)
                        if collector is not None
                        else None
                    ),
                    protocol=spec.protocol_token(),
                )
            )
        results.append(experiment)
    return results, len(completed_keys)
