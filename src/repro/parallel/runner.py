"""The parallel experiment engine: a pool-backed, streaming ``run_experiment``.

Execution model
---------------

The engine expands every spec into per-(topology, seed) :class:`~repro.parallel.sharding.RunTask`
units in the parent process (seeds fixed at expansion time), dispatches the
tasks to a ``multiprocessing`` pool, and *streams* every completed run into
per-cell :class:`~repro.analysis.streaming.CellAggregate` accumulators
(plus any caller-supplied sinks) the moment it arrives — no backend
retains the full run list, so memory is O(cells), not O(runs × nodes).

Dispatch is **adaptive** by default (see
:class:`~repro.parallel.scheduler.AdaptiveScheduler`): a bounded in-flight
window of ``apply_async`` batches whose size tracks measured task cost —
cheap tasks are batched to amortize the IPC round-trip, expensive tasks
ship alone for load balance — with fault-tolerant re-dispatch when a
worker dies or a task exceeds ``task_timeout``.  ``dispatch="static"``
keeps the original one-task-per-message ``imap_unordered(chunksize=1)``
path (it is also the benchmark baseline the adaptive engine is measured
against).

Determinism guarantees
----------------------

* **Scheduling-independent results.**  Each task's seed is decided before
  the pool exists, and the cell aggregates use exact arithmetic (see
  :mod:`repro.analysis.streaming`), so the assembled cells are identical
  for any worker count, start method, dispatch mode, batch size, or
  completion order — including completions duplicated by fault-recovery
  re-dispatch, which are deduplicated by task key.  Only wall-clock
  readings differ from a serial run.
* **Checkpoint-transparent results.**  Completed runs are persisted via
  the append-only :class:`~repro.parallel.store.JsonlCheckpointStore`
  (which reads legacy whole-file JSON checkpoints transparently; pass
  ``checkpoint_format="json"`` for the old rewrite store); a resumed
  sweep replays the stored runs and computes the same cells an
  uninterrupted sweep would (per-node diagnostic payloads may be dropped
  if they are not JSON-encodable).
* **Shard-transparent results.**  ``shard=(i, k)`` restricts execution to
  a deterministic round-robin slice of the grid and persists it to a
  per-shard checkpoint plus a shard manifest; ``shard="auto"`` instead
  lets any number of concurrent jobs claim contiguous task blocks from a
  lease directory, stealing stale blocks from dead jobs.  Either way,
  merging the shard checkpoints
  (:func:`~repro.parallel.checkpoint.merge_shard_checkpoints`) and
  replaying yields cells bit-identical to an unsharded sweep.
* **Profile consistency.**  Expansion profiles are computed in the parent
  with the same cache-and-compute-on-demand policy as the serial driver.

Workers receive their tasks by pickling, so spec runners must be
importable module-level callables (see :mod:`repro.analysis.runners`);
lambdas and closures only work with the in-process backend.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..analysis.experiments import (
    ExperimentResult,
    ExperimentSpec,
    cell_from_aggregate,
    resolve_profile,
    warn_keep_results,
)
from ..analysis.streaming import (
    CellAggregatingSink,
    CollectingSink,
    ResultSink,
    abort_sinks,
)
from ..core.errors import ConfigurationError
from ..core.simulator import BACKENDS, backend_scope, default_backend, set_default_backend
from ..election.base import LeaderElectionResult
from ..graphs.properties import ExpansionProfile
from ..obs import (
    ProfileAggregate,
    Stopwatch,
    TaskProfiler,
    TaskTelemetry,
    TelemetrySink,
    collect_spans,
    span,
    validate_profiler,
)
from .checkpoint import (
    CheckpointStore,
    ShardManifest,
    manifest_path,
    result_from_record,
    result_to_record,
    shard_checkpoint_path,
)
from .scheduler import (
    DEFAULT_AUTO_BLOCKS,
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_BATCH,
    AdaptiveScheduler,
    LeaseDirectory,
    TaskExecutionError,
    _execute_task,
    _validate_timeout,
)
from .sharding import (
    AUTO_SHARD,
    RunTask,
    expand_run_tasks,
    select_shard,
    split_blocks,
    validate_shard,
)
from .store import JsonlCheckpointStore

__all__ = [
    "CHECKPOINT_FORMATS",
    "DISPATCH_MODES",
    "TaskExecutionError",
    "run_parallel_experiment",
    "run_experiments",
]

#: Dispatch strategies of the pool engine (see module docstring).
DISPATCH_MODES = ("adaptive", "static")
#: On-disk checkpoint formats: append-only JSONL (the default) and the
#: legacy whole-file-rewrite JSON store.
CHECKPOINT_FORMATS = ("jsonl", "json")


class _TimedTask(NamedTuple):
    """A task plus its telemetry context, pickled to the worker as one unit.

    ``submitted`` is the parent's monotonic stamp at dispatch: worker
    start minus submit is the task's queue wait (both processes share the
    machine's monotonic clock).  ``profile`` rides along so the opt-in
    profiler needs no pool-initializer state of its own.
    """

    task: RunTask
    submitted: float
    profile: Optional[str]


def _execute_timed_task(
    timed: _TimedTask,
) -> Tuple[str, LeaderElectionResult, float, TaskTelemetry, Optional[dict]]:
    """Telemetry-path worker entry point: run one task, measure everything.

    Wraps :func:`~repro.parallel.scheduler._execute_task` (results are
    produced by the identical code either way) in a per-task span
    collector, so the ``"simulate"`` span inside
    :func:`~repro.analysis.experiments.execute_run` — and any deeper
    spans — are captured per task and shipped home in the
    :class:`~repro.obs.TaskTelemetry`.  The parent fills the record's
    fold/checkpoint timings before emitting it.
    """
    started = time.monotonic()
    task = timed.task
    profiler = TaskProfiler() if timed.profile == "cprofile" else None
    with collect_spans() as spans:
        if profiler is not None:
            with profiler:
                key, result, elapsed = _execute_task(task)
        else:
            key, result, elapsed = _execute_task(task)
    telemetry = TaskTelemetry(
        task_key=key,
        experiment=task.spec_name,
        topology=task.topology.name,
        topology_index=task.topology_index,
        seed=task.seed,
        seed_index=task.seed_index,
        worker=f"pid-{os.getpid()}",
        backend=default_backend(),
        queue_wait_seconds=max(0.0, started - timed.submitted),
        simulate_seconds=spans.total_seconds("simulate"),
        task_seconds=time.monotonic() - started,
        spans=spans.totals(),
    )
    return key, result, elapsed, telemetry, (
        profiler.payload() if profiler is not None else None
    )


#: The unified completion callback: (key, result, elapsed, telemetry,
#: profile payload) — the last two are ``None`` off the telemetry path.
_FinishFn = Callable[
    [str, LeaderElectionResult, float, Optional[TaskTelemetry], Optional[dict]],
    None,
]


class _PoolEngine:
    """One sweep's worker pool and the dispatch strategy driving it.

    The pool is created lazily on the first execute call that actually
    needs one (sized to ``min(workers, first pending count)``) and kept
    for every later call — an auto-sharded job executes one claimed
    block after another through the same pool, and the adaptive
    scheduler's cost model likewise persists across blocks.
    """

    def __init__(
        self,
        *,
        workers: int,
        start_method: Optional[str],
        backend: str,
        dispatch: str,
        telemetry_on: bool,
        profile: Optional[str],
        task_timeout: Optional[float],
        max_batch: int,
    ) -> None:
        self._workers = workers
        self._start_method = start_method
        self._backend = backend
        self._dispatch = dispatch
        self._telemetry_on = telemetry_on
        self._profile = profile
        self._task_timeout = task_timeout
        self._max_batch = max_batch
        self._pool = None
        self._scheduler: Optional[AdaptiveScheduler] = None

    def __enter__(self) -> "_PoolEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None

    def _ensure_pool(self, size_hint: int):
        if self._pool is None:
            context = multiprocessing.get_context(self._start_method)
            # set_default_backend as initializer: the backend choice must
            # reach the workers under "spawn" too, where the parent's
            # in-process scope stack does not survive the fork-less hop.
            self._pool = context.Pool(
                processes=min(self._workers, max(1, size_hint)),
                initializer=set_default_backend,
                initargs=(self._backend,),
            )
        return self._pool

    def execute(self, pending: Sequence[RunTask], finish: _FinishFn) -> None:
        """Run ``pending`` to completion, calling ``finish`` per task."""
        if not pending:
            return
        if self._workers > 1 and (len(pending) > 1 or self._pool is not None):
            pool = self._ensure_pool(len(pending))
            if self._dispatch == "adaptive":
                if self._scheduler is None:
                    self._scheduler = AdaptiveScheduler(
                        pool,
                        self._workers,
                        telemetry=self._telemetry_on,
                        profile=self._profile,
                        task_timeout=self._task_timeout,
                        max_batch=self._max_batch,
                    )
                self._scheduler.run(pending, finish)
            else:
                self._execute_static(pool, pending, finish)
        else:
            self._execute_inline(pending, finish)

    def _execute_static(self, pool, pending, finish: _FinishFn) -> None:
        # The original engine: one task per IPC message, runs folded the
        # moment they finish.  No batching, no re-dispatch — kept both
        # for comparison benchmarks and as the conservative fallback.
        if self._telemetry_on:
            # A generator, so each task's submit stamp is taken when the
            # pool's feeder dispatches it, not when the sweep starts —
            # queue wait measures pool backlog.
            timed = (
                _TimedTask(task, time.monotonic(), self._profile)
                for task in pending
            )
            for key, result, elapsed, tel, prof in pool.imap_unordered(
                _execute_timed_task, timed, chunksize=1
            ):
                finish(key, result, elapsed, tel, prof)
        else:
            for key, result, elapsed in pool.imap_unordered(
                _execute_task, pending, chunksize=1
            ):
                finish(key, result, elapsed, None, None)

    def _execute_inline(self, pending, finish: _FinishFn) -> None:
        with backend_scope(self._backend):
            for task in pending:
                # Same entry point as the pool workers, so failures
                # carry the same grid-coordinate context either way.
                if self._telemetry_on:
                    key, result, elapsed, tel, prof = _execute_timed_task(
                        _TimedTask(task, time.monotonic(), self._profile)
                    )
                    finish(key, result, elapsed, tel, prof)
                else:
                    key, result, elapsed = _execute_task(task)
                    finish(key, result, elapsed, None, None)

    def scheduler_stats(self) -> Optional[Dict[str, int]]:
        """The adaptive scheduler's dispatch counters (``None`` when the
        sweep never went through the scheduler)."""
        if self._scheduler is None:
            return None
        return self._scheduler.stats.as_dict()


class _AutoPlan(NamedTuple):
    """Everything a work-stealing job needs: the shared lease directory,
    the deterministic block partition, and where each block checkpoints."""

    leases: LeaseDirectory
    blocks: List[List[RunTask]]
    block_paths: List[Path]


def run_parallel_experiment(
    spec: ExperimentSpec,
    *,
    workers: int = 1,
    checkpoint: Optional[Union[str, Path]] = None,
    checkpoint_compact: bool = False,
    start_method: Optional[str] = None,
    profiles: Optional[Dict[str, ExpansionProfile]] = None,
    keep_results: bool = False,
    derive_seeds: bool = False,
    base_seed: Optional[int] = None,
    shard=None,
    sinks: Sequence[ResultSink] = (),
    backend: str = "auto",
    telemetry: Optional[TelemetrySink] = None,
    profile: Optional[str] = None,
    dispatch: str = "adaptive",
    task_timeout: Optional[float] = None,
    max_batch: Optional[int] = None,
    lease_timeout: Optional[float] = None,
    checkpoint_format: str = "jsonl",
    checkpoint_flush_interval: Optional[float] = None,
) -> ExperimentResult:
    """Parallel drop-in for :func:`repro.analysis.experiments.run_experiment`."""
    return run_experiments(
        [spec],
        workers=workers,
        checkpoint=checkpoint,
        checkpoint_compact=checkpoint_compact,
        start_method=start_method,
        profiles=profiles,
        keep_results=keep_results,
        derive_seeds=derive_seeds,
        base_seed=base_seed,
        shard=shard,
        sinks=sinks,
        backend=backend,
        telemetry=telemetry,
        profile=profile,
        dispatch=dispatch,
        task_timeout=task_timeout,
        max_batch=max_batch,
        lease_timeout=lease_timeout,
        checkpoint_format=checkpoint_format,
        checkpoint_flush_interval=checkpoint_flush_interval,
    )[0]


def run_experiments(
    specs: Sequence[ExperimentSpec],
    *,
    workers: int = 1,
    checkpoint: Optional[Union[str, Path]] = None,
    checkpoint_compact: bool = False,
    start_method: Optional[str] = None,
    profiles: Optional[Dict[str, ExpansionProfile]] = None,
    keep_results: bool = False,
    derive_seeds: bool = False,
    base_seed: Optional[int] = None,
    shard=None,
    sinks: Sequence[ResultSink] = (),
    backend: str = "auto",
    telemetry: Optional[TelemetrySink] = None,
    profile: Optional[str] = None,
    dispatch: str = "adaptive",
    task_timeout: Optional[float] = None,
    max_batch: Optional[int] = None,
    lease_timeout: Optional[float] = None,
    checkpoint_format: str = "jsonl",
    checkpoint_flush_interval: Optional[float] = None,
) -> List[ExperimentResult]:
    """Run several specs through one worker pool and stream per-cell aggregates.

    Pooling the specs' tasks together keeps workers busy even when one
    algorithm or topology dominates the cost (the benchmarks' suites are
    highly skewed).  ``derive_seeds`` switches every cell to an independent
    deterministic seed derived from ``base_seed`` (see
    :func:`repro.parallel.sharding.derive_cell_seed`); leave it off for
    results identical to the serial backend's.  ``checkpoint_compact``
    stores checkpoint records without per-node diagnostic payloads so
    resume files of very large grids stay small.

    ``dispatch`` selects the pool strategy: ``"adaptive"`` (the default —
    cost-adaptive batching with fault-tolerant re-dispatch, see
    :class:`~repro.parallel.scheduler.AdaptiveScheduler`) or ``"static"``
    (the original ``imap_unordered(chunksize=1)``).  ``task_timeout``
    (adaptive only) bounds one task's lease: an expired lease — straggler
    or dead worker — is re-dispatched; worker *death* is detected and
    recovered even without a timeout.  ``max_batch`` caps the adaptive
    batch size.  Results are bit-identical across all of these knobs.

    ``checkpoint_format`` picks the on-disk store: ``"jsonl"`` (the
    default — append-only, O(new records) per flush, reads legacy JSON
    checkpoints transparently and migrates them on first flush) or
    ``"json"`` (the legacy whole-file rewrite).
    ``checkpoint_flush_interval`` overrides the store's flush throttle
    (seconds between on-disk writes; 0 flushes after every run).

    ``shard=(i, k)`` runs only shard ``i`` of a deterministic ``k``-way
    round-robin split of the pooled task list.  A sharded run requires a
    ``checkpoint``: its completed runs persist to the shard's own file
    (``<base>.shard<i>of<k>.json``) and the job (idempotently) writes the
    sweep's shard manifest next to it, so ``k`` independent jobs — on as
    many machines — cover the grid without contending on one file and are
    folded back together by
    :func:`repro.parallel.checkpoint.merge_shard_checkpoints`.  The
    returned results contain only the cells this shard touched (cells
    with zero local runs are omitted).

    ``shard="auto"`` (or ``(AUTO_SHARD, block_count)``) is the
    work-stealing variant: the grid is split into contiguous task blocks
    and any number of concurrent jobs sharing the checkpoint directory
    claim blocks from a lease directory (``<base>.leases/``) until the
    grid is covered — fast jobs claim more, and a block whose owner died
    (no lease heartbeat for ``lease_timeout`` seconds) is stolen and
    re-executed.  Each block checkpoints to its own shard file named by
    the same manifest ``merge`` already understands.  The returned
    results contain only the cells whose blocks *this* job executed.

    ``keep_results`` composes a
    :class:`~repro.analysis.streaming.CollectingSink` that retains every
    run on its cell (the one opt-in path whose memory grows with the
    grid); ``sinks`` are additional caller-supplied
    :class:`~repro.analysis.streaming.ResultSink` objects fed each run —
    fresh or restored from a checkpoint — as it completes.

    ``backend`` selects the simulator core (``"auto"``, ``"round"`` or
    ``"event"`` — see :class:`repro.core.simulator.SynchronousSimulator`)
    for every run of the sweep, including pool workers under any start
    method.  It never enters task keys, so checkpoints written under one
    backend resume cleanly under the other.

    ``telemetry`` attaches a :class:`repro.obs.TelemetrySink`: every
    freshly-executed task ships a timing record back from its worker
    (queue wait, simulate time, span totals, worker id, batch size,
    dispatch attempt), the parent adds fold/checkpoint durations, and the
    sink streams the records to JSONL while building the end-of-sweep
    utilization/straggler summary; the closing driver record carries the
    scheduler's dispatch/lease counters.  The sink's lifecycle (close on
    success, abort on failure) is owned here — do not also pass it in
    ``sinks``.  Telemetry never enters task keys or seeds, so results
    are bit-identical with it on or off; with it off this function's hot
    path is unchanged.  ``profile`` (one of
    :data:`repro.obs.PROFILERS`; requires ``telemetry``) runs each task
    under an in-worker profiler and reports pool-wide hotspots through
    the telemetry summary.
    """
    if keep_results:
        warn_keep_results()
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown simulator backend {backend!r}: expected one of {BACKENDS}"
        )
    if dispatch not in DISPATCH_MODES:
        raise ConfigurationError(
            f"unknown dispatch mode {dispatch!r}: expected one of {DISPATCH_MODES}"
        )
    if checkpoint_format not in CHECKPOINT_FORMATS:
        raise ConfigurationError(
            f"unknown checkpoint format {checkpoint_format!r}: expected one "
            f"of {CHECKPOINT_FORMATS}"
        )
    if task_timeout is not None and dispatch != "adaptive":
        raise ConfigurationError(
            "task_timeout= requires dispatch='adaptive': the static engine "
            "cannot re-dispatch a timed-out task"
        )
    _validate_timeout("task_timeout", task_timeout)
    _validate_timeout("lease_timeout", lease_timeout)
    if max_batch is None:
        max_batch = DEFAULT_MAX_BATCH
    if profile is not None:
        if telemetry is None:
            raise ConfigurationError(
                "profile= requires telemetry=: hotspots are reported "
                "through the telemetry summary"
            )
        try:
            validate_profiler(profile)
        except ValueError as error:
            raise ConfigurationError(str(error)) from error
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError(
            f"experiment specs must have unique names, got {names}"
        )
    auto_shard = False
    auto_blocks: Optional[int] = None
    if shard is not None:
        if isinstance(shard, str):
            from .sharding import parse_shard

            shard = parse_shard(shard)
        if shard[0] == AUTO_SHARD:
            auto_shard = True
            auto_blocks = shard[1]
        else:
            shard_index, shard_count = validate_shard(*shard)
        if checkpoint is None:
            raise ConfigurationError(
                "a sharded sweep requires a checkpoint: shard results must "
                "be persisted to be merged (pass checkpoint=/--checkpoint)"
            )
        if auto_shard and checkpoint_format != "jsonl":
            raise ConfigurationError(
                "shard='auto' requires the JSONL checkpoint format: block "
                "stealing stages appends per writer, which the rewrite "
                "store cannot do"
            )

    per_spec_tasks: List[List[RunTask]] = [
        expand_run_tasks(spec, derive_seeds=derive_seeds, base_seed=base_seed)
        for spec in specs
    ]
    all_tasks: List[RunTask] = [task for tasks in per_spec_tasks for task in tasks]
    #: task key -> (spec name, topology index, seed index): the routing
    #: table that folds completed runs into their cells in any order.
    route: Dict[str, Tuple[str, int, int]] = {
        task.key: (task.spec_name, task.topology_index, task.seed_index)
        for task in all_tasks
    }

    def make_store(path, *, staged: bool = False):
        kwargs: Dict[str, object] = {"compact": checkpoint_compact}
        if checkpoint_flush_interval is not None:
            kwargs["flush_interval_seconds"] = checkpoint_flush_interval
        if checkpoint_format == "jsonl":
            return JsonlCheckpointStore(path, staged=staged, **kwargs)
        return CheckpointStore(path, **kwargs)

    auto: Optional[_AutoPlan] = None
    store = None
    if auto_shard:
        # Work stealing: same manifest/merge machinery as a static split,
        # but with contiguous blocks whose owners are decided at runtime
        # by the lease directory rather than up front.
        keys = [task.key for task in all_tasks]
        block_count = max(1, min(auto_blocks or DEFAULT_AUTO_BLOCKS, len(keys)))
        manifest = ShardManifest.plan_auto(checkpoint, keys, block_count)
        manifest.write(manifest_path(checkpoint))
        my_tasks = all_tasks
        auto = _AutoPlan(
            leases=LeaseDirectory(
                checkpoint,
                block_count,
                lease_timeout=(
                    DEFAULT_LEASE_TIMEOUT if lease_timeout is None else lease_timeout
                ),
            ),
            blocks=split_blocks(all_tasks, block_count),
            block_paths=[
                shard_checkpoint_path(checkpoint, index, block_count)
                for index in range(block_count)
            ],
        )
    elif shard is not None:
        manifest = ShardManifest.plan(
            checkpoint, [task.key for task in all_tasks], shard_count
        )
        manifest.write(manifest_path(checkpoint))
        my_tasks = select_shard(all_tasks, shard_index, shard_count)
        store = make_store(
            shard_checkpoint_path(checkpoint, shard_index, shard_count)
        )
    else:
        my_tasks = all_tasks
        if checkpoint is not None:
            store = make_store(checkpoint)

    aggregates = CellAggregatingSink()
    collector = CollectingSink() if keep_results else None
    all_sinks: List[ResultSink] = [aggregates]
    if collector is not None:
        all_sinks.append(collector)
    all_sinks.extend(sinks)
    if telemetry is not None:
        # Last in the fan-out so its (no-op) emit never delays real sinks;
        # close/abort lifecycle is shared with every other sink.
        all_sinks.append(telemetry)
        if auto_shard:
            shard_label: Optional[str] = AUTO_SHARD
        elif shard is not None:
            shard_label = f"{shard[0]}/{shard[1]}"
        else:
            shard_label = None
        telemetry.begin_sweep(
            workers=workers,
            backend=backend,
            profile=profile,
            shard=shard_label,
        )
    profile_aggregate = ProfileAggregate() if profile is not None else None

    def consume(key: str, result: LeaderElectionResult, elapsed: float) -> None:
        spec_name, topology_index, seed_index = route[key]
        for sink in all_sinks:
            sink.emit(spec_name, topology_index, seed_index, result, elapsed)

    def execute():
        return _execute_and_assemble(
            specs,
            my_tasks,
            consume,
            store=store,
            auto=auto,
            make_store=make_store,
            workers=workers,
            start_method=start_method,
            sharded=shard is not None,
            profiles=profiles,
            aggregates=aggregates,
            collector=collector,
            backend=backend,
            telemetry=telemetry,
            profile=profile,
            profile_aggregate=profile_aggregate,
            dispatch=dispatch,
            task_timeout=task_timeout,
            max_batch=max_batch,
            all_sinks=all_sinks,
        )

    try:
        if telemetry is not None:
            # The driver-side collector catches the parent's own spans
            # (restore, checkpoint flush I/O) for the closing record; the
            # stopwatch is the sweep's elapsed wall-clock, the denominator
            # of every utilization figure.
            with collect_spans() as driver_spans:
                stopwatch = Stopwatch()
                results, restored, scheduler_stats = execute()
                elapsed_seconds = stopwatch.elapsed()
            if auto is not None:
                scheduler_stats = dict(scheduler_stats or {})
                scheduler_stats.update(auto.leases.summary())
            telemetry.record_driver(
                elapsed_seconds=elapsed_seconds,
                restored=restored,
                spans=driver_spans.totals(),
                profile_hotspots=(
                    profile_aggregate.hotspots()
                    if profile_aggregate is not None and profile_aggregate
                    else None
                ),
                scheduler=scheduler_stats,
            )
        else:
            results, _, _ = execute()
    except BaseException:
        # A run raised: abort the sinks — an export sink (JsonlSink)
        # flushes the records of the runs that did complete without
        # publishing an incomplete sweep.
        abort_sinks(all_sinks)
        raise
    for sink in all_sinks:
        sink.close()
    if auto is not None:
        # The job's one operational closing line (to stderr, like the
        # progress sink's): how much of the shared grid it ended up with.
        leases = auto.leases
        print(
            f"shard auto: claimed {leases.claimed}/{leases.block_count} "
            f"block(s) ({leases.stolen} stolen)",
            file=sys.stderr,
        )
    return results


def _execute_and_assemble(
    specs,
    my_tasks,
    consume,
    *,
    store,
    auto: Optional[_AutoPlan],
    make_store,
    workers,
    start_method,
    sharded,
    profiles,
    aggregates,
    collector,
    backend,
    telemetry,
    profile,
    profile_aggregate,
    dispatch,
    task_timeout,
    max_batch,
    all_sinks,
) -> Tuple[List[ExperimentResult], int, Optional[Dict[str, int]]]:
    """Run the pending tasks and assemble per-spec results (see caller).

    Returns ``(results, restored, scheduler_stats)`` where ``restored``
    counts the runs replayed from checkpoints rather than executed —
    those carry no per-task telemetry (nothing was measured), so the
    telemetry summary reports them separately — and ``scheduler_stats``
    is the adaptive scheduler's counter dict (``None`` when every task
    ran inline or through static dispatch).
    """

    def restore(from_store, tasks) -> set:
        """Replay ``tasks``' completed runs out of ``from_store``."""
        completed = set()
        task_keys = {task.key for task in tasks}
        with span("restore"):
            for key, record in from_store.load().items():
                if key in task_keys:
                    result, elapsed = result_from_record(record)
                    consume(key, result, elapsed)
                    completed.add(key)
        return completed

    def make_finish(
        to_store, heartbeat: Optional[Callable[[], None]] = None
    ) -> _FinishFn:
        def finish(key, result, elapsed, task_telemetry, profile_payload):
            # Parent-side epilogue of one task.  On the telemetry path,
            # stamp the two phases that happen here (checkpoint append,
            # sink fan-out) onto the worker's record, then emit it.  The
            # stamps go through the injectable-clock Stopwatch — the same
            # layer every other telemetry timing uses.
            if task_telemetry is not None:
                stopwatch = Stopwatch()
                if to_store is not None:
                    to_store.add(key, result_to_record(result, elapsed))
                task_telemetry.checkpoint_seconds = stopwatch.elapsed()
                stopwatch.restart()
                consume(key, result, elapsed)
                task_telemetry.fold_seconds = stopwatch.elapsed()
                if profile_payload is not None:
                    profile_aggregate.merge(profile_payload)
                telemetry.emit_telemetry(task_telemetry)
            else:
                if to_store is not None:
                    to_store.add(key, result_to_record(result, elapsed))
                consume(key, result, elapsed)
            if heartbeat is not None:
                heartbeat()

        return finish

    restored = 0
    engine = _PoolEngine(
        workers=workers,
        start_method=start_method,
        backend=backend,
        dispatch=dispatch,
        telemetry_on=telemetry is not None,
        profile=profile,
        task_timeout=task_timeout,
        max_batch=max_batch,
    )
    with engine:
        if auto is None:
            completed_keys = restore(store, my_tasks) if store is not None else set()
            restored = len(completed_keys)
            pending = [task for task in my_tasks if task.key not in completed_keys]
            try:
                engine.execute(pending, make_finish(store))
            finally:
                # Sharded jobs flush even with nothing pending: a shard
                # whose round-robin slice is empty (grid smaller than k)
                # must still leave its (empty) checkpoint file behind, or
                # the merge would report the fully-executed split as
                # missing a shard.
                if store is not None and (pending or sharded):
                    store.flush()
        else:
            # Work-stealing loop: claim a block, resume whatever any
            # previous owner persisted (published file and/or a dead
            # job's partial), execute the rest, publish atomically, mark
            # done, repeat until no block is claimable.
            while True:
                claim = auto.leases.claim_next()
                if claim is None:
                    break
                index, _stolen = claim
                block = auto.blocks[index]
                for sink in all_sinks:
                    # Progress sinks can't know the job's total up front
                    # (blocks are claimed at runtime); let them grow it.
                    extend = getattr(sink, "extend_total", None)
                    if extend is not None:
                        extend(len(block))
                block_store = make_store(auto.block_paths[index], staged=True)
                completed_keys = restore(block_store, block)
                restored += len(completed_keys)
                pending = [
                    task for task in block if task.key not in completed_keys
                ]
                engine.execute(
                    pending,
                    make_finish(
                        block_store,
                        heartbeat=lambda i=index: auto.leases.heartbeat(i),
                    ),
                )
                block_store.publish()
                auto.leases.mark_done(index)
        scheduler_stats = engine.scheduler_stats()

    profiles = dict(profiles or {})
    results: List[ExperimentResult] = []
    for spec in specs:
        experiment = ExperimentResult(name=spec.name)
        for topology_index, topology in enumerate(spec.topologies):
            aggregate = aggregates.aggregate_for(spec.name, topology_index)
            if aggregate is None:
                # Possible only under sharding: none of this cell's runs
                # landed in our shard slice (or claimed blocks).
                continue
            experiment.cells.append(
                cell_from_aggregate(
                    topology,
                    aggregate,
                    profile=resolve_profile(topology, profiles, spec.collect_profile),
                    results=(
                        collector.results_for(spec.name, topology_index)
                        if collector is not None
                        else None
                    ),
                    protocol=spec.protocol_token(),
                )
            )
        results.append(experiment)
    return results, restored, scheduler_stats
