"""The parallel experiment engine: a pool-backed ``run_experiment``.

Execution model
---------------

The engine expands every spec into per-(topology, seed) :class:`~repro.parallel.sharding.RunTask`
units in the parent process (seeds fixed at expansion time), dispatches the
tasks to a ``multiprocessing`` pool with ``chunksize=1`` for load balance,
and reassembles :class:`~repro.analysis.experiments.ExperimentCell` records
in grid order with the exact aggregation function the serial backend uses.

Determinism guarantees
----------------------

* **Scheduling-independent results.**  Each task's seed is decided before
  the pool exists, and cells are reassembled by (topology index, seed
  index), so the aggregates are identical for any worker count, start
  method, or completion order.  Only wall-clock readings differ from a
  serial run.
* **Checkpoint-transparent results.**  Completed runs are persisted via
  :class:`~repro.parallel.checkpoint.CheckpointStore`; a resumed sweep
  replays the stored runs and computes the same cells an uninterrupted
  sweep would (per-node diagnostic payloads may be dropped if they are not
  JSON-encodable).
* **Profile consistency.**  Expansion profiles are computed in the parent
  with the same cache-and-compute-on-demand policy as the serial driver.

Workers receive their tasks by pickling, so spec runners must be
importable module-level callables (see :mod:`repro.analysis.runners`);
lambdas and closures only work with the in-process backend.
"""

from __future__ import annotations

import multiprocessing
import traceback
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.experiments import (
    ExperimentResult,
    ExperimentSpec,
    aggregate_cell,
    execute_run,
    resolve_profile,
)
from ..core.errors import ConfigurationError, ReproError
from ..election.base import LeaderElectionResult
from ..graphs.properties import ExpansionProfile
from .checkpoint import CheckpointStore, result_from_record, result_to_record
from .sharding import RunTask, expand_run_tasks

__all__ = ["TaskExecutionError", "run_parallel_experiment", "run_experiments"]

#: key -> (result, wall_clock_seconds)
_Completed = Dict[str, Tuple[LeaderElectionResult, float]]


class TaskExecutionError(ReproError):
    """One run of an experiment grid failed.

    Raised in place of the bare exception that killed the run, with the
    failing (spec, topology, seed) grid coordinates in the message — a
    multiprocessing traceback alone does not say which of ten thousand
    runs died.  The original traceback is appended (exception chaining
    does not survive the worker-to-parent pickle hop).
    """


def _execute_task(task: RunTask) -> Tuple[str, LeaderElectionResult, float]:
    """Pool worker entry point: run one task and return (key, result, time)."""
    try:
        result, elapsed = execute_run(task.runner, task.topology, task.seed)
    except Exception as error:
        adversary = f" under adversary {task.adversary}" if task.adversary else ""
        raise TaskExecutionError(
            f"run failed in spec {task.spec_name!r} on topology "
            f"{task.topology.name!r} (grid index {task.topology_index}, "
            f"seed {task.seed}){adversary}: {type(error).__name__}: {error}\n"
            f"{traceback.format_exc()}"
        ) from error
    return task.key, result, elapsed


def run_parallel_experiment(
    spec: ExperimentSpec,
    *,
    workers: int = 1,
    checkpoint: Optional[Union[str, Path]] = None,
    checkpoint_compact: bool = False,
    start_method: Optional[str] = None,
    profiles: Optional[Dict[str, ExpansionProfile]] = None,
    keep_results: bool = False,
    derive_seeds: bool = False,
    base_seed: Optional[int] = None,
) -> ExperimentResult:
    """Parallel drop-in for :func:`repro.analysis.experiments.run_experiment`."""
    return run_experiments(
        [spec],
        workers=workers,
        checkpoint=checkpoint,
        checkpoint_compact=checkpoint_compact,
        start_method=start_method,
        profiles=profiles,
        keep_results=keep_results,
        derive_seeds=derive_seeds,
        base_seed=base_seed,
    )[0]


def run_experiments(
    specs: Sequence[ExperimentSpec],
    *,
    workers: int = 1,
    checkpoint: Optional[Union[str, Path]] = None,
    checkpoint_compact: bool = False,
    start_method: Optional[str] = None,
    profiles: Optional[Dict[str, ExpansionProfile]] = None,
    keep_results: bool = False,
    derive_seeds: bool = False,
    base_seed: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run several specs through one worker pool and aggregate per spec.

    Pooling the specs' tasks together keeps workers busy even when one
    algorithm or topology dominates the cost (the benchmarks' suites are
    highly skewed).  ``derive_seeds`` switches every cell to an independent
    deterministic seed derived from ``base_seed`` (see
    :func:`repro.parallel.sharding.derive_cell_seed`); leave it off for
    results identical to the serial backend's.  ``checkpoint_compact``
    stores checkpoint records without per-node diagnostic payloads (and as
    compact JSON) so resume files of very large grids stay small.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError(
            f"experiment specs must have unique names, got {names}"
        )

    per_spec_tasks: List[List[RunTask]] = [
        expand_run_tasks(spec, derive_seeds=derive_seeds, base_seed=base_seed)
        for spec in specs
    ]
    all_tasks: List[RunTask] = [task for tasks in per_spec_tasks for task in tasks]

    store = (
        CheckpointStore(checkpoint, compact=checkpoint_compact)
        if checkpoint is not None
        else None
    )
    completed: _Completed = {}
    if store is not None:
        task_keys = {task.key for task in all_tasks}
        for key, record in store.load().items():
            if key in task_keys:
                completed[key] = result_from_record(record)

    pending = [task for task in all_tasks if task.key not in completed]
    try:
        if workers > 1 and len(pending) > 1:
            context = multiprocessing.get_context(start_method)
            with context.Pool(processes=min(workers, len(pending))) as pool:
                # imap_unordered: runs are checkpointed the moment they
                # finish, never queued behind a slow head-of-line task
                # (cells are reassembled by task key below, so completion
                # order is irrelevant).
                for key, result, elapsed in pool.imap_unordered(
                    _execute_task, pending, chunksize=1
                ):
                    completed[key] = (result, elapsed)
                    if store is not None:
                        store.add(key, result_to_record(result, elapsed))
        else:
            for task in pending:
                # Same entry point as the pool workers, so failures carry
                # the same grid-coordinate context either way.
                key, result, elapsed = _execute_task(task)
                completed[key] = (result, elapsed)
                if store is not None:
                    store.add(key, result_to_record(result, elapsed))
    finally:
        if store is not None and pending:
            store.flush()

    profiles = dict(profiles or {})
    results: List[ExperimentResult] = []
    for spec, tasks in zip(specs, per_spec_tasks):
        experiment = ExperimentResult(name=spec.name)
        # expand_run_tasks emits tasks in grid order (topologies outer,
        # seeds inner), so one linear pass buckets them per cell.
        by_topology: List[List[RunTask]] = [[] for _ in spec.topologies]
        for task in tasks:
            by_topology[task.topology_index].append(task)
        for topology_index, topology in enumerate(spec.topologies):
            cell_tasks = by_topology[topology_index]
            runs = [completed[task.key][0] for task in cell_tasks]
            wall_clock = [completed[task.key][1] for task in cell_tasks]
            experiment.cells.append(
                aggregate_cell(
                    topology,
                    runs,
                    wall_clock,
                    profile=resolve_profile(topology, profiles, spec.collect_profile),
                    keep_results=keep_results,
                )
            )
        results.append(experiment)
    return results
