"""Deterministic decomposition of experiment grids into run tasks.

An experiment is a grid of (algorithm, topology, seed) cells.  The parallel
engine schedules work at the granularity of a single :class:`RunTask` — one
``runner(topology, seed)`` invocation — because cells differ wildly in cost
(a deep binary tree costs an order of magnitude more than a hypercube of
the same size) and per-run tasks keep the pool load-balanced.

Determinism is anchored here, *before* any process is spawned:

* every task's seed is fixed at expansion time in the parent process, so
  results never depend on worker count, scheduling order, or start method;
* :func:`derive_cell_seed` derives per-cell seeds from a base seed with the
  process-stable FNV-1a construction of :func:`repro.core.rng.derive_seed`
  (no salted hashing, no OS entropy), so derived grids are reproducible
  across ``fork`` and ``spawn`` and across machines;
* :func:`task_key` gives every task a stable string identity used by the
  checkpoint layer to recognise completed work across interrupted runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, TypeVar

from ..analysis.experiments import ElectionRunner, ExperimentSpec, effective_runner
from ..core.errors import ConfigurationError
from ..core.rng import derive_seed
from ..graphs.topology import Topology

__all__ = [
    "AUTO_SHARD",
    "RunTask",
    "derive_cell_seed",
    "expand_run_tasks",
    "parse_shard",
    "select_shard",
    "shard_round_robin",
    "split_blocks",
    "task_key",
    "topology_fingerprint",
    "validate_shard",
]

#: Sentinel shard index of a work-stealing ``--shard auto`` job: instead
#: of a fixed ``i/k`` slice, the job claims task-key blocks from a lease
#: directory at runtime (see :mod:`repro.parallel.scheduler`).
AUTO_SHARD = "auto"

T = TypeVar("T")


@dataclass(frozen=True)
class RunTask:
    """One schedulable unit of work: a single ``runner(topology, seed)``.

    ``spec_name``/``topology_index``/``seed_index`` locate the task inside
    its experiment grid so the parent can reassemble cells in spec order no
    matter how the pool interleaved execution.
    """

    spec_name: str
    runner: ElectionRunner
    topology: Topology
    topology_index: int
    seed: int
    seed_index: int
    #: structure digest of ``topology``, computed once at expansion time
    #: (hashing the edge/port lists per key access would be quadratic).
    fingerprint: str
    #: stable token of the spec's adversary model ("" without one); part of
    #: the task identity so checkpoints never mix execution models.
    adversary: str = ""
    #: stable token of the spec's protocol configuration ("" for legacy
    #: runner-callable specs); part of the task identity so checkpoints
    #: never mix runs measured under different protocol constants.
    protocol: str = ""

    @property
    def key(self) -> str:
        return task_key(
            self.spec_name,
            self.topology_index,
            self.topology.name,
            self.fingerprint,
            self.seed_index,
            self.seed,
            self.adversary,
            self.protocol,
        )


def topology_fingerprint(topology: Topology) -> str:
    """Structure digest of a topology (see :meth:`Topology.fingerprint`).

    Run identities hash the actual node count, edge list and port
    assignment rather than the display name, which two distinct graph
    instances can share.
    """
    return topology.fingerprint()


def task_key(
    spec_name: str,
    topology_index: int,
    topology_name: str,
    fingerprint: str,
    seed_index: int,
    seed: int,
    adversary: str = "",
    protocol: str = "",
) -> str:
    """Stable checkpoint identity of one run inside an experiment grid.

    The topology's grid *index* and structure *fingerprint* are part of
    the key, not just its name: suites legitimately contain distinct graph
    instances sharing a display name, and a checkpoint resumed against a
    regenerated suite (different graph seed, same names) must re-run
    rather than silently replay results measured on different graphs.

    ``adversary`` (the spec's adversary token, "" for the reliable model)
    keys the execution model the run was measured under, for the same
    reason: a robustness sweep resumed with a different fault model must
    re-run, not replay.

    ``protocol`` (the spec's protocol-configuration token, "" for legacy
    runner-callable specs) keys the protocol constants the run was
    measured under.  It is appended as an extra segment *only when set*,
    so checkpoints written before protocol specs existed keep their task
    keys and still resume.
    """
    key = (
        f"{spec_name}|{topology_index}|{topology_name}|{fingerprint}"
        f"|{seed_index}|{seed}|{adversary}"
    )
    if protocol:
        key += f"|{protocol}"
    return key


def derive_cell_seed(
    base_seed: Optional[int],
    spec_name: str,
    topology_name: str,
    replicate: int,
    *,
    fingerprint: str = "",
) -> int:
    """Derive the seed of one (spec, topology, replicate) cell.

    The derivation is a pure function of its arguments: stable across
    processes, multiprocessing start methods, and Python invocations.  Use
    it to give every cell of a large sweep an independent seed stream
    without coordinating between workers.

    ``fingerprint`` (see :func:`topology_fingerprint`) disambiguates
    distinct graph instances that share a display name; without it, two
    same-named topologies in one grid would receive identical derived
    seeds and their runs would be statistically correlated.
    """
    return derive_seed(
        base_seed, "cell", spec_name, topology_name, fingerprint, replicate
    )


def expand_run_tasks(
    spec: ExperimentSpec,
    *,
    derive_seeds: bool = False,
    base_seed: Optional[int] = None,
) -> List[RunTask]:
    """Flatten a spec into its (topology, seed) run tasks, in grid order.

    With ``derive_seeds=False`` (the default) the tasks use ``spec.seeds``
    verbatim — this is the drop-in mode whose results are identical to the
    serial backend.  With ``derive_seeds=True`` each task's seed is instead
    derived via :func:`derive_cell_seed` from ``base_seed``, giving every
    cell of the grid an independent deterministic seed.
    """
    tasks: List[RunTask] = []
    runner = effective_runner(spec)
    adversary = spec.adversary.token() if spec.adversary is not None else ""
    protocol = spec.protocol_token()
    for topology_index, topology in enumerate(spec.topologies):
        fingerprint = topology_fingerprint(topology)
        for seed_index, seed in enumerate(spec.seeds):
            if derive_seeds:
                seed = derive_cell_seed(
                    base_seed,
                    spec.name,
                    topology.name,
                    seed_index,
                    fingerprint=fingerprint,
                )
            tasks.append(
                RunTask(
                    spec_name=spec.name,
                    runner=runner,
                    topology=topology,
                    topology_index=topology_index,
                    seed=seed,
                    seed_index=seed_index,
                    fingerprint=fingerprint,
                    adversary=adversary,
                    protocol=protocol,
                )
            )
    return tasks


def shard_round_robin(items: Sequence[T], shards: int) -> List[List[T]]:
    """Partition ``items`` into ``shards`` round-robin slices.

    The pool schedules tasks dynamically, but static sharding is useful for
    tests and for distributing a sweep across independent jobs (each shard
    is a deterministic function of the task list and the shard count).
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    buckets: List[List[T]] = [[] for _ in range(shards)]
    for index, item in enumerate(items):
        buckets[index % shards].append(item)
    return buckets


def split_blocks(items: Sequence[T], blocks: int) -> List[List[T]]:
    """Partition ``items`` into ``blocks`` contiguous, near-even ranges.

    The work-stealing counterpart of :func:`shard_round_robin`: a pure
    function of (item order, block count), so every job of a ``--shard
    auto`` split computes the same partition independently.  Contiguous
    ranges (not round-robin) so each block is a *task-key range* in grid
    order, which keeps the per-block checkpoints humanly mappable back
    onto the grid.
    """
    if blocks <= 0:
        raise ValueError(f"blocks must be positive, got {blocks}")
    base, extra = divmod(len(items), blocks)
    out: List[List[T]] = []
    start = 0
    for index in range(blocks):
        size = base + (1 if index < extra else 0)
        out.append(list(items[start:start + size]))
        start += size
    return out


def validate_shard(index: int, count: int) -> Tuple[int, int]:
    """Validate a (shard index, shard count) pair.

    Raised errors are :class:`~repro.core.errors.ConfigurationError` so
    the CLI reports a clean ``error:`` line instead of a traceback when a
    job script passes ``--shard 4/4`` or ``--shard 1/0``.
    """
    if count < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ConfigurationError(
            f"shard index must be in [0, {count}), got {index} "
            f"(shards are numbered 0..k-1 in an i/k split)"
        )
    return index, count


def parse_shard(text: str):
    """Parse a CLI shard specification.

    ``i/k`` — a static split — parses to ``(index, count)``: ``i`` is
    this job's shard (0-based) and ``k`` the total number of jobs
    splitting the grid; ``0/2`` and ``1/2`` together cover exactly the
    tasks of one unsharded sweep.

    ``auto`` (or ``auto/N`` to override the block count) — a
    work-stealing split — parses to ``(AUTO_SHARD, block_count_or_None)``:
    any number of concurrent jobs claim blocks from a lease directory
    until the grid is covered.
    """
    head, sep, tail = text.partition("/")
    if head == AUTO_SHARD:
        if not sep:
            return AUTO_SHARD, None
        try:
            blocks = int(tail)
        except ValueError:
            raise ConfigurationError(
                f"bad shard specification {text!r}; expected auto or auto/N "
                f"with an integer block count"
            ) from None
        if blocks < 1:
            raise ConfigurationError(
                f"shard block count must be >= 1, got {blocks}"
            )
        return AUTO_SHARD, blocks
    if not sep:
        raise ConfigurationError(
            f"bad shard specification {text!r}; expected i/k (e.g. 0/4) "
            f"for a static split, or auto[/N] for work stealing"
        )
    try:
        index, count = int(head), int(tail)
    except ValueError:
        raise ConfigurationError(
            f"bad shard specification {text!r}; i and k must be integers"
        ) from None
    return validate_shard(index, count)


def select_shard(items: Sequence[T], index: int, count: int) -> List[T]:
    """This shard's round-robin slice of ``items``.

    A pure function of (item order, index, count): every job of an
    ``i/k`` split computes the same partition independently, with no
    coordination beyond agreeing on the grid.  Delegates to
    :func:`shard_round_robin` so slice selection and the shard manifest's
    coverage bookkeeping can never disagree on the assignment rule.
    """
    validate_shard(index, count)
    return shard_round_robin(items, count)[index]
