"""JSON checkpointing of completed experiment runs.

Large sweeps die for mundane reasons — a laptop lid, a preempted CI node,
an out-of-memory kill.  The checkpoint layer makes that cheap: every
completed (topology, seed) run is recorded in a JSON file keyed by its
:func:`~repro.parallel.sharding.task_key`, and a restarted sweep loads the
file and only executes the missing tasks.

The stored record round-trips everything the aggregation layer needs —
outcome, metrics (including per-phase breakdowns), rounds, seed and
parameters — so resumed sweeps produce cells identical to uninterrupted
ones.  Per-node protocol results are stored when they are JSON-encodable
and dropped otherwise (they are diagnostic payload, not aggregate input).

For very large grids the per-node payloads dominate the file:
*compaction* (:func:`compact_record`, ``CheckpointStore(compact=True)``,
:meth:`CheckpointStore.compact`) strips them and switches the file to
compact JSON, keeping resume files proportional to the number of runs
rather than to ``runs × nodes``.  Compacted records restore to the same
aggregates as full ones — only per-node diagnostics are gone.

Writes are atomic (write-to-temp + ``os.replace``), so a sweep killed
mid-write leaves the previous consistent checkpoint behind.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..core.errors import ConfigurationError
from ..core.metrics import Metrics, PhaseMetrics
from ..election.base import ElectionOutcome, LeaderElectionResult

__all__ = [
    "CheckpointStore",
    "compact_record",
    "result_to_record",
    "result_from_record",
]

FORMAT_VERSION = 1


def result_to_record(
    result: LeaderElectionResult, wall_clock_seconds: float
) -> Dict[str, object]:
    """Serialise one run to a JSON-encodable checkpoint record."""
    try:
        node_results = json.loads(json.dumps(result.node_results))
    except (TypeError, ValueError):
        node_results = None
    return {
        "wall_clock_seconds": wall_clock_seconds,
        "algorithm": result.algorithm,
        "topology_name": result.topology_name,
        "num_nodes": result.num_nodes,
        "num_edges": result.num_edges,
        "rounds_executed": result.rounds_executed,
        "seed": result.seed,
        "outcome": result.outcome.as_dict(),
        "metrics": result.metrics.as_dict(),
        "parameters": dict(result.parameters),
        "node_results": node_results,
    }


def compact_record(record: Dict[str, object]) -> Dict[str, object]:
    """Strip a record down to what aggregation needs.

    Drops the per-node diagnostic payload (the only unbounded part of a
    record — everything else is O(1) per run).  Restoring a compacted
    record yields a run whose aggregates — outcome, metrics, rounds —
    are identical to the original's.
    """
    compacted = dict(record)
    compacted.pop("node_results", None)
    return compacted


def result_from_record(
    record: Dict[str, object],
) -> Tuple[LeaderElectionResult, float]:
    """Rebuild a run (and its wall-clock reading) from a checkpoint record."""
    outcome_dict = dict(record["outcome"])
    outcome = ElectionOutcome(
        num_leaders=outcome_dict["num_leaders"],
        leader_indices=list(outcome_dict["leader_indices"]),
        candidate_indices=list(outcome_dict["candidate_indices"]),
        unique_leader=outcome_dict["unique_leader"],
        agreement=outcome_dict.get("agreement"),
    )
    metrics_dict = dict(record["metrics"])
    metrics = Metrics(
        rounds=metrics_dict["rounds"],
        messages=metrics_dict["messages"],
        bits=metrics_dict["bits"],
        congest_violations=metrics_dict["congest_violations"],
        dropped_messages=metrics_dict.get("dropped_messages", 0),
        delayed_messages=metrics_dict.get("delayed_messages", 0),
        events=dict(metrics_dict.get("events", {})),
        phases={
            name: PhaseMetrics(**phase)
            for name, phase in metrics_dict.get("phases", {}).items()
        },
    )
    result = LeaderElectionResult(
        algorithm=record["algorithm"],
        topology_name=record["topology_name"],
        num_nodes=record["num_nodes"],
        num_edges=record["num_edges"],
        outcome=outcome,
        metrics=metrics,
        rounds_executed=record["rounds_executed"],
        seed=record["seed"],
        parameters=dict(record.get("parameters", {})),
        node_results=list(record.get("node_results") or []),
    )
    return result, float(record["wall_clock_seconds"])


class CheckpointStore:
    """A JSON file of completed run records, keyed by task key.

    Each flush rewrites the whole file (atomically), so flushes are
    throttled: :meth:`add` writes immediately when the last flush is older
    than ``flush_interval_seconds`` and otherwise only marks the store
    dirty.  Callers flush explicitly at the end of a sweep; an interrupt
    in between loses at most one interval's worth of completed runs
    instead of paying O(n^2) file I/O over a large grid.

    With ``compact=True`` every record is compacted on the way in (see
    :func:`compact_record`) — including records loaded from an existing
    full checkpoint — and the file is written as compact JSON, so very
    large grids keep resume files small.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        flush_interval_seconds: float = 1.0,
        compact: bool = False,
    ) -> None:
        self.path = Path(path)
        self.flush_interval_seconds = flush_interval_seconds
        self.compact_records = compact
        self._runs: Dict[str, Dict[str, object]] = {}
        self._loaded = False
        self._dirty = False
        self._last_flush = float("-inf")

    def load(self) -> Dict[str, Dict[str, object]]:
        """Load (once) and return the completed run records."""
        if not self._loaded:
            self._loaded = True
            if self.path.exists():
                try:
                    payload = json.loads(self.path.read_text(encoding="utf-8"))
                except ValueError as error:
                    raise ConfigurationError(
                        f"checkpoint {self.path} is not valid JSON ({error}); "
                        f"delete or move it to start the sweep from scratch"
                    ) from error
                version = payload.get("version")
                if version != FORMAT_VERSION:
                    raise ConfigurationError(
                        f"checkpoint {self.path} has format version {version!r}; "
                        f"this build reads version {FORMAT_VERSION}"
                    )
                self._runs = dict(payload.get("runs", {}))
                if self.compact_records:
                    self.compact()
        return self._runs

    def __contains__(self, key: str) -> bool:
        return key in self.load()

    def get(self, key: str) -> Optional[Dict[str, object]]:
        return self.load().get(key)

    def add(self, key: str, record: Dict[str, object]) -> None:
        """Record a completed run; flush unless one happened very recently."""
        self.load()
        if self.compact_records:
            record = compact_record(record)
        self._runs[key] = record
        self._dirty = True
        if time.monotonic() - self._last_flush >= self.flush_interval_seconds:
            self.flush()

    def compact(self) -> int:
        """Compact every stored record in place; returns how many shrank.

        Useful for shrinking the checkpoint of an interrupted large sweep
        before archiving or resuming it; the next :meth:`flush` persists
        the compact form.
        """
        compacted = 0
        for key, record in self.load().items():
            slim = compact_record(record)
            if slim != record:
                self._runs[key] = slim
                compacted += 1
        if compacted:
            self._dirty = True
        return compacted

    def flush(self) -> None:
        """Write the store to disk atomically (write-to-temp + replace)."""
        if not self._dirty and self.path.exists():
            return
        payload = {"version": FORMAT_VERSION, "runs": self._runs}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_name(self.path.name + ".tmp")
        if self.compact_records:
            text = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        else:
            text = json.dumps(payload, indent=1, sort_keys=True)
        temp.write_text(text, encoding="utf-8")
        os.replace(temp, self.path)
        self._dirty = False
        self._last_flush = time.monotonic()

    def __len__(self) -> int:
        return len(self.load())
