"""JSON checkpointing of completed experiment runs.

Large sweeps die for mundane reasons — a laptop lid, a preempted CI node,
an out-of-memory kill.  The checkpoint layer makes that cheap: every
completed (topology, seed) run is recorded in a JSON file keyed by its
:func:`~repro.parallel.sharding.task_key`, and a restarted sweep loads the
file and only executes the missing tasks.

The stored record round-trips everything the aggregation layer needs —
outcome, metrics (including per-phase breakdowns), rounds, seed and
parameters — so resumed sweeps produce cells identical to uninterrupted
ones.  Per-node protocol results are stored when they are JSON-encodable
and dropped otherwise (they are diagnostic payload, not aggregate input).

For very large grids the per-node payloads dominate the file:
*compaction* (:func:`compact_record`, ``CheckpointStore(compact=True)``,
:meth:`CheckpointStore.compact`) strips them and switches the file to
compact JSON, keeping resume files proportional to the number of runs
rather than to ``runs × nodes``.  Compacted records restore to the same
aggregates as full ones — only per-node diagnostics are gone.

Writes are atomic (write-to-temp + ``os.replace``), so a sweep killed
mid-write leaves the previous consistent checkpoint behind.

Sharded checkpoints
-------------------

A sweep split across ``k`` independent jobs (``repro-le sweep --shard
i/k``) must not contend on one JSON file, so each shard persists its runs
to its own checkpoint (:func:`shard_checkpoint_path`) and every job
writes the same deterministic *shard manifest* (:class:`ShardManifest`,
an index of the split: shard count, per-shard files and task keys).
:func:`merge_shard_checkpoints` folds the shard files back into a single
checkpoint, validating coverage against the manifest and rejecting
conflicting records for the same task key; the merged file replays
through an ordinary unsharded sweep.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.errors import ConfigurationError
from ..core.metrics import Metrics, PhaseMetrics
from ..election.base import ElectionOutcome, LeaderElectionResult
from ..obs import span

__all__ = [
    "CheckpointStore",
    "ShardManifest",
    "compact_record",
    "manifest_path",
    "merge_shard_checkpoints",
    "result_to_record",
    "result_from_record",
    "shard_checkpoint_path",
]

FORMAT_VERSION = 1
MANIFEST_KIND = "shard-manifest"


def result_to_record(
    result: LeaderElectionResult, wall_clock_seconds: float
) -> Dict[str, object]:
    """Serialise one run to a JSON-encodable checkpoint record."""
    try:
        node_results = json.loads(json.dumps(result.node_results))
    except (TypeError, ValueError):
        node_results = None
    return {
        "wall_clock_seconds": wall_clock_seconds,
        "algorithm": result.algorithm,
        "topology_name": result.topology_name,
        "num_nodes": result.num_nodes,
        "num_edges": result.num_edges,
        "rounds_executed": result.rounds_executed,
        "seed": result.seed,
        "outcome": result.outcome.as_dict(),
        "metrics": result.metrics.as_dict(),
        "parameters": dict(result.parameters),
        "node_results": node_results,
    }


def compact_record(record: Dict[str, object]) -> Dict[str, object]:
    """Strip a record down to what aggregation needs.

    Drops the per-node diagnostic payload (the only unbounded part of a
    record — everything else is O(1) per run).  Restoring a compacted
    record yields a run whose aggregates — outcome, metrics, rounds —
    are identical to the original's.
    """
    compacted = dict(record)
    compacted.pop("node_results", None)
    return compacted


def result_from_record(
    record: Dict[str, object],
) -> Tuple[LeaderElectionResult, float]:
    """Rebuild a run (and its wall-clock reading) from a checkpoint record."""
    outcome_dict = dict(record["outcome"])
    outcome = ElectionOutcome(
        num_leaders=outcome_dict["num_leaders"],
        leader_indices=list(outcome_dict["leader_indices"]),
        candidate_indices=list(outcome_dict["candidate_indices"]),
        unique_leader=outcome_dict["unique_leader"],
        agreement=outcome_dict.get("agreement"),
    )
    metrics_dict = dict(record["metrics"])
    metrics = Metrics(
        rounds=metrics_dict["rounds"],
        messages=metrics_dict["messages"],
        bits=metrics_dict["bits"],
        congest_violations=metrics_dict["congest_violations"],
        dropped_messages=metrics_dict.get("dropped_messages", 0),
        delayed_messages=metrics_dict.get("delayed_messages", 0),
        sent_messages=metrics_dict.get("sent_messages", 0),
        delivered_messages=metrics_dict.get("delivered_messages", 0),
        events=dict(metrics_dict.get("events", {})),
        phases={
            name: PhaseMetrics(**phase)
            for name, phase in metrics_dict.get("phases", {}).items()
        },
    )
    result = LeaderElectionResult(
        algorithm=record["algorithm"],
        topology_name=record["topology_name"],
        num_nodes=record["num_nodes"],
        num_edges=record["num_edges"],
        outcome=outcome,
        metrics=metrics,
        rounds_executed=record["rounds_executed"],
        seed=record["seed"],
        parameters=dict(record.get("parameters", {})),
        node_results=list(record.get("node_results") or []),
    )
    return result, float(record["wall_clock_seconds"])


class CheckpointStore:
    """A JSON file of completed run records, keyed by task key.

    Each flush rewrites the whole file (atomically), so flushes are
    throttled: :meth:`add` writes immediately when the last flush is older
    than ``flush_interval_seconds`` and otherwise only marks the store
    dirty.  Callers flush explicitly at the end of a sweep; an interrupt
    in between loses at most one interval's worth of completed runs
    instead of paying O(n^2) file I/O over a large grid.

    With ``compact=True`` every record is compacted on the way in (see
    :func:`compact_record`) — including records loaded from an existing
    full checkpoint — and the file is written as compact JSON, so very
    large grids keep resume files small.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        flush_interval_seconds: float = 1.0,
        compact: bool = False,
    ) -> None:
        self.path = Path(path)
        # Create missing parent directories up front: an unwritable or
        # misspelled checkpoint directory must fail at store construction,
        # not hours into a sweep when the first flush fires.
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # Fail at construction, not mid-sweep: a negative interval would
        # flush on every add (probably a unit slip), and NaN comparisons
        # are always False, silently disabling throttled flushing.
        if math.isnan(flush_interval_seconds) or flush_interval_seconds < 0:
            raise ConfigurationError(
                f"flush_interval_seconds must be a non-negative number, "
                f"got {flush_interval_seconds}"
            )
        self.flush_interval_seconds = flush_interval_seconds
        self.compact_records = compact
        self._runs: Dict[str, Dict[str, object]] = {}
        self._loaded = False
        self._dirty = False
        self._last_flush = float("-inf")

    def load(self) -> Dict[str, Dict[str, object]]:
        """Load (once) and return the completed run records."""
        if not self._loaded:
            self._loaded = True
            if self.path.exists():
                try:
                    # The load is the resume path's I/O cost; the span
                    # makes it visible in telemetry (no-op when off).
                    with span("checkpoint.load"):
                        payload = json.loads(self.path.read_text(encoding="utf-8"))
                except ValueError as error:
                    raise ConfigurationError(
                        f"checkpoint {self.path} is not valid JSON ({error}); "
                        f"delete or move it to start the sweep from scratch"
                    ) from error
                version = payload.get("version")
                if version != FORMAT_VERSION:
                    raise ConfigurationError(
                        f"checkpoint {self.path} has format version {version!r}; "
                        f"this build reads version {FORMAT_VERSION}"
                    )
                self._runs = dict(payload.get("runs", {}))
                if self.compact_records:
                    self.compact()
        return self._runs

    def __contains__(self, key: str) -> bool:
        return key in self.load()

    def get(self, key: str) -> Optional[Dict[str, object]]:
        return self.load().get(key)

    def add(self, key: str, record: Dict[str, object]) -> None:
        """Record a completed run; flush unless one happened very recently."""
        self.load()
        if self.compact_records:
            record = compact_record(record)
        self._runs[key] = record
        self._dirty = True
        if time.monotonic() - self._last_flush >= self.flush_interval_seconds:
            self.flush()

    def compact(self) -> int:
        """Compact every stored record in place; returns how many shrank.

        Useful for shrinking the checkpoint of an interrupted large sweep
        before archiving or resuming it; the next :meth:`flush` persists
        the compact form.
        """
        compacted = 0
        for key, record in self.load().items():
            slim = compact_record(record)
            if slim != record:
                self._runs[key] = slim
                compacted += 1
        if compacted:
            self._dirty = True
        return compacted

    def flush(self) -> None:
        """Write the store to disk atomically (write-to-temp + replace)."""
        if not self._dirty and self.path.exists():
            return
        # The whole-file rewrite is the checkpoint layer's dominant I/O;
        # the span feeds telemetry's checkpoint-I/O share (no-op when off).
        with span("checkpoint.flush"):
            payload = {"version": FORMAT_VERSION, "runs": self._runs}
            self.path.parent.mkdir(parents=True, exist_ok=True)
            temp = self.path.with_name(self.path.name + ".tmp")
            if self.compact_records:
                text = json.dumps(payload, separators=(",", ":"), sort_keys=True)
            else:
                text = json.dumps(payload, indent=1, sort_keys=True)
            temp.write_text(text, encoding="utf-8")
            os.replace(temp, self.path)
        self._dirty = False
        self._last_flush = time.monotonic()

    def __len__(self) -> int:
        return len(self.load())


# --------------------------------------------------------------------------- #
# sharded checkpoints: per-shard files + a deterministic manifest
# --------------------------------------------------------------------------- #


def shard_checkpoint_path(
    base: Union[str, Path],
    index: int,
    count: int,
    *,
    default_suffix: str = ".json",
) -> Path:
    """The per-shard file of shard ``index`` of an ``index/count`` split.

    Derived from the base path so the shard files of one sweep sit next
    to each other: ``sweep.json`` -> ``sweep.shard0of2.json``.  This is
    the single source of the shard-file naming scheme — the CLI reuses it
    (with ``default_suffix=".jsonl"``) for per-shard JSONL exports, so
    checkpoints and exports can never drift apart.
    """
    base = Path(base)
    return base.with_name(
        f"{base.stem}.shard{index}of{count}{base.suffix or default_suffix}"
    )


def manifest_path(base: Union[str, Path]) -> Path:
    """The shard-manifest (index) file of a sharded sweep:
    ``sweep.json`` -> ``sweep.manifest.json``."""
    base = Path(base)
    return base.with_name(f"{base.stem}.manifest{base.suffix or '.json'}")


@dataclass(frozen=True)
class ShardManifest:
    """The index of a sharded sweep: which task keys live in which shard file.

    The manifest is a *pure function of the grid and the shard count*
    (task keys in expansion order, round-robin assignment), so every job
    of an ``i/k`` split computes byte-identical content and can write the
    index idempotently — k jobs on k machines need no coordination beyond
    sharing the grid definition.  A job that finds an existing manifest
    with different content is running a different grid (regenerated
    topologies, another adversary, another shard count) against a stale
    checkpoint directory, which is a configuration error, not a merge
    problem.
    """

    shard_count: int
    #: file *names* (relative to the manifest's directory), one per shard
    shard_files: Tuple[str, ...]
    #: task keys per shard, in task order
    shard_tasks: Tuple[Tuple[str, ...], ...]
    #: how the split was assigned: ``"static"`` (fixed round-robin
    #: ``i/k`` slices) or ``"auto"`` (contiguous blocks claimed at
    #: runtime from a lease directory).  The merge never cares — it only
    #: reads files and keys — but the mode documents the sweep and keeps
    #: a static resume from colliding with an auto lease directory.
    mode: str = "static"

    @classmethod
    def plan(
        cls, base: Union[str, Path], task_keys: Sequence[str], shard_count: int
    ) -> "ShardManifest":
        """Build the manifest of splitting ``task_keys`` into ``shard_count``
        round-robin shards checkpointed next to ``base``."""
        from .sharding import shard_round_robin

        if shard_count < 1:
            raise ConfigurationError(
                f"shard count must be >= 1, got {shard_count}"
            )
        # The single source of the assignment rule: manifest coverage
        # validation and job-side slice selection must always agree.
        buckets = shard_round_robin(list(task_keys), shard_count)
        return cls(
            shard_count=shard_count,
            shard_files=tuple(
                shard_checkpoint_path(base, index, shard_count).name
                for index in range(shard_count)
            ),
            shard_tasks=tuple(tuple(bucket) for bucket in buckets),
        )

    @classmethod
    def plan_auto(
        cls, base: Union[str, Path], task_keys: Sequence[str], block_count: int
    ) -> "ShardManifest":
        """Build the manifest of a work-stealing ``--shard auto`` split:
        ``block_count`` contiguous task-key blocks checkpointed next to
        ``base``, claimed at runtime rather than assigned up front.

        Deliberately the same manifest shape as a static split (a block
        is a shard whose job is chosen late), so ``repro-le merge``
        handles both without knowing which scheduler produced the files.
        """
        from .sharding import split_blocks

        if block_count < 1:
            raise ConfigurationError(
                f"block count must be >= 1, got {block_count}"
            )
        blocks = split_blocks(list(task_keys), block_count)
        return cls(
            shard_count=block_count,
            shard_files=tuple(
                shard_checkpoint_path(base, index, block_count).name
                for index in range(block_count)
            ),
            shard_tasks=tuple(tuple(block) for block in blocks),
            mode="auto",
        )

    def as_payload(self) -> Dict[str, object]:
        return {
            "version": FORMAT_VERSION,
            "kind": MANIFEST_KIND,
            "mode": self.mode,
            "shard_count": self.shard_count,
            "shards": [
                {"index": index, "file": name, "tasks": list(tasks)}
                for index, (name, tasks) in enumerate(
                    zip(self.shard_files, self.shard_tasks)
                )
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object], source: Path) -> "ShardManifest":
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"shard manifest {source} has format version {version!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        if payload.get("kind") != MANIFEST_KIND:
            raise ConfigurationError(
                f"{source} is not a shard manifest (kind={payload.get('kind')!r}); "
                f"pass the .manifest.json index written by a sharded sweep"
            )
        shards = payload.get("shards", [])
        return cls(
            shard_count=int(payload["shard_count"]),
            shard_files=tuple(str(entry["file"]) for entry in shards),
            shard_tasks=tuple(
                tuple(str(key) for key in entry["tasks"]) for entry in shards
            ),
            # Manifests written before work stealing existed are static.
            mode=str(payload.get("mode", "static")),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardManifest":
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(
                f"shard manifest {path} does not exist; run the sharded sweep "
                f"(--shard i/k with --checkpoint) first"
            )
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise ConfigurationError(
                f"shard manifest {path} is not valid JSON ({error})"
            ) from error
        return cls.from_payload(payload, path)

    def write(self, path: Union[str, Path]) -> None:
        """Write the manifest idempotently (atomic; identical content is a
        no-op, *different* content is a configuration error)."""
        path = Path(path)
        if path.exists():
            existing = ShardManifest.load(path)
            if existing == self:
                return
            raise ConfigurationError(
                f"shard manifest {path} was written for a different sweep "
                f"(shard count {existing.shard_count} vs {self.shard_count}, "
                f"or a different task grid — e.g. regenerated topologies or "
                f"another adversary); move it aside or use a fresh "
                f"--checkpoint base to start a new sharded sweep"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        # Writer-unique temp name: concurrent shard jobs on a shared
        # filesystem race to publish the (identical) manifest, and a
        # shared temp path would let one job replace a half-written file.
        temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        temp.write_text(
            json.dumps(self.as_payload(), indent=1, sort_keys=True),
            encoding="utf-8",
        )
        os.replace(temp, path)

    def expected_keys(self) -> Dict[str, int]:
        """task key -> shard index, over the whole grid."""
        table: Dict[str, int] = {}
        for index, tasks in enumerate(self.shard_tasks):
            for key in tasks:
                table[key] = index
        return table

    def shard_file_paths(self, manifest_file: Union[str, Path]) -> List[Path]:
        """Absolute shard checkpoint paths, resolved next to the manifest."""
        directory = Path(manifest_file).parent
        return [directory / name for name in self.shard_files]


def merge_shard_checkpoints(
    manifest_file: Union[str, Path],
    output: Union[str, Path],
    *,
    allow_partial: bool = False,
    compact: bool = False,
) -> Dict[str, object]:
    """Fold the shard checkpoints of one sharded sweep into ``output``.

    Validation before anything is written:

    * *conflicts* — two shards holding different measurements for the same
      task key abort the merge (identical records, e.g. from an
      overlapping re-run, deduplicate silently; a compact and a full
      record of the same run count as identical and the fuller one wins);
    * *coverage* — every task key named by the manifest must be present,
      unless ``allow_partial`` (useful for merging the shards that did
      finish while a straggler is still running);
    * *missing shard files* are an error without ``allow_partial``;
    * records for keys the manifest does not know (stale leftovers of an
      earlier sweep under a different adversary token, say) are dropped
      from the output and reported.

    Returns a summary dict (shards seen, records merged, coverage counts)
    that the CLI renders.
    """
    # Shard files may be legacy JSON (old sweeps) or JSONL (current
    # engine); the JSONL store reads both.  Imported here — the store
    # module builds on this one.
    from .store import JsonlCheckpointStore

    manifest_file = Path(manifest_file)
    manifest = ShardManifest.load(manifest_file)
    expected = manifest.expected_keys()

    merged: Dict[str, Dict[str, object]] = {}
    missing_shards: List[str] = []
    extraneous = 0
    for shard_path in manifest.shard_file_paths(manifest_file):
        if not shard_path.exists():
            missing_shards.append(shard_path.name)
            continue
        for key, record in JsonlCheckpointStore(shard_path).load().items():
            if key not in expected:
                extraneous += 1
                continue
            known = merged.get(key)
            if known is None:
                merged[key] = record
            elif compact_record(known) != compact_record(record):
                raise ConfigurationError(
                    f"conflicting records for task {key!r} across shard "
                    f"checkpoints of {manifest_file}: the same run was "
                    f"measured twice with different outcomes, so the shard "
                    f"files do not belong to one sweep"
                )
            elif "node_results" in record and "node_results" not in known:
                merged[key] = record  # keep the fuller of two equal records
    if missing_shards and not allow_partial:
        raise ConfigurationError(
            f"missing shard checkpoint(s) {missing_shards} for "
            f"{manifest_file}; run the remaining shard jobs or pass "
            f"--allow-partial to merge what is there"
        )
    missing_keys = [key for key in expected if key not in merged]
    if missing_keys and not allow_partial:
        raise ConfigurationError(
            f"shard checkpoints cover {len(merged)} of {len(expected)} tasks "
            f"({len(missing_keys)} missing, e.g. {missing_keys[0]!r}); finish "
            f"the shard jobs or pass --allow-partial"
        )

    store = JsonlCheckpointStore(output, compact=compact)
    store._loaded = True  # fresh merge output: never resume an existing file
    store._runs = {
        key: (compact_record(record) if compact else record)
        for key, record in sorted(merged.items())
    }
    store._dirty = True
    store._needs_rewrite = True  # one deterministic whole-file write
    store.flush()
    return {
        "shards": manifest.shard_count,
        "shards_found": manifest.shard_count - len(missing_shards),
        "missing_shards": len(missing_shards),
        "tasks_expected": len(expected),
        "tasks_merged": len(merged),
        "tasks_missing": len(missing_keys),
        "extraneous_records_dropped": extraneous,
        "output": str(output),
    }
