"""Parallel experiment engine: sharding, pool execution, checkpointing.

``repro.parallel`` turns the serial experiment driver into a multi-core
sweep engine without giving up the library's seeded-reproducibility
contract:

* :mod:`~repro.parallel.sharding` decomposes experiment grids into
  per-(topology, seed) tasks whose seeds are fixed deterministically in
  the parent process (optionally derived per cell via
  :func:`~repro.parallel.sharding.derive_cell_seed`);
* :mod:`~repro.parallel.runner` executes the tasks on a
  ``multiprocessing`` pool and streams each completed run into exact
  per-cell aggregates (:mod:`repro.analysis.streaming`), reassembling
  cells byte-identically to the serial backend (wall-clock readings
  aside) without ever retaining the full run list;
* :mod:`~repro.parallel.checkpoint` persists completed runs to JSON so
  interrupted sweeps resume instead of restarting, and — for multi-machine
  sweeps — splits one grid across per-shard checkpoint files plus a
  deterministic shard manifest (``--shard i/k``), merged back together by
  :func:`~repro.parallel.checkpoint.merge_shard_checkpoints`.

The engine is wired in as ``run_experiment(..., workers=N,
checkpoint=...)``, as the ``repro-le sweep`` CLI command, and as the
backend of ``benchmarks/bench_parallel_sweep.py``; the equivalence and
determinism guarantees are pinned down by ``tests/test_parallel_runner.py``.
"""

from .checkpoint import (
    CheckpointStore,
    ShardManifest,
    compact_record,
    manifest_path,
    merge_shard_checkpoints,
    result_from_record,
    result_to_record,
    shard_checkpoint_path,
)
from .runner import TaskExecutionError, run_experiments, run_parallel_experiment
from .sharding import (
    RunTask,
    derive_cell_seed,
    expand_run_tasks,
    parse_shard,
    select_shard,
    shard_round_robin,
    task_key,
    topology_fingerprint,
    validate_shard,
)

__all__ = [
    "CheckpointStore",
    "RunTask",
    "ShardManifest",
    "TaskExecutionError",
    "compact_record",
    "derive_cell_seed",
    "expand_run_tasks",
    "manifest_path",
    "merge_shard_checkpoints",
    "parse_shard",
    "result_from_record",
    "result_to_record",
    "run_experiments",
    "run_parallel_experiment",
    "select_shard",
    "shard_checkpoint_path",
    "shard_round_robin",
    "task_key",
    "topology_fingerprint",
    "validate_shard",
]
