"""Parallel experiment engine: sharding, pool execution, checkpointing.

``repro.parallel`` turns the serial experiment driver into a multi-core
sweep engine without giving up the library's seeded-reproducibility
contract:

* :mod:`~repro.parallel.sharding` decomposes experiment grids into
  per-(topology, seed) tasks whose seeds are fixed deterministically in
  the parent process (optionally derived per cell via
  :func:`~repro.parallel.sharding.derive_cell_seed`);
* :mod:`~repro.parallel.scheduler` dispatches the tasks adaptively —
  cost-aware batching over a bounded in-flight window, fault-tolerant
  re-dispatch of tasks lost to worker deaths or timeouts — and
  coordinates work-stealing ``--shard auto`` jobs through a filesystem
  lease directory;
* :mod:`~repro.parallel.runner` executes the tasks on a
  ``multiprocessing`` pool and streams each completed run into exact
  per-cell aggregates (:mod:`repro.analysis.streaming`), reassembling
  cells byte-identically to the serial backend (wall-clock readings
  aside) without ever retaining the full run list;
* :mod:`~repro.parallel.checkpoint` persists completed runs so
  interrupted sweeps resume instead of restarting, and — for
  multi-machine sweeps — splits one grid across per-shard checkpoint
  files plus a deterministic shard manifest (``--shard i/k`` or the
  work-stealing ``--shard auto``), merged back together by
  :func:`~repro.parallel.checkpoint.merge_shard_checkpoints`;
* :mod:`~repro.parallel.store` is the default on-disk format: an
  append-only JSONL checkpoint store (O(new records) per flush) that
  reads legacy whole-file JSON checkpoints transparently.

The engine is wired in as ``run_experiment(..., workers=N,
checkpoint=...)``, as the ``repro-le sweep`` CLI command, and as the
backend of ``benchmarks/bench_parallel_sweep.py``; the equivalence and
determinism guarantees are pinned down by ``tests/test_parallel_runner.py``,
``tests/test_scheduler.py`` and ``tests/test_checkpoint_store.py``.
"""

from .checkpoint import (
    CheckpointStore,
    ShardManifest,
    compact_record,
    manifest_path,
    merge_shard_checkpoints,
    result_from_record,
    result_to_record,
    shard_checkpoint_path,
)
from .runner import (
    CHECKPOINT_FORMATS,
    DISPATCH_MODES,
    TaskExecutionError,
    run_experiments,
    run_parallel_experiment,
)
from .scheduler import (
    DEFAULT_AUTO_BLOCKS,
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_BATCH,
    AdaptiveScheduler,
    DispatchStats,
    LeaseDirectory,
)
from .sharding import (
    AUTO_SHARD,
    RunTask,
    derive_cell_seed,
    expand_run_tasks,
    parse_shard,
    select_shard,
    shard_round_robin,
    split_blocks,
    task_key,
    topology_fingerprint,
    validate_shard,
)
from .store import JsonlCheckpointStore

__all__ = [
    "AUTO_SHARD",
    "AdaptiveScheduler",
    "CHECKPOINT_FORMATS",
    "CheckpointStore",
    "DEFAULT_AUTO_BLOCKS",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_MAX_BATCH",
    "DISPATCH_MODES",
    "DispatchStats",
    "JsonlCheckpointStore",
    "LeaseDirectory",
    "RunTask",
    "ShardManifest",
    "TaskExecutionError",
    "compact_record",
    "derive_cell_seed",
    "expand_run_tasks",
    "manifest_path",
    "merge_shard_checkpoints",
    "parse_shard",
    "result_from_record",
    "result_to_record",
    "run_experiments",
    "run_parallel_experiment",
    "select_shard",
    "shard_checkpoint_path",
    "shard_round_robin",
    "split_blocks",
    "task_key",
    "topology_fingerprint",
    "validate_shard",
]
