"""Command-line interface.

A small operational layer over the library so that elections, graph
analysis and the impossibility demonstration can be driven without writing
Python.  Installed as the ``repro-le`` console script and runnable as
``python -m repro``.

Examples::

    repro-le analyze   --topology random_regular:64:4
    repro-le protocols                          # registered protocols + schemas
    repro-le elect     --algorithm irrevocable --topology torus_2d:8:8 --seed 3
    repro-le elect     --algorithm irrevocable:c=3,x_multiplier=1.5 \
                       --topology torus_2d:8:8
    repro-le elect     --algorithm revocable   --topology complete:5 --explicit
    repro-le compare   --topology random_regular:64:4 --seeds 2
    repro-le sweep     --suite mixed --algorithms flooding gilbert \
                       --seeds 3 --workers 4 --checkpoint sweep.json
    repro-le sweep     --suite tiny --algorithms irrevocable:c=1.5 \
                       irrevocable:c=2 irrevocable:c=3 --seeds 3 \
                       --jsonl runs.jsonl       # cost-vs-c curve, per-run export
    repro-le sweep     --suite tiny --scenario paper-constants
    repro-le sweep     --suite mixed --algorithms flooding --seeds 3 \
                       --adversary loss --adversary-param p=0.05
    repro-le sweep     --suite mixed --algorithms flooding --seeds 3 \
                       --adversary composed:loss+delay \
                       --adversary-param loss.p=0.05 --adversary-param delay.p=0.1
    repro-le sweep     --suite tiny --algorithms flooding --scenario lossy
    repro-le sweep     --suite mixed --algorithms flooding --seeds 5 \
                       --checkpoint sweep.json --shard 0/4   # one of 4 jobs
    repro-le sweep     --suite mixed --algorithms flooding --seeds 5 \
                       --checkpoint sweep.json --shard auto  # work-stealing job
                       # start k of these; each claims blocks from a shared
                       # lease directory and steals stale ones
    repro-le sweep     --suite mixed --algorithms flooding --seeds 5 \
                       --workers 4 --telemetry tel.jsonl \
                       --profile cprofile       # sweep telemetry + hotspots
    repro-le stats     tel.jsonl --top 5        # post-hoc telemetry summary
    repro-le merge     --manifest sweep.manifest.json --output sweep.json
    repro-le sweep     --suite tiny --algorithms flooding --seeds 3 \
                       --archive results.sqlite # archive runs live
    repro-le archive   add sweep.json --archive results.sqlite
    repro-le archive   stats --archive results.sqlite
    repro-le query     --suite tiny --algorithms flooding --seeds 3 \
                       --archive results.sqlite # hits replay, misses run
    repro-le serve     --archive results.sqlite --port 8765
    repro-le impossibility --n 6 --witnesses 4 --trials 10

Topology specifications are ``family:arg[:arg...]`` using the generator
registry of :mod:`repro.graphs.generators`, e.g. ``cycle:32``,
``random_regular:64:4``, ``torus_2d:8:8``, ``barbell:16``.  Algorithm
specifications are ``name[:param=value,...]`` using the protocol registry
of :mod:`repro.protocols` (``repro-le protocols`` lists every protocol
with its parameter schema).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .analysis import render_kv, render_table
from .analysis.runners import RUNNERS
from .core.errors import ReproError
from .election.explicit import extend_to_explicit
from .graphs import Topology, expansion_profile
from .graphs.generators import GENERATORS
from .impossibility import demonstrate_impossibility
from .protocols import ProtocolSpec, describe_protocols

__all__ = ["main", "parse_topology", "build_parser"]

#: Legacy name -> default-configuration runner registry (kept for
#: programmatic users; the CLI itself now resolves ``--algorithm``
#: strings through :mod:`repro.protocols`, which accepts parameters).
ELECTION_RUNNERS: Dict[str, Callable[..., object]] = RUNNERS


def parse_topology(spec: str, *, seed: Optional[int] = None) -> Topology:
    """Parse a ``family:arg[:arg...]`` topology specification."""
    parts = spec.split(":")
    family = parts[0]
    if family not in GENERATORS:
        raise ReproError(
            f"unknown topology family {family!r}; available: {sorted(GENERATORS)}"
        )
    args = [int(part) for part in parts[1:]]
    generator = GENERATORS[family]
    try:
        if family in ("random_regular", "erdos_renyi") and seed is not None:
            return generator(*args, seed=seed)
        return generator(*args)
    except TypeError as error:
        raise ReproError(f"bad arguments for {family}: {error}") from error


# --------------------------------------------------------------------------- #
# sub-commands
# --------------------------------------------------------------------------- #


def _cmd_analyze(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology, seed=args.topology_seed)
    profile = expansion_profile(topology)
    print(render_kv(profile.as_dict(), title=f"expansion profile: {topology.name}"))
    return 0


def _cmd_protocols(args: argparse.Namespace) -> int:
    from .protocols import PROTOCOLS

    print(render_table(describe_protocols(), title="registered protocols"))
    for name, definition in sorted(PROTOCOLS.items()):
        if not definition.schema.params:
            continue
        print(f"\n{name} parameters:")
        width = max(len(param.describe()) for param in definition.schema.params)
        for param in definition.schema.params:
            doc = f"  {param.doc}" if param.doc else ""
            print(f"  {param.describe().ljust(width)}{doc}")
    return 0


def _cmd_elect(args: argparse.Namespace) -> int:
    from .api import run as run_election

    if args.adversary_param and not args.adversary:
        raise ReproError("--adversary-param requires --adversary")
    topology = parse_topology(args.topology, seed=args.topology_seed)
    spec = ProtocolSpec.parse(args.algorithm)
    adversary = None
    if args.adversary:
        from .dynamics import parse_adversary_params, spec_from_cli

        adversary = spec_from_cli(
            args.adversary, parse_adversary_params(args.adversary_param or [])
        )
    recorder = None
    if args.trace:
        from .core.tracing import TraceRecorder, trace_scope

        recorder = TraceRecorder(max_events=args.trace_max_events)
        with trace_scope(recorder):
            result = run_election(
                spec, topology, seed=args.seed, adversary=adversary
            )
    else:
        result = run_election(spec, topology, seed=args.seed, adversary=adversary)
    summary = {
        "algorithm": result.algorithm,
        "topology": result.topology_name,
        "unique leader": result.success,
        "leaders": result.outcome.num_leaders,
        "candidates": len(result.outcome.candidate_indices),
        "messages": result.messages,
        "bits": result.bits,
        "rounds": result.rounds_executed,
    }
    if spec.params:
        summary = {"algorithm": summary["algorithm"], "protocol": str(spec), **summary}
    if adversary is not None:
        summary["adversary"] = adversary.token()
    if recorder is not None:
        trace_summary = recorder.summary()
        recorder.to_jsonl(args.trace)
        summary["trace events"] = trace_summary["events"]
        # Dropped events surface in the output even when zero: a bounded
        # trace must say whether it is complete.
        summary["trace events dropped"] = trace_summary["dropped"]
        summary["trace file"] = str(args.trace)
    print(render_kv(summary, title="election result"))
    if args.explicit:
        if not result.success:
            print("cannot extend to explicit election: no unique leader", file=sys.stderr)
            return 1
        explicit = extend_to_explicit(topology, result, seed=args.seed)
        print()
        print(render_kv(explicit.as_dict(), title="explicit extension"))
        return 0 if explicit.all_know_leader else 1
    return 0 if result.success else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from .api import run as run_election

    topology = parse_topology(args.topology, seed=args.topology_seed)
    rows: List[dict] = []
    for name in args.algorithms:
        spec = ProtocolSpec.parse(name)
        for seed in range(args.seeds):
            result = run_election(spec, topology, seed=seed)
            rows.append(
                {
                    "algorithm": str(spec),
                    "seed": seed,
                    "unique leader": result.success,
                    "messages": result.messages,
                    "rounds": result.rounds_executed,
                }
            )
    print(render_table(rows, title=f"comparison on {topology.name}"))
    return 0 if all(row["unique leader"] for row in rows) else 1


def build_sweep_specs(args: argparse.Namespace, topologies: Sequence[Topology]):
    """Expand the parsed ``sweep``/``query`` arguments into experiment specs.

    Returns ``(specs, adversarial)`` where ``adversarial`` says whether
    the grid injects faults (and the sweep's exit criterion becomes the
    safety verdict).  A thin argparse adapter over
    :func:`repro.api.plan_sweep` — the CLI, the library facade and the
    HTTP endpoint all plan grids through the same function, so their
    spellings cannot drift.  Kept as a named seam so the scenario
    registries' CLI spelling stays testable without running a sweep.
    """
    from .api import plan_sweep

    return plan_sweep(
        topologies=topologies,
        algorithms=args.algorithms,
        scenario=args.scenario,
        adversary=args.adversary,
        adversary_params=args.adversary_param,
        seeds=args.seeds,
        collect_profile=not args.no_profile,
    )


def _print_telemetry_summary(summary: Dict[str, object], *, title: str) -> None:
    """Render a telemetry summary (live after a sweep, or from ``stats``).

    One printer for both consumers, so the post-hoc report is the live
    report — the round-trip guarantee the telemetry layer tests.
    """
    totals = summary.get("totals") or {}
    headline: Dict[str, object] = {
        "runs measured": summary.get("runs"),
        "runs restored": summary.get("restored"),
        "workers": summary.get("workers"),
        "backend": summary.get("backend"),
        "elapsed seconds": summary.get("elapsed_seconds"),
        "simulate seconds (sum)": totals.get("simulate_seconds"),
        "queue-wait seconds (sum)": totals.get("queue_wait_seconds"),
        "fold seconds (sum)": totals.get("fold_seconds"),
        "checkpoint seconds (sum)": totals.get("checkpoint_seconds"),
        "checkpoint I/O share": summary.get("checkpoint_io_share"),
    }
    if summary.get("shard"):
        headline["shard"] = summary["shard"]
    if summary.get("profile"):
        headline["profiler"] = summary["profile"]
    print(render_kv(headline, title=title))
    dispatch = dict(summary.get("dispatch") or {})
    # The driver-side scheduler record (batches dispatched, re-dispatches
    # after worker deaths/timeouts, lease steals) folds into the same
    # section: one dispatch story, measured from both sides.
    dispatch.update(summary.get("scheduler") or {})
    if dispatch:
        print()
        print(render_kv(dispatch, title="dispatch"))
    imbalance = summary.get("load_imbalance")
    if imbalance:
        print()
        print(
            render_kv(
                {
                    "workers": imbalance.get("workers"),
                    "max busy seconds": imbalance.get("max_busy_seconds"),
                    "mean busy seconds": imbalance.get("mean_busy_seconds"),
                    "max/mean imbalance": imbalance.get("imbalance"),
                },
                title="load imbalance",
            )
        )
    for rows, section in (
        (summary.get("worker_utilization"), "worker utilization"),
        (summary.get("queue_wait_by_worker"), "queue wait percentiles (per worker, seconds)"),
        (summary.get("cells"), "per-cell simulate latency (seconds)"),
        (summary.get("stragglers"), "top straggler tasks"),
        (summary.get("profile_hotspots"), "profile hotspots (pool-wide)"),
    ):
        if rows:
            print()
            print(render_table(rows, title=section))


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    from .analysis import summarize_results
    from .analysis.streaming import JsonlSink, ProgressSink
    from .api import SweepConfig, sweep as run_sweep
    from .election.base import SafetyTally
    from .obs import TelemetrySink
    from .parallel import AUTO_SHARD, parse_shard
    from .workloads import DYNAMIC_SCENARIOS, suite_by_name

    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    if args.adversary and args.scenario:
        raise ReproError("--adversary and --scenario are mutually exclusive")
    if args.adversary_param and not args.adversary:
        raise ReproError("--adversary-param requires --adversary")
    if args.checkpoint_compact and not args.checkpoint:
        raise ReproError("--checkpoint-compact requires --checkpoint")
    if args.profile and not args.telemetry:
        raise ReproError(
            "--profile requires --telemetry (hotspots are reported through "
            "the telemetry summary)"
        )
    shard = None
    if args.shard is not None:
        if not args.checkpoint:
            raise ReproError(
                "--shard requires --checkpoint (shard results must be "
                "persisted so `repro-le merge` can fold them together)"
            )
        shard = parse_shard(args.shard)

    topologies = suite_by_name(args.suite)
    specs, adversarial = build_sweep_specs(args, topologies)
    if shard is not None and shard[0] == AUTO_SHARD:
        shard_label = "shard auto"
    elif shard is not None:
        shard_label = f"shard {shard[0]}/{shard[1]}"
    else:
        shard_label = ""

    def slice_path(base: str, default_suffix: str):
        # Same naming as the per-shard checkpoints: k jobs sharing one
        # --jsonl/--telemetry spelling must not publish over each other's
        # slices.  An auto job owns no fixed index, so its per-job files
        # are keyed by pid instead.
        from pathlib import Path

        from .parallel import shard_checkpoint_path

        if shard[0] == AUTO_SHARD:
            base_path = Path(base)
            suffix = base_path.suffix or default_suffix
            return base_path.with_name(
                f"{base_path.stem}.auto-{os.getpid()}{suffix}"
            )
        return shard_checkpoint_path(
            base, shard[0], shard[1], default_suffix=default_suffix
        )

    jsonl = args.jsonl
    if jsonl and shard is not None:
        jsonl = slice_path(jsonl, ".jsonl")
        print(f"{shard_label}: writing JSONL export to {jsonl}")
    telemetry_path = args.telemetry
    if telemetry_path and shard is not None:
        telemetry_path = slice_path(telemetry_path, ".jsonl")
        print(f"{shard_label}: writing telemetry to {telemetry_path}")
    telemetry = TelemetrySink(telemetry_path) if telemetry_path else None
    sinks: List[object] = [JsonlSink(jsonl)] if jsonl else []
    if args.archive:
        from .archive import ArchiveSink

        # Live archiving: completed runs land in the shared archive as
        # they finish, so the sweep is also the populate step for later
        # `repro-le query` calls.  Concurrent shard jobs pointed at one
        # archive serialize on the database lock and dedupe by task key.
        sinks.append(
            ArchiveSink(
                args.archive,
                specs,
                derive_seeds=args.derive_seeds,
                base_seed=args.base_seed,
            )
        )
    if args.progress:
        # Count this job's slice, not the whole grid: a sharded job owns
        # the round-robin slice i, i+k, i+2k, ... of the pooled task list.
        # An auto job's slice is unknowable up front — it starts at 0 and
        # the runner grows the total as lease blocks are claimed.
        total = sum(len(spec.topologies) * len(spec.seeds) for spec in specs)
        if shard is not None and shard[0] == AUTO_SHARD:
            total = 0
        elif shard is not None:
            total = len(range(shard[0], total, shard[1]))
        sinks.append(ProgressSink(total, label=shard_label))
    config = SweepConfig(
        workers=args.workers,
        checkpoint=args.checkpoint,
        checkpoint_compact=args.checkpoint_compact,
        checkpoint_format=args.checkpoint_format,
        start_method=args.start_method,
        derive_seeds=args.derive_seeds,
        base_seed=args.base_seed,
        shard=shard,
        backend=args.backend,
        telemetry=telemetry,
        profile=args.profile,
        dispatch=args.dispatch,
        task_timeout=args.task_timeout,
        lease_timeout=args.lease_timeout,
    )
    results = run_sweep(specs, config=config, sinks=sinks)
    rows = summarize_results(results)
    title = f"sweep over suite {args.suite!r}"
    if shard is not None:
        title += f" ({shard_label}: this job's slice only)"
    print(render_table(rows, title=title))
    if telemetry is not None:
        print()
        _print_telemetry_summary(
            telemetry.summary(),
            title=f"sweep telemetry ({telemetry_path})",
        )
    if adversarial:
        # Under fault injection liveness is expected to degrade; the exit
        # criterion becomes the safety half of Definitions 1-2: no run may
        # ever report more than one leader.  The verdict streams out of
        # the per-cell tallies — no run list is retained anywhere.
        tally = SafetyTally()
        for result in results:
            for cell in result.cells:
                if cell.safety is not None:
                    tally.merge(cell.safety)
        safety = tally.summary()
        print()
        print(
            render_kv(
                {
                    "runs": safety["runs"],
                    "safe runs": safety["safe_runs"],
                    "elected runs": safety["elected_runs"],
                    "safety rate": safety["safety_rate"],
                    "success rate": safety["success_rate"],
                },
                title="safety under faults",
            )
        )
        if args.scenario in DYNAMIC_SCENARIOS:
            # A scenario ladder has a dial axis: fold the cells into the
            # success/safety-vs-p curves the ladder exists to measure
            # (the same curves benchmarks/bench_robustness.py tracks).
            from .analysis.robustness import curve_rows, fold_experiments

            rows = curve_rows(fold_experiments(specs, results))
            if rows:
                print()
                print(
                    render_table(
                        rows, title="robustness curves (success/safety vs p)"
                    )
                )
        for violation in safety["violations"]:
            print(f"SAFETY VIOLATION: {violation}", file=sys.stderr)
        return 0 if not safety["violations"] else 1
    # Same criterion as `compare`: every run elected a unique leader.  A
    # sharded job whose slice holds no runs for a spec has nothing to
    # judge — skipping it keeps empty-slice shard jobs exiting 0.
    return (
        0
        if all(
            result.overall_success_rate() == 1.0
            for result in results
            if result.cells
        )
        else 1
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    # Exit contract (lint's 0/1/2 convention): 0 = summarized task
    # records, 1 = files read cleanly but hold no task records (a sweep
    # that never ran — a CI gate watching exit codes should notice),
    # 2 = usage/configuration errors.
    from .obs import read_telemetry, summarize_telemetry

    records: List[Dict[str, object]] = []
    for path in args.telemetry:
        try:
            records.extend(read_telemetry(path))
        except OSError as error:
            raise ReproError(
                f"cannot read telemetry file {path}: {error}"
            ) from error
        except ValueError as error:
            raise ReproError(
                f"{path} is not valid telemetry JSONL: {error}"
            ) from error
    try:
        summary = summarize_telemetry(records, top=args.top)
    except (KeyError, TypeError, ValueError) as error:
        raise ReproError(
            f"telemetry records are malformed: {error}"
        ) from error
    _print_telemetry_summary(
        summary, title=f"telemetry summary: {', '.join(args.telemetry)}"
    )
    if not summary.get("runs") and not summary.get("restored"):
        print(
            "no task records found (did the sweep run with --telemetry?)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    # Exit contract (lint's 0/1/2 convention): 0 = full-coverage merge,
    # 1 = merge completed but partial (--allow-partial with shards or
    # tasks missing), 2 = usage/configuration errors.
    from pathlib import Path

    from .parallel import merge_shard_checkpoints

    manifest = args.manifest
    output = args.output
    if output is None:
        # sweep.manifest.json -> sweep.json (the base checkpoint the
        # sharded jobs were pointed at).  Only the file name is rewritten
        # — a ".manifest" in a directory component must stay untouched.
        name = Path(manifest).name
        if ".manifest" not in name:
            raise ReproError(
                f"cannot derive an output path from {manifest!r}; pass --output"
            )
        output = str(Path(manifest).with_name(name.replace(".manifest", "", 1)))
    try:
        summary = merge_shard_checkpoints(
            manifest,
            output,
            allow_partial=args.allow_partial,
            compact=args.compact,
        )
    except OSError as error:
        raise ReproError(f"merge failed: {error}") from error
    print(render_kv(summary, title="shard merge"))
    if summary.get("missing_shards") or summary.get("tasks_missing"):
        print(
            "partial merge: "
            f"{summary.get('missing_shards', 0)} shard(s) and "
            f"{summary.get('tasks_missing', 0)} task(s) missing",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json as json_module

    from .analysis import summarize_results
    from .analysis.robustness import curve_rows, curves_as_dicts, fold_experiments
    from .api import SweepConfig, query as run_query
    from .workloads import DYNAMIC_SCENARIOS, suite_by_name

    if args.adversary and args.scenario:
        raise ReproError("--adversary and --scenario are mutually exclusive")
    if args.adversary_param and not args.adversary:
        raise ReproError("--adversary-param requires --adversary")
    topologies = suite_by_name(args.suite)
    specs, adversarial = build_sweep_specs(args, topologies)
    config = SweepConfig(
        workers=args.workers,
        backend=args.backend,
        start_method=args.start_method,
        derive_seeds=args.derive_seeds,
        base_seed=args.base_seed,
    )
    answer = run_query(specs, archive=args.archive, config=config)
    rows = summarize_results(answer.results)
    print(render_table(rows, title=f"query over suite {args.suite!r}"))
    print()
    print(render_kv(answer.report.as_dict(), title=f"archive {args.archive}"))
    curves = fold_experiments(specs, answer.results)
    if adversarial and args.scenario in DYNAMIC_SCENARIOS:
        curve_table = curve_rows(curves)
        if curve_table:
            print()
            print(
                render_table(
                    curve_table, title="robustness curves (success/safety vs p)"
                )
            )
    if args.json:
        payload = {
            "report": answer.report.as_dict(),
            "adversarial": adversarial,
            "cells": rows,
            "curves": curves_as_dicts(curves),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"\nwrote query JSON to {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .api import SweepConfig, serve as run_serve

    config = SweepConfig(
        workers=args.workers,
        backend=args.backend,
        start_method=args.start_method,
    )
    server = run_serve(
        archive=args.archive,
        host=args.host,
        port=args.port,
        config=config,
        block=False,
    )
    host, port = server.server_address[:2]
    print(
        f"serving archive {args.archive} on http://{host}:{port} "
        f"(/health, /stats, /query) — Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_archive_add(args: argparse.Namespace) -> int:
    from .archive import ResultArchive
    from .parallel.checkpoint import compact_record
    from .parallel.store import JsonlCheckpointStore

    with ResultArchive(args.archive) as archive:
        seen = 0
        added = 0
        for path in args.files:
            try:
                records = JsonlCheckpointStore(path).load()
            except OSError as error:
                raise ReproError(
                    f"cannot read checkpoint {path}: {error}"
                ) from error
            except ValueError as error:
                raise ReproError(
                    f"{path} is not a checkpoint file: {error}"
                ) from error
            if args.compact:
                records = {
                    key: compact_record(record)
                    for key, record in records.items()
                }
            seen += len(records)
            added += archive.add_records(records)
        print(
            render_kv(
                {
                    "files": len(args.files),
                    "records_seen": seen,
                    "records_added": added,
                    "records_replaced": seen - added,
                    "archive_runs": len(archive),
                    "archive": str(archive.path),
                },
                title="archive add",
            )
        )
    return 0


def _cmd_archive_stats(args: argparse.Namespace) -> int:
    from .archive import ResultArchive

    with ResultArchive(args.archive) as archive:
        stats = archive.stats()
    per_spec = stats.pop("per_spec")
    print(render_kv(stats, title="archive stats"))
    if per_spec:
        print()
        print(render_table(per_spec, title="runs per spec"))
    return 0 if stats["runs"] else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import (
        lint_paths,
        load_baseline,
        render_json,
        render_text,
        rule_table,
        write_baseline,
    )

    if args.list_rules:
        print(render_table(rule_table(), title="repro.lint rules"))
        return 0
    baseline = None
    if args.baseline and not args.write_baseline:
        baseline = load_baseline(args.baseline)
    report = lint_paths(args.paths, baseline=baseline)
    if args.write_baseline:
        if not args.baseline:
            raise ReproError("--write-baseline requires --baseline <file>")
        written = write_baseline(args.baseline, report.findings)
        print(f"baseline: recorded {written} finding(s) to {args.baseline}")
        return 0
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_suppressed=args.show_suppressed))
    return report.exit_code


def _cmd_impossibility(args: argparse.Namespace) -> int:
    report = demonstrate_impossibility(
        args.n, num_witnesses=args.witnesses, seeds=range(args.trials)
    )
    print(render_kv(report.as_dict(), title="pumping-wheel demonstration"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-le",
        description="Leader election in anonymous networks (Kowalski & Mosteiro, ICDCS 2021) — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="print a topology's expansion profile")
    analyze.add_argument("--topology", required=True, help="family:arg[:arg...] spec")
    analyze.add_argument("--topology-seed", type=int, default=None)
    analyze.set_defaults(func=_cmd_analyze)

    protocols = subparsers.add_parser(
        "protocols",
        help="list registered protocols with their parameter schemas",
    )
    protocols.set_defaults(func=_cmd_protocols)

    elect = subparsers.add_parser("elect", help="run one election")
    elect.add_argument(
        "--algorithm",
        required=True,
        metavar="NAME[:K=V,...]",
        help="protocol spec, e.g. irrevocable or irrevocable:c=3,"
        "x_multiplier=1.5 (see `repro-le protocols` for names and schemas)",
    )
    elect.add_argument("--topology", required=True)
    elect.add_argument("--topology-seed", type=int, default=None)
    elect.add_argument("--seed", type=int, default=0)
    elect.add_argument(
        "--explicit",
        action="store_true",
        help="after the implicit election, announce the leader and build a BFS tree",
    )
    elect.add_argument(
        "--adversary",
        default=None,
        metavar="NAME[:K=V,...]",
        help="run the election under a fault adversary, e.g. loss:p=0.1 "
        "(same families as sweep --adversary; fault injections show up "
        "in --trace exports)",
    )
    elect.add_argument(
        "--adversary-param",
        action="append",
        metavar="K=V",
        help="adversary parameter, e.g. p=0.05 or max_delay=3 (repeatable)",
    )
    elect.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record the run's execution trace and export it to PATH as "
        "JSONL (header line with event/dropped counts, then one event "
        "per line); the result output reports the counts",
    )
    elect.add_argument(
        "--trace-max-events",
        type=int,
        default=None,
        metavar="N",
        help="cap the trace at N events (excess events are counted as "
        "dropped, and the drop count is surfaced in the output)",
    )
    elect.set_defaults(func=_cmd_elect)

    compare = subparsers.add_parser("compare", help="compare algorithms on one topology")
    compare.add_argument("--topology", required=True)
    compare.add_argument("--topology-seed", type=int, default=None)
    compare.add_argument("--seeds", type=int, default=2)
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["irrevocable", "gilbert", "flooding"],
        metavar="NAME[:K=V,...]",
        help="protocol specs; parameterised variants of one protocol "
        "compare side by side (e.g. irrevocable:c=2 irrevocable:c=3)",
    )
    compare.set_defaults(func=_cmd_compare)

    sweep = subparsers.add_parser(
        "sweep",
        help="run an experiment grid over a topology suite, optionally in parallel",
    )
    sweep.add_argument(
        "--suite",
        default="mixed",
        help="topology suite name (see repro.workloads.SUITES)",
    )
    sweep.add_argument(
        "--algorithms",
        nargs="+",
        # None (not the default list) so the protocol-scenario path can
        # tell "user asked for these algorithms" from "defaulted".
        default=None,
        metavar="NAME[:K=V,...]",
        help="protocol specs (repeatable variants sweep a parameter grid, "
        "e.g. irrevocable:c=2 irrevocable:c=3); see `repro-le protocols` "
        "(default: flooding gilbert)",
    )
    sweep.add_argument(
        "--seeds", type=int, default=3, help="number of seeds per cell (0..N-1)"
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 shards runs over a multiprocessing pool "
        "(results identical to --workers 1)",
    )
    sweep.add_argument(
        "--checkpoint",
        default=None,
        help="file recording completed runs (append-only JSONL by "
        "default, see --checkpoint-format); an interrupted sweep rerun "
        "with the same checkpoint resumes instead of restarting",
    )
    sweep.add_argument(
        "--checkpoint-compact",
        action="store_true",
        help="store checkpoint records without per-node diagnostics so "
        "resume files of very large grids stay small",
    )
    sweep.add_argument(
        "--shard",
        default=None,
        metavar="I/K|auto[/N]",
        help="run only shard I of a deterministic K-way split of the grid "
        "(0-based; requires --checkpoint). K independent jobs with "
        "--shard 0/K .. K-1/K cover the grid; fold their checkpoints "
        "with `repro-le merge`. `auto` (or auto/N for N blocks) turns "
        "on work stealing instead: any number of concurrent jobs claim "
        "task blocks from a shared lease directory next to the "
        "checkpoint, stale blocks are stolen, and the same manifest/"
        "merge flow folds the results (requires the jsonl checkpoint "
        "format)",
    )
    sweep.add_argument(
        "--dispatch",
        default="adaptive",
        choices=["adaptive", "static"],
        help="pool dispatch strategy: adaptive batches cheap tasks by "
        "measured cost over a bounded in-flight window and re-dispatches "
        "tasks lost to worker deaths or timeouts; static is the legacy "
        "chunksize=1 baseline. Results are bit-identical either way",
    )
    sweep.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-dispatch a task whose worker has not reported for this "
        "many seconds (requires --dispatch adaptive); re-runs are "
        "deterministic, so duplicated completions are dropped without "
        "changing results",
    )
    sweep.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --shard auto: steal a claimed block whose owner has "
        "not heartbeat for this many seconds (default 300)",
    )
    sweep.add_argument(
        "--checkpoint-format",
        default="jsonl",
        choices=["jsonl", "json"],
        help="checkpoint on-disk format: jsonl appends one record per "
        "completed run (O(new records) per flush, periodic compaction); "
        "json rewrites the whole file every flush (legacy baseline). "
        "Either format reads checkpoints written by the other",
    )
    sweep.add_argument(
        "--adversary",
        default=None,
        help="fault model to inject (see repro.dynamics.ADVERSARIES: "
        "loss, delay, churn, crash, composed:<m1>+<m2> with dotted "
        "params like loss.p=0.05); deterministic per run seed",
    )
    sweep.add_argument(
        "--adversary-param",
        action="append",
        metavar="K=V",
        help="adversary parameter, e.g. p=0.05 or max_delay=3 (repeatable)",
    )
    sweep.add_argument(
        "--scenario",
        default=None,
        help="named scenario ladder: dynamic (repro.workloads."
        "DYNAMIC_SCENARIOS: lossy, laggy, flaky-links, crashy, stormy) "
        "runs every algorithm under each adversary rung; protocol "
        "(repro.workloads.PROTOCOL_SCENARIOS: paper-constants) sweeps a "
        "ladder of parameterised protocol variants",
    )
    sweep.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="stream one JSON record per completed run to PATH (includes "
        "the protocol token); per-run export without keeping results "
        "in memory. With --shard I/K each job writes its own "
        "PATH-derived .shardIofK file",
    )
    sweep.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="stream per-task telemetry (queue wait, simulate/fold/"
        "checkpoint durations, worker id) to PATH as JSONL and print a "
        "utilization/straggler summary; results are bit-identical with "
        "or without it. Query the file later with `repro-le stats`. "
        "With --shard I/K each job writes its own PATH-derived "
        ".shardIofK file",
    )
    sweep.add_argument(
        "--profile",
        default=None,
        choices=["cprofile"],
        help="run every task under an in-worker profiler and aggregate "
        "pool-wide hotspots into the telemetry summary (requires "
        "--telemetry; inflates per-task wall-clock)",
    )
    sweep.add_argument(
        "--progress",
        action="store_true",
        help="periodically log completed/total runs to stderr (a sharded "
        "job reports its own slice, so multi-machine sweeps stay "
        "observable from their job logs)",
    )
    sweep.add_argument(
        "--start-method",
        default=None,
        choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method (platform default if omitted)",
    )
    sweep.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "round", "event"],
        help="simulator core: the event-driven core skips quiescent nodes "
        "and rounds, the round core steps every node every round; both "
        "produce bit-identical results (auto picks event)",
    )
    sweep.add_argument(
        "--derive-seeds",
        action="store_true",
        help="derive an independent deterministic seed per cell from "
        "--base-seed instead of reusing 0..N-1 everywhere",
    )
    sweep.add_argument("--base-seed", type=int, default=None)
    sweep.add_argument(
        "--no-profile",
        action="store_true",
        help="skip expansion-profile computation for the suite",
    )
    sweep.add_argument(
        "--archive",
        default=None,
        metavar="DB",
        help="also stream every completed run into a persistent result "
        "archive (SQLite, keyed by deterministic task key; created if "
        "missing) — the populate step for `repro-le query`/`serve`. "
        "Concurrent jobs may share one archive; overlapping runs dedupe "
        "by key",
    )
    sweep.set_defaults(func=_cmd_sweep)

    query = subparsers.add_parser(
        "query",
        help="answer a sweep grid from a result archive, simulating only "
        "the runs the archive is missing (and archiving them back)",
    )
    query.add_argument(
        "--archive",
        required=True,
        metavar="DB",
        help="result archive (SQLite) to answer from and write new runs "
        "back to; populate with `sweep --archive` or `archive add`",
    )
    query.add_argument("--suite", default="mixed", help="topology suite name")
    query.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        metavar="NAME[:K=V,...]",
        help="protocol specs, as in `sweep` (default: flooding gilbert)",
    )
    query.add_argument(
        "--seeds", type=int, default=3, help="number of seeds per cell (0..N-1)"
    )
    query.add_argument(
        "--scenario",
        default=None,
        help="named scenario ladder, as in `sweep --scenario`",
    )
    query.add_argument(
        "--adversary",
        default=None,
        help="fault model to inject, as in `sweep --adversary`",
    )
    query.add_argument(
        "--adversary-param",
        action="append",
        metavar="K=V",
        help="adversary parameter (repeatable)",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the runs that do simulate",
    )
    query.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "round", "event"],
        help="simulator core for cache misses (results are bit-identical "
        "either way)",
    )
    query.add_argument(
        "--start-method",
        default=None,
        choices=["fork", "spawn", "forkserver"],
    )
    query.add_argument(
        "--derive-seeds",
        action="store_true",
        help="derive per-cell seeds from --base-seed, as in `sweep`",
    )
    query.add_argument("--base-seed", type=int, default=None)
    query.add_argument(
        "--no-profile",
        action="store_true",
        help="skip expansion-profile computation for the suite",
    )
    query.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the answer (report + cells + curves) to PATH as "
        "deterministic sorted-key JSON",
    )
    query.set_defaults(func=_cmd_query)

    serve = subparsers.add_parser(
        "serve",
        help="serve a result archive over HTTP: /health, /stats, and "
        "/query with the sweep parameter surface",
    )
    serve.add_argument(
        "--archive",
        required=True,
        metavar="DB",
        help="result archive (SQLite) to serve; missing cells simulate "
        "on demand and archive back",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port (0 binds an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for queries that must simulate",
    )
    serve.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "round", "event"],
    )
    serve.add_argument(
        "--start-method",
        default=None,
        choices=["fork", "spawn", "forkserver"],
    )
    serve.set_defaults(func=_cmd_serve)

    archive = subparsers.add_parser(
        "archive",
        help="maintain a persistent result archive (absorb checkpoints, "
        "inspect contents)",
    )
    archive_sub = archive.add_subparsers(dest="archive_command", required=True)
    archive_add = archive_sub.add_parser(
        "add",
        help="absorb completed runs from checkpoint files (JSONL or "
        "legacy JSON, including `repro-le merge` outputs) into the "
        "archive; re-adding is idempotent (merge by task key)",
    )
    archive_add.add_argument(
        "files",
        nargs="+",
        metavar="CHECKPOINT",
        help="checkpoint files written by sweep --checkpoint (per-shard "
        "files and merged outputs both work)",
    )
    archive_add.add_argument(
        "--archive",
        required=True,
        metavar="DB",
        help="result archive (SQLite) to absorb into; created if missing",
    )
    archive_add.add_argument(
        "--compact",
        action="store_true",
        help="strip per-node diagnostic payloads before archiving "
        "(aggregates are unaffected; archives of very large grids stay "
        "small)",
    )
    archive_add.set_defaults(func=_cmd_archive_add)
    archive_stats = archive_sub.add_parser(
        "stats",
        help="summarize an archive's contents (exits 1 when the archive "
        "holds no runs)",
    )
    archive_stats.add_argument(
        "--archive",
        required=True,
        metavar="DB",
        help="result archive (SQLite) to inspect",
    )
    archive_stats.set_defaults(func=_cmd_archive_stats)

    merge = subparsers.add_parser(
        "merge",
        help="fold the per-shard checkpoints of a sharded sweep into one "
        "checkpoint, validating coverage and conflicts; exits 0 on a "
        "full merge, 1 on a completed-but-partial merge "
        "(--allow-partial), 2 on usage errors",
    )
    merge.add_argument(
        "--manifest",
        required=True,
        help="the shard manifest (<base>.manifest.json) written by the "
        "sharded sweep jobs",
    )
    merge.add_argument(
        "--output",
        default=None,
        help="merged checkpoint path (default: the manifest's base "
        "checkpoint, e.g. sweep.manifest.json -> sweep.json); rerun the "
        "sweep with --checkpoint <output> to replay the full results",
    )
    merge.add_argument(
        "--allow-partial",
        action="store_true",
        help="merge whatever shards/tasks are present instead of requiring "
        "full grid coverage",
    )
    merge.add_argument(
        "--compact",
        action="store_true",
        help="write the merged checkpoint without per-node diagnostics",
    )
    merge.set_defaults(func=_cmd_merge)

    stats = subparsers.add_parser(
        "stats",
        help="summarize a sweep's telemetry JSONL post-hoc (utilization, "
        "per-cell latency percentiles, stragglers, checkpoint I/O "
        "share); exits 0 on a summarized sweep, 1 when the files hold "
        "no task records, 2 on usage errors",
    )
    stats.add_argument(
        "telemetry",
        nargs="+",
        metavar="TELEMETRY_JSONL",
        help="telemetry file(s) written by `repro-le sweep --telemetry`; "
        "several files (e.g. per-shard exports) fold into one summary",
    )
    stats.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many straggler tasks to list (default 10)",
    )
    stats.set_defaults(func=_cmd_stats)

    lint = subparsers.add_parser(
        "lint",
        help="static determinism & contract analysis (REP101-REP108) over "
        "python sources; exits 1 on any unsuppressed finding",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="report format: text prints path:line:col lines, json emits "
        "the full machine-readable report (all findings with rule id, "
        "path, line, col, message, suppressed/baselined flags)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="tolerate findings recorded in FILE and fail only on new "
        "ones (adopt the pass incrementally); create/refresh the file "
        "with --write-baseline",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current unsuppressed findings to --baseline and "
        "exit 0 (subsequent runs with --baseline fail only on new "
        "findings)",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings (with their justifications) in "
        "the text report",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id, title, rationale) and exit",
    )
    lint.set_defaults(func=_cmd_lint)

    impossibility = subparsers.add_parser(
        "impossibility", help="run the Theorem 2 pumping-wheel demonstration"
    )
    impossibility.add_argument("--n", type=int, default=6)
    impossibility.add_argument("--witnesses", type=int, default=4)
    impossibility.add_argument("--trials", type=int, default=10)
    impossibility.set_defaults(func=_cmd_impossibility)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
